"""The SaPHyRa orchestrator — Algorithm 1 of the paper.

Given a :class:`~repro.core.problem.HypothesisRankingProblem` the orchestrator

1. evaluates the exact subspace in closed form (``Exact``),
2. rescales the accuracy target to ``epsilon' = epsilon / lambda`` where
   ``lambda = 1 - lambda-hat`` is the mass of the approximate subspace,
3. runs the adaptive empirical-Bernstein sampler with a VC-dimension cap on
   the approximate subspace, and
4. combines the two parts, ``l_i = l-hat_i + lambda * l-tilde_i``, which by
   Theorem 6 is an ``(epsilon, delta)``-estimation of the expected risks.
"""

from __future__ import annotations

from typing import Optional

from repro.core.adaptive import AdaptiveSampler
from repro.core.estimation import SaPHyRaResult
from repro.core.problem import HypothesisRankingProblem
from repro.core.ranking import rank_scores
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.timing import StageTimings, Timer
from repro.utils.validation import check_probability_pair


class SaPHyRa:
    """Sample-space-partitioning hypothesis ranking (Algorithm 1).

    Parameters
    ----------
    epsilon, delta:
        The ``(epsilon, delta)`` guarantee requested for the combined risk
        estimates.
    seed:
        Seed (or RNG) controlling the sampling stage.
    sample_constant:
        Constant ``c`` in the sample-size formulas (0.5 as in the paper).
    max_samples_cap:
        Optional hard cap on the number of samples in the approximate stage.
    workers:
        Worker processes for the sampling stage (``None`` resolves via
        ``REPRO_WORKERS``); bit-identical for any worker count.  Parallel
        runs ship the problem object to the workers, so it must be picklable
        when ``workers > 1``.

    Examples
    --------
    >>> from repro.core import (CallableHypothesisClass, EnumeratedProblem,
    ...                         EnumeratedSampleSpace, WeightedSample, SaPHyRa)
    >>> space = EnumeratedSampleSpace(
    ...     [WeightedSample(value, 0.25) for value in range(4)],
    ...     is_exact=lambda value: value == 0)
    >>> hypotheses = CallableHypothesisClass(
    ...     {"even": lambda x: 1.0 if x % 2 == 0 else 0.0,
    ...      "big": lambda x: 1.0 if x >= 2 else 0.0})
    >>> problem = EnumeratedProblem(space, hypotheses)
    >>> result = SaPHyRa(epsilon=0.1, delta=0.1, seed=1).rank(problem)
    >>> sorted(result.ranking)
    ['big', 'even']
    """

    def __init__(
        self,
        epsilon: float,
        delta: float,
        *,
        seed: SeedLike = None,
        sample_constant: float = 0.5,
        max_samples_cap: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> None:
        check_probability_pair(epsilon, delta)
        self.epsilon = epsilon
        self.delta = delta
        self.seed = seed
        self.sample_constant = sample_constant
        self.max_samples_cap = max_samples_cap
        self.workers = workers

    def rank(self, problem: HypothesisRankingProblem) -> SaPHyRaResult:
        """Estimate and rank the expected risks of ``problem``'s hypotheses."""
        rng = ensure_rng(self.seed)
        timings = StageTimings()
        total_timer = Timer()
        with total_timer:
            with timings.measure("exact"):
                exact = problem.exact_evaluation()
            names = list(problem.hypothesis_names)
            if len(exact.risks) != len(names):
                raise ValueError(
                    "exact evaluation returned "
                    f"{len(exact.risks)} risks for {len(names)} hypotheses"
                )
            lambda_exact = exact.lambda_exact
            lambda_approx = max(0.0, 1.0 - lambda_exact)

            if lambda_approx <= 1e-12:
                # Everything is in the exact subspace; no sampling needed.
                combined = list(exact.risks)
                scores = dict(zip(names, combined))
                return SaPHyRaResult(
                    names=names,
                    risks=combined,
                    exact_risks=list(exact.risks),
                    approximate_risks=[0.0] * len(names),
                    ranking=rank_scores(scores),
                    epsilon=self.epsilon,
                    delta=self.delta,
                    epsilon_prime=float("inf"),
                    lambda_exact=lambda_exact,
                    lambda_approximate=0.0,
                    vc_dimension=0.0,
                    num_samples=0,
                    num_pilot_samples=0,
                    num_rounds=0,
                    converged_by="exact",
                    wall_time_seconds=total_timer.elapsed,
                    stage_seconds=dict(timings.stages),
                )

            epsilon_prime = min(1.0 - 1e-9, self.epsilon / lambda_approx)
            vc_dimension = float(problem.vc_dimension())
            sampler = AdaptiveSampler(
                epsilon=epsilon_prime,
                delta=self.delta,
                vc_dimension=vc_dimension,
                sample_constant=self.sample_constant,
                max_samples_cap=self.max_samples_cap,
            )
            with timings.measure("sampling"):
                approx = sampler.estimate(
                    problem.sample_losses, len(names), rng=rng,
                    workers=self.workers, payload=problem,
                )

            combined = [
                exact_risk + lambda_approx * approx_risk
                for exact_risk, approx_risk in zip(exact.risks, approx.estimates)
            ]
            scores = dict(zip(names, combined))

        return SaPHyRaResult(
            names=names,
            risks=combined,
            exact_risks=list(exact.risks),
            approximate_risks=list(approx.estimates),
            ranking=rank_scores(scores),
            epsilon=self.epsilon,
            delta=self.delta,
            epsilon_prime=epsilon_prime,
            lambda_exact=lambda_exact,
            lambda_approximate=lambda_approx,
            vc_dimension=vc_dimension,
            num_samples=approx.num_samples,
            num_pilot_samples=approx.num_pilot_samples,
            num_rounds=approx.num_rounds,
            converged_by=approx.converged_by,
            wall_time_seconds=total_timer.elapsed,
            stage_seconds=dict(timings.stages),
        )
