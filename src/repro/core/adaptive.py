"""Adaptive sampling of the approximate subspace (lines 6-20 of Algorithm 1).

The estimator draws an initial pilot batch to estimate per-hypothesis
variances, allocates the error probability across hypotheses (Eq. 13), then
repeatedly doubles the sample size until either every hypothesis' empirical
Bernstein deviation drops below the target ``epsilon'`` or the VC-dimension
sample-size cap ``N_max`` is reached (at which point the guarantee follows
from Lemma 4 instead).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import parallel as _parallel
from repro.engine.driver import SampleDriver
from repro.engine.schedule import SampleSchedule
from repro.engine.stopping import AllocatedBernsteinRule
from repro.stats.allocation import allocate_error_probabilities
from repro.stats.vc import vc_sample_size
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_probability_pair

LossSampler = Callable[[object], Mapping[int, float]]


def _losses_chunk(payload, piece: Tuple[int, int]):
    """Worker task: draw one chunk of loss samples; return partial sums.

    ``payload`` carries either a problem object exposing ``sample_losses`` (a
    picklable payload, required for ``workers > 1``) or the bare sampler
    callable (serial in-process execution only).  The chunk draws from its
    own seeded RNG stream, so partials are identical in any process.
    """
    sampler, num_hypotheses, base_seed = payload
    chunk_index, draws = piece
    rng = _parallel.chunk_rng(base_seed, chunk_index)
    sample = getattr(sampler, "sample_losses", sampler)
    totals = [0.0] * num_hypotheses
    totals_sq = [0.0] * num_hypotheses
    for _ in range(draws):
        for index, loss in sample(rng).items():
            totals[index] += loss
            totals_sq[index] += loss * loss
    # Problems with sampling diagnostics (e.g. Gen_bc rejection counters)
    # expose collect_sample_stats/merge_sample_stats; snapshotting the
    # worker-local counters per chunk lets the master fold them back in, so
    # the reported statistics match serial runs for any worker count.
    collect = getattr(sampler, "collect_sample_stats", None)
    stats = collect() if collect is not None else None
    return draws, totals, totals_sq, stats


@dataclass
class ApproximateEstimate:
    """Outcome of the adaptive estimation of the approximate-subspace risks.

    Attributes
    ----------
    estimates:
        Per-hypothesis empirical risks under ``D-tilde``.
    deviations:
        Final empirical Bernstein deviations (one per hypothesis).
    num_samples:
        Samples drawn in the main stage (excludes the pilot batch).
    num_pilot_samples:
        Pilot samples used for variance estimation.
    num_rounds:
        Doubling rounds executed.
    converged_by:
        ``"bernstein"`` when the adaptive stopping rule fired, ``"vc"`` when
        the sampler stopped at the VC-bound cap.
    delta_allocations:
        The per-hypothesis error probabilities used by the stopping rule.
    """

    estimates: List[float]
    deviations: List[float]
    num_samples: int
    num_pilot_samples: int
    num_rounds: int
    converged_by: str
    delta_allocations: List[float] = field(default_factory=list)


class _RiskAccumulator:
    """Streaming sums for ``k`` hypotheses sharing one global sample count."""

    __slots__ = ("count", "totals", "totals_sq")

    def __init__(self, num_hypotheses: int) -> None:
        self.count = 0
        self.totals = [0.0] * num_hypotheses
        self.totals_sq = [0.0] * num_hypotheses

    def add(self, losses: Mapping[int, float]) -> None:
        self.count += 1
        for index, loss in losses.items():
            self.totals[index] += loss
            self.totals_sq[index] += loss * loss

    def merge(self, count: int, totals: Sequence[float],
              totals_sq: Sequence[float]) -> None:
        """Fold one chunk's partial sums in (deterministic) chunk order."""
        self.count += count
        for index, value in enumerate(totals):
            if value:
                self.totals[index] += value
        for index, value in enumerate(totals_sq):
            if value:
                self.totals_sq[index] += value

    def mean(self, index: int) -> float:
        if self.count == 0:
            return 0.0
        return self.totals[index] / self.count

    def variance(self, index: int) -> float:
        if self.count < 2:
            return 0.0
        total = self.totals[index]
        centered = self.totals_sq[index] - total * total / self.count
        return max(0.0, centered / (self.count - 1))

    def means(self) -> List[float]:
        return [self.mean(index) for index in range(len(self.totals))]


class AdaptiveSampler:
    """Empirical-Bernstein adaptive estimator with a VC-dimension cap.

    Parameters
    ----------
    epsilon, delta:
        Target accuracy and failure probability *for the quantity being
        sampled* (the caller passes ``epsilon' = epsilon / lambda`` when the
        estimate is later scaled by ``lambda``).
    vc_dimension:
        Upper bound on the VC dimension of the hypothesis class; controls
        the maximum sample size.
    sample_constant:
        The constant ``c`` of Lemma 4 (default 0.5).
    min_pilot_samples:
        Lower bound on the pilot batch size (keeps variance estimates from
        being degenerate when ``ln(1/delta)/epsilon^2`` is tiny).
    max_samples_cap:
        Optional hard cap on the number of samples regardless of the VC
        bound (useful to keep experiments bounded on huge epsilon-lambda
        combinations).
    """

    def __init__(
        self,
        epsilon: float,
        delta: float,
        vc_dimension: float,
        *,
        sample_constant: float = 0.5,
        min_pilot_samples: int = 32,
        max_samples_cap: Optional[int] = None,
    ) -> None:
        check_probability_pair(epsilon, delta)
        if vc_dimension < 0:
            raise ValueError(f"vc_dimension must be >= 0, got {vc_dimension}")
        self.epsilon = epsilon
        self.delta = delta
        self.vc_dimension = vc_dimension
        self.sample_constant = sample_constant
        self.min_pilot_samples = min_pilot_samples
        self.max_samples_cap = max_samples_cap

    # ------------------------------------------------------------------
    def initial_sample_size(self) -> int:
        """``N_0 = c / eps^2 * ln(1/delta)`` (Algorithm 1, line 6)."""
        raw = self.sample_constant / (self.epsilon**2) * math.log(1.0 / self.delta)
        size = max(self.min_pilot_samples, math.ceil(raw))
        if self.max_samples_cap is not None:
            size = min(size, self.max_samples_cap)
        return max(2, size)

    def maximum_sample_size(self) -> int:
        """``N_max = c / eps^2 * (VC + ln(1/delta))`` (Algorithm 1, line 7)."""
        size = vc_sample_size(
            self.epsilon, self.delta, self.vc_dimension, constant=self.sample_constant
        )
        size = max(size, self.initial_sample_size())
        if self.max_samples_cap is not None:
            size = min(size, self.max_samples_cap)
        return max(2, size)

    # ------------------------------------------------------------------
    def estimate(
        self,
        sample_losses: LossSampler,
        num_hypotheses: int,
        rng: SeedLike = None,
        *,
        workers: Optional[int] = None,
        payload: object = None,
    ) -> ApproximateEstimate:
        """Run the adaptive estimation loop.

        Samples are drawn in fixed-size chunks, each from its own seeded RNG
        stream (:func:`repro.parallel.chunk_rng`), and the chunk partial sums
        are folded in chunk order.  The chunk layout depends only on the
        (deterministic) round schedule, so the estimate is bit-identical for
        any worker count.

        Parameters
        ----------
        sample_losses:
            Callable drawing one sample from ``D-tilde`` and returning its
            sparse losses, i.e. ``problem.sample_losses``.
        num_hypotheses:
            Number of hypotheses ``k``.
        rng:
            Seed or RNG for reproducibility.
        workers:
            Worker processes for the sample draws (``None`` resolves via
            ``REPRO_WORKERS``).
        payload:
            A picklable object exposing ``sample_losses`` (usually the
            problem itself), shipped to the workers instead of the bare
            callable.  Required when ``workers > 1``.
        """
        if num_hypotheses < 1:
            raise ValueError(f"num_hypotheses must be >= 1, got {num_hypotheses}")
        resolved_workers = _parallel.resolve_workers(workers)
        if resolved_workers > 1 and payload is None:
            if workers is None:
                # The count came from the environment/default, but a bare
                # callable cannot be shipped to worker processes.  Degrade to
                # in-process execution — results are identical either way
                # (the chunk streams do not depend on the worker count).
                resolved_workers = 0
            else:
                raise ValueError(
                    "workers > 1 needs a picklable `payload` exposing "
                    "sample_losses; a bare callable cannot be shipped to "
                    "worker processes"
                )
        rng = ensure_rng(rng)
        base_seed = _parallel.derive_base_seed(rng)
        initial = self.initial_sample_size()
        maximum = self.maximum_sample_size()
        # The schedule *is* the historical doubling loop: first stage
        # ``initial``, doubling to the VC cap, with the round count the
        # delta allocation divides by.
        schedule = SampleSchedule(initial, maximum)

        sampler = payload if payload is not None else sample_losses
        merge_stats = getattr(sampler, "merge_sample_stats", None)
        with SampleDriver(
            _losses_chunk,
            payload=(sampler, num_hypotheses, base_seed),
            workers=resolved_workers,
        ) as driver:
            # Pilot batch: independent samples used only for variance
            # estimation and the per-hypothesis delta allocation.  The
            # driver continues its chunk counter into the main stage, so
            # the global RNG stream layout is unchanged by the port.
            pilot = _RiskAccumulator(num_hypotheses)

            def fold_pilot(partial) -> None:
                draws, totals, totals_sq, stats = partial
                pilot.merge(draws, totals, totals_sq)
                if stats is not None and merge_stats is not None:
                    merge_stats(stats)

            driver.run_batch(initial, fold_pilot)
            pilot_variances = [
                pilot.variance(index) for index in range(num_hypotheses)
            ]
            delta_allocations = allocate_error_probabilities(
                pilot_variances,
                target_epsilon=self.epsilon,
                delta=self.delta,
                num_rounds=schedule.num_stages(),
                max_samples=maximum,
            )

            accumulator = _RiskAccumulator(num_hypotheses)

            def fold_main(partial) -> None:
                draws, totals, totals_sq, stats = partial
                accumulator.merge(draws, totals, totals_sq)
                if stats is not None and merge_stats is not None:
                    merge_stats(stats)

            stopping = AllocatedBernsteinRule(
                accumulator, delta_allocations, epsilon=self.epsilon
            )
            outcome = driver.run_schedule(schedule, stopping, fold_main)

        return ApproximateEstimate(
            estimates=accumulator.means(),
            deviations=stopping.deviations,
            num_samples=accumulator.count,
            num_pilot_samples=initial,
            num_rounds=outcome.num_stages,
            converged_by=outcome.converged_by,
            delta_allocations=list(delta_allocations),
        )
