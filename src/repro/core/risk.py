"""Exact and empirical risk computation for hypothesis classes."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.hypothesis import HypothesisClass
from repro.core.sample_space import WeightedSample


def exact_expected_risks(
    hypothesis_class: HypothesisClass, samples: Iterable[WeightedSample]
) -> List[float]:
    """Compute ``sum_x Pr[x] * L(h_i(x), f(x))`` for every hypothesis.

    ``samples`` may be any subset of the sample space; summing over the exact
    subspace yields the ``l-hat_i`` values of Eq. 9, summing over the whole
    space yields the true expected risks ``R(h_i)``.
    """
    risks = [0.0] * len(hypothesis_class)
    for sample in samples:
        if sample.probability == 0.0:
            continue
        for index, loss in hypothesis_class.losses(sample.value).items():
            risks[index] += sample.probability * loss
    return risks


def empirical_risks(
    hypothesis_class: HypothesisClass, samples: Sequence[object]
) -> List[float]:
    """Compute the plain Monte-Carlo estimate ``1/N sum_j L(h_i(x_j), f(x_j))``.

    This is the "direct estimation" strategy of Section III-A, used as the
    reference the partitioned estimator is compared against in tests and in
    the framework ablation.
    """
    count = len(samples)
    risks = [0.0] * len(hypothesis_class)
    if count == 0:
        return risks
    for sample in samples:
        for index, loss in hypothesis_class.losses(sample).items():
            risks[index] += loss
    return [value / count for value in risks]
