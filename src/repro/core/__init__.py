"""The SaPHyRa hypothesis-ranking framework (the paper's core contribution).

The framework is independent of betweenness centrality: anything that can be
phrased as *"rank k hypotheses by their expected risk over a sample space"*
and can split that sample space into an exactly-evaluated part and a
sampled part can use it (Section III of the paper).  The betweenness
instantiation lives in :mod:`repro.saphyra_bc`; a k-path-centrality
instantiation built on the generic pieces lives in
:mod:`repro.centrality.kpath`.
"""

from __future__ import annotations

from repro.core.adaptive import AdaptiveSampler, ApproximateEstimate
from repro.core.estimation import ExactEvaluation, SaPHyRaResult
from repro.core.hypothesis import (
    CallableHypothesisClass,
    HypothesisClass,
    SetMembershipHypothesisClass,
    zero_one_loss,
)
from repro.core.problem import EnumeratedProblem, HypothesisRankingProblem
from repro.core.ranking import rank_scores, ranking_to_ranks
from repro.core.risk import empirical_risks, exact_expected_risks
from repro.core.sample_space import EnumeratedSampleSpace, WeightedSample
from repro.core.saphyra import SaPHyRa

__all__ = [
    "SaPHyRa",
    "SaPHyRaResult",
    "ExactEvaluation",
    "AdaptiveSampler",
    "ApproximateEstimate",
    "HypothesisClass",
    "CallableHypothesisClass",
    "SetMembershipHypothesisClass",
    "zero_one_loss",
    "HypothesisRankingProblem",
    "EnumeratedProblem",
    "EnumeratedSampleSpace",
    "WeightedSample",
    "exact_expected_risks",
    "empirical_risks",
    "rank_scores",
    "ranking_to_ranks",
]
