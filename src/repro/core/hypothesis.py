"""Hypothesis classes: how a set of hypotheses is evaluated on samples.

The framework only ever needs one operation from a hypothesis class: given a
sample ``x``, report the loss ``L(h_i(x), f(x))`` of every hypothesis, in
*sparse* form (``{hypothesis index: loss}`` with zero losses omitted).
Sparse evaluation is the key to scalability — a sampled shortest path only
touches the handful of hypotheses whose node lies on it.

Two concrete implementations are provided:

* :class:`CallableHypothesisClass` — the textbook formulation: a list of
  callables ``h_i(x)``, a labelling function ``f(x)`` and a loss
  ``L(y', y)``.  Fine for small hypothesis sets and for tests.
* :class:`SetMembershipHypothesisClass` — the pattern shared by all the
  centrality instantiations: each hypothesis is identified by a key (a node),
  a sample maps to a set of keys (the inner nodes of a path), and the loss of
  ``h_v`` is 1 iff ``v`` is in that set.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Mapping, Protocol, Sequence


def zero_one_loss(prediction: float, label: float) -> float:
    """The 0-1 loss ``1[prediction != label]`` used throughout the paper."""
    return 0.0 if prediction == label else 1.0


class HypothesisClass(Protocol):
    """Protocol every hypothesis class implementation must satisfy."""

    @property
    def names(self) -> Sequence[Hashable]:
        """Identifiers of the hypotheses (e.g. node ids); defines the order."""

    def __len__(self) -> int:
        """Number of hypotheses ``k``."""

    def losses(self, sample: object) -> Mapping[int, float]:
        """Return ``{hypothesis index: loss}`` with zero entries omitted."""


class CallableHypothesisClass:
    """A hypothesis class built from explicit callables.

    Parameters
    ----------
    hypotheses:
        Mapping ``{name: callable}``; each callable maps a sample to a
        prediction (typically 0/1).
    labeling:
        The labelling function ``f``; defaults to the constant-zero labelling
        the paper uses for centrality estimation.
    loss:
        Loss function ``L(prediction, label)``; defaults to 0-1 loss.
    """

    def __init__(
        self,
        hypotheses: Mapping[Hashable, Callable[[object], float]],
        labeling: Callable[[object], float] = lambda sample: 0.0,
        loss: Callable[[float, float], float] = zero_one_loss,
    ) -> None:
        if not hypotheses:
            raise ValueError("hypotheses must not be empty")
        self._names: List[Hashable] = list(hypotheses)
        self._hypotheses = [hypotheses[name] for name in self._names]
        self._labeling = labeling
        self._loss = loss

    @property
    def names(self) -> Sequence[Hashable]:
        return self._names

    def __len__(self) -> int:
        return len(self._names)

    def losses(self, sample: object) -> Dict[int, float]:
        label = self._labeling(sample)
        result: Dict[int, float] = {}
        for index, hypothesis in enumerate(self._hypotheses):
            loss = self._loss(hypothesis(sample), label)
            if loss != 0.0:
                result[index] = loss
        return result


class SetMembershipHypothesisClass:
    """Hypotheses of the form ``h_v(x) = 1[v in keys(x)]`` with 0-1 loss.

    This is the shape of every centrality hypothesis class in the paper:
    ``keys(x)`` is the set of inner nodes of a sampled path, and the constant
    zero labelling makes the loss of ``h_v`` equal ``h_v(x)`` itself.

    Parameters
    ----------
    names:
        Hypothesis identifiers (the target nodes ``A``).
    keys_of:
        Function mapping a sample to an iterable of identifiers that "fire".
        Identifiers outside ``names`` are ignored.
    """

    def __init__(
        self, names: Sequence[Hashable], keys_of: Callable[[object], Sequence[Hashable]]
    ) -> None:
        if not names:
            raise ValueError("names must not be empty")
        self._names = list(names)
        self._index = {name: position for position, name in enumerate(self._names)}
        if len(self._index) != len(self._names):
            raise ValueError("hypothesis names must be unique")
        self._keys_of = keys_of

    @property
    def names(self) -> Sequence[Hashable]:
        return self._names

    def __len__(self) -> int:
        return len(self._names)

    def losses(self, sample: object) -> Dict[int, float]:
        result: Dict[int, float] = {}
        for key in self._keys_of(sample):
            index = self._index.get(key)
            if index is not None:
                result[index] = 1.0
        return result

    def index_of(self, name: Hashable) -> int:
        """Return the position of hypothesis ``name``.

        Raises
        ------
        KeyError
            If ``name`` is not a hypothesis of this class.
        """
        return self._index[name]
