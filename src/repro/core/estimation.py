"""Result records returned by the SaPHyRa framework."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Sequence


@dataclass
class ExactEvaluation:
    """Output of the ``Exact`` algorithm on the exact subspace (Eq. 9).

    Attributes
    ----------
    lambda_exact:
        ``lambda-hat`` — probability mass of the exact subspace.
    risks:
        ``l-hat_i`` — per-hypothesis expected risk restricted to the exact
        subspace, in hypothesis order.
    """

    lambda_exact: float
    risks: List[float]

    def __post_init__(self) -> None:
        if not 0.0 <= self.lambda_exact <= 1.0 + 1e-9:
            raise ValueError(
                f"lambda_exact must lie in [0, 1], got {self.lambda_exact}"
            )


@dataclass
class SaPHyRaResult:
    """Full output of a SaPHyRa run (Algorithm 1).

    Attributes
    ----------
    names:
        Hypothesis identifiers, in the order all per-hypothesis lists use.
    risks:
        Combined risk estimates ``l_i = l-hat_i + lambda * l-tilde_i``; these
        carry the ``(epsilon, delta)`` guarantee of Theorem 6.
    exact_risks:
        The exact-subspace contribution per hypothesis.
    approximate_risks:
        The estimated approximate-subspace risks (under ``D-tilde``).
    ranking:
        Names sorted by decreasing combined risk (ties by name).
    epsilon, delta:
        Requested guarantee.
    epsilon_prime:
        The inflated target used inside the approximate subspace
        (``epsilon / lambda``).
    lambda_exact, lambda_approximate:
        Probability masses of the two subspaces.
    vc_dimension:
        VC dimension bound used for the maximum sample size.
    num_samples:
        Number of samples drawn in the adaptive estimation stage.
    num_pilot_samples:
        Number of pilot samples used for variance estimation / delta
        allocation.
    num_rounds:
        Number of doubling rounds executed.
    converged_by:
        ``"bernstein"`` if the empirical Bernstein stopping rule fired,
        ``"vc"`` if the sampler ran to the VC-bound maximum sample size, or
        ``"exact"`` when the approximate subspace was empty.
    wall_time_seconds:
        Optional timing information filled by callers.
    """

    names: Sequence[Hashable]
    risks: List[float]
    exact_risks: List[float]
    approximate_risks: List[float]
    ranking: List[Hashable]
    epsilon: float
    delta: float
    epsilon_prime: float
    lambda_exact: float
    lambda_approximate: float
    vc_dimension: float
    num_samples: int
    num_pilot_samples: int
    num_rounds: int
    converged_by: str
    wall_time_seconds: float = 0.0
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    def scores(self) -> Dict[Hashable, float]:
        """Return ``{name: combined risk}``."""
        return dict(zip(self.names, self.risks))

    def __len__(self) -> int:
        return len(self.names)
