"""Turning scores into rankings.

The paper ranks nodes by *descending* centrality; rank 1 is the most central
node.  Ties are broken by the node identifier ("if there are two nodes with
the same betweenness centrality, we break the tie by the nodes' IDs"), which
keeps every comparison between an estimate and the ground truth
deterministic.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence


def rank_scores(scores: Mapping[Hashable, float]) -> List[Hashable]:
    """Return the names ordered from highest to lowest score.

    Ties are broken by ascending name (requires names to be mutually
    comparable, which holds for the integer node ids used throughout).
    """
    return sorted(scores, key=lambda name: (-scores[name], name))


def ranking_to_ranks(ranking: Sequence[Hashable]) -> Dict[Hashable, int]:
    """Convert an ordered ranking into ``{name: rank}`` with ranks ``1..k``."""
    return {name: position + 1 for position, name in enumerate(ranking)}


def ranks_from_scores(scores: Mapping[Hashable, float]) -> Dict[Hashable, int]:
    """Shorthand for ``ranking_to_ranks(rank_scores(scores))``."""
    return ranking_to_ranks(rank_scores(scores))
