"""Turning scores into rankings.

The paper ranks nodes by *descending* centrality; rank 1 is the most central
node.  Ties are broken by the node identifier ("if there are two nodes with
the same betweenness centrality, we break the tie by the nodes' IDs"), which
keeps every comparison between an estimate and the ground truth
deterministic.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence


def rank_scores(scores: Mapping[Hashable, float]) -> List[Hashable]:
    """Return the names ordered from highest to lowest score.

    Ties are broken by ascending name, so the ranking is a pure function of
    the score mapping's *content*: equal-score orders never depend on dict
    insertion history (or, for mixed-type names, on hash randomisation).
    Names of one type compare directly; mixed-type names — which Python
    refuses to order — fall back to a deterministic ``(type name, repr)``
    key instead of raising.
    """
    try:
        return sorted(scores, key=lambda name: (-scores[name], name))
    except TypeError:
        # Mixed-type names (e.g. ints and strings after a relabel round-trip)
        # are not mutually comparable; a stable two-pass sort on a printable
        # key keeps the order deterministic without inventing a cross-type
        # ordering for the common homogeneous case above.
        by_name = sorted(
            scores, key=lambda name: (type(name).__name__, repr(name))
        )
        return sorted(by_name, key=lambda name: -scores[name])


def ranking_to_ranks(ranking: Sequence[Hashable]) -> Dict[Hashable, int]:
    """Convert an ordered ranking into ``{name: rank}`` with ranks ``1..k``."""
    return {name: position + 1 for position, name in enumerate(ranking)}


def ranks_from_scores(scores: Mapping[Hashable, float]) -> Dict[Hashable, int]:
    """Shorthand for ``ranking_to_ranks(rank_scores(scores))``."""
    return ranking_to_ranks(rank_scores(scores))
