"""The problem interface the SaPHyRa orchestrator consumes.

A *hypothesis ranking problem* bundles the sample space, the distribution,
the hypothesis class and the exact/approximate partition behind four
operations.  Big instantiations (SaPHyRa_bc) implement the protocol directly
over the graph; :class:`EnumeratedProblem` adapts an explicit
:class:`~repro.core.sample_space.EnumeratedSampleSpace` for small problems
and tests.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Protocol, Sequence, runtime_checkable

from repro.core.estimation import ExactEvaluation
from repro.core.hypothesis import HypothesisClass
from repro.core.risk import exact_expected_risks
from repro.core.sample_space import EnumeratedSampleSpace
from repro.stats.vc import pi_max_vc_bound
from repro.utils.rng import SeedLike


@runtime_checkable
class HypothesisRankingProblem(Protocol):
    """What the SaPHyRa orchestrator (Algorithm 1) needs from a problem."""

    @property
    def hypothesis_names(self) -> Sequence[Hashable]:
        """Identifiers of the hypotheses; fixes the order of all outputs."""

    def exact_evaluation(self) -> ExactEvaluation:
        """Run the ``Exact`` algorithm: mass and risks of the exact subspace."""

    def sample_losses(self, rng: SeedLike = None) -> Mapping[int, float]:
        """Draw one sample from ``D-tilde`` and return its sparse losses."""

    def vc_dimension(self) -> float:
        """An upper bound on the VC dimension of the hypothesis class
        restricted to the approximate subspace."""


class EnumeratedProblem:
    """Adapt an enumerated sample space + hypothesis class to the protocol.

    Parameters
    ----------
    space:
        The partitioned, fully enumerated sample space.
    hypothesis_class:
        The hypotheses to rank.
    vc_bound:
        Optional explicit VC bound; when omitted it is derived from
        ``pi_max`` over the approximate subspace (Lemma 5), which is exact
        to compute here because the space is enumerated.
    """

    def __init__(
        self,
        space: EnumeratedSampleSpace,
        hypothesis_class: HypothesisClass,
        vc_bound: float | None = None,
    ) -> None:
        self._space = space
        self._hypothesis_class = hypothesis_class
        if vc_bound is None:
            pi_max = 0
            for sample in space.approximate_samples():
                fired = len(hypothesis_class.losses(sample.value))
                if fired > pi_max:
                    pi_max = fired
            vc_bound = pi_max_vc_bound(pi_max)
        self._vc_bound = float(vc_bound)

    @property
    def hypothesis_names(self) -> Sequence[Hashable]:
        return self._hypothesis_class.names

    @property
    def space(self) -> EnumeratedSampleSpace:
        """The underlying enumerated sample space."""
        return self._space

    @property
    def hypothesis_class(self) -> HypothesisClass:
        """The underlying hypothesis class."""
        return self._hypothesis_class

    def exact_evaluation(self) -> ExactEvaluation:
        """Sum the exact-subspace atoms in closed form (Eq. 9)."""
        risks = exact_expected_risks(
            self._hypothesis_class, self._space.exact_samples()
        )
        return ExactEvaluation(
            lambda_exact=self._space.lambda_exact, risks=risks
        )

    def sample_losses(self, rng: SeedLike = None) -> Dict[int, float]:
        sample = self._space.sample_approximate(rng)
        return dict(self._hypothesis_class.losses(sample))

    def vc_dimension(self) -> float:
        return self._vc_bound

    # ------------------------------------------------------------------
    # Reference quantities for tests / examples
    # ------------------------------------------------------------------
    def true_risks(self) -> Dict[Hashable, float]:
        """Exact expected risks over the *whole* space (ground truth)."""
        risks = exact_expected_risks(self._hypothesis_class, self._space.all_samples())
        return dict(zip(self._hypothesis_class.names, risks))
