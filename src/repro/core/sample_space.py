"""Explicitly enumerated sample spaces with an exact/approximate partition.

Large problems (betweenness on real graphs) never materialise their sample
space; they implement :class:`repro.core.problem.HypothesisRankingProblem`
directly.  The enumerated space here serves three purposes:

* it is the reference implementation the property-based tests compare the
  streaming estimators against;
* it powers the small worked examples (k-path centrality, toy hypothesis
  ranking) in ``examples/``;
* it documents the semantics of the partition: the *exact* subspace is
  evaluated in closed form, the *approximate* subspace is sampled from the
  conditional distribution ``D̃`` (Eq. 10 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

from repro.errors import SamplingError
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class WeightedSample:
    """One atom of a discrete sample space: the sample and its probability."""

    value: object
    probability: float

    def __post_init__(self) -> None:
        if self.probability < 0:
            raise ValueError(
                f"probability must be >= 0, got {self.probability}"
            )


class EnumeratedSampleSpace:
    """A fully enumerated discrete sample space split into two subspaces.

    Parameters
    ----------
    samples:
        The atoms with their probabilities.  Probabilities must sum to
        (approximately) 1.
    is_exact:
        Predicate selecting the exact subspace; everything else is the
        approximate subspace.
    """

    def __init__(
        self,
        samples: Sequence[WeightedSample],
        is_exact: Optional[Callable[[object], bool]] = None,
    ) -> None:
        if not samples:
            raise ValueError("sample space must not be empty")
        total = sum(sample.probability for sample in samples)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"sample probabilities must sum to 1 (got {total:.6f})"
            )
        self._samples = list(samples)
        predicate = is_exact if is_exact is not None else (lambda value: False)
        self._exact: List[WeightedSample] = []
        self._approximate: List[WeightedSample] = []
        for sample in self._samples:
            if predicate(sample.value):
                self._exact.append(sample)
            else:
                self._approximate.append(sample)
        self._lambda_exact = sum(sample.probability for sample in self._exact)
        self._lambda_approx = sum(sample.probability for sample in self._approximate)
        # Pre-computed cumulative weights for inverse-CDF sampling of D-tilde.
        self._cumulative: List[float] = []
        running = 0.0
        for sample in self._approximate:
            running += sample.probability
            self._cumulative.append(running)

    # ------------------------------------------------------------------
    # Subspace views
    # ------------------------------------------------------------------
    @property
    def lambda_exact(self) -> float:
        """Probability mass of the exact subspace (``lambda-hat``)."""
        return self._lambda_exact

    @property
    def lambda_approximate(self) -> float:
        """Probability mass of the approximate subspace (``lambda``)."""
        return self._lambda_approx

    def all_samples(self) -> Iterator[WeightedSample]:
        """Iterate over every atom (both subspaces)."""
        return iter(self._samples)

    def exact_samples(self) -> Iterator[WeightedSample]:
        """Iterate over the exact-subspace atoms."""
        return iter(self._exact)

    def approximate_samples(self) -> Iterator[WeightedSample]:
        """Iterate over the approximate-subspace atoms."""
        return iter(self._approximate)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_approximate(self, rng: SeedLike = None) -> object:
        """Draw one sample from the conditional distribution over the
        approximate subspace (Eq. 10)."""
        if not self._approximate or self._lambda_approx <= 0:
            raise SamplingError("the approximate subspace is empty")
        rng = ensure_rng(rng)
        threshold = rng.random() * self._lambda_approx
        low, high = 0, len(self._cumulative) - 1
        while low < high:
            mid = (low + high) // 2
            if self._cumulative[mid] < threshold:
                low = mid + 1
            else:
                high = mid
        return self._approximate[low].value

    def sample_full(self, rng: SeedLike = None) -> object:
        """Draw one sample from the *full* distribution ``D`` (used by the
        direct-estimation baseline in the framework comparison)."""
        rng = ensure_rng(rng)
        threshold = rng.random()
        running = 0.0
        for sample in self._samples:
            running += sample.probability
            if threshold < running:
                return sample.value
        return self._samples[-1].value
