"""High-level analysis helpers: run several estimators on one ranking task
and summarise their accuracy, ranking quality and cost side by side.

This is the library-level version of what ``examples/compare_baselines.py``
does and what a practitioner evaluating the method on their own graph needs:
one call, one table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence

from repro.baselines import (
    ABRA,
    KADABRA,
    BaderPivot,
    EgoBetweenness,
    RiondatoKornaropoulos,
)
from repro.centrality.brandes import betweenness_centrality
from repro.graphs import sssp as _sssp
from repro.graphs.graph import Graph
from repro.metrics.rank_correlation import kendall_tau, spearman_rank_correlation
from repro.metrics.topk import precision_at_k
from repro.metrics.zeros import classify_zeros
from repro.saphyra_bc.algorithm import SaPHyRaBC
from repro.utils.rng import SeedLike

Node = Hashable

#: Estimators `compare_estimators` knows how to build by name.
AVAILABLE_ESTIMATORS = (
    "saphyra",
    "saphyra_full",
    "kadabra",
    "abra",
    "rk",
    "bader",
    "ego",
)

#: Estimators defined on hop-shortest paths only: SaPHyRa's bidirectional
#: sample generator and the ego heuristic ignore edge weights, so on a
#: weighted run they are scored against the *hop* ground truth (their own
#: estimand) rather than the weighted one.
HOP_ONLY_ESTIMATORS = frozenset({"saphyra", "saphyra_full", "ego"})


@dataclass
class EstimatorComparison:
    """One estimator's row in the comparison table.

    Attributes
    ----------
    name:
        Estimator name (see :data:`AVAILABLE_ESTIMATORS`).
    wall_time_seconds, num_samples:
        Cost of the run.
    max_abs_error, spearman, kendall, precision_at_10, false_zeros:
        Quality metrics against the supplied (or exactly computed) ground
        truth; ``None`` when no ground truth is available.
    scores:
        The estimated betweenness of every target.
    """

    name: str
    wall_time_seconds: float
    num_samples: int
    scores: Dict[Node, float]
    max_abs_error: Optional[float] = None
    spearman: Optional[float] = None
    kendall: Optional[float] = None
    precision_at_10: Optional[float] = None
    false_zeros: Optional[int] = None


def compare_estimators(
    graph: Graph,
    targets: Sequence[Node],
    *,
    epsilon: float = 0.05,
    delta: float = 0.01,
    seed: SeedLike = 0,
    estimators: Sequence[str] = ("saphyra", "kadabra", "abra"),
    ground_truth: Optional[Mapping[Node, float]] = None,
    compute_ground_truth: bool = True,
    max_samples_cap: Optional[int] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    weighted: Optional[str] = None,
) -> List[EstimatorComparison]:
    """Run the named estimators on one subset-ranking task.

    Parameters
    ----------
    graph:
        A connected graph.
    targets:
        The target nodes to rank.
    epsilon, delta:
        Accuracy/confidence passed to every estimator.
    seed:
        Seed shared by all estimators (each still draws independent samples).
    estimators:
        Names from :data:`AVAILABLE_ESTIMATORS`.
    ground_truth:
        Known exact betweenness (normalised); when omitted and
        ``compute_ground_truth`` is true it is computed with Brandes —
        only do that on graphs where ``O(nm)`` is affordable.
    max_samples_cap:
        Optional cap forwarded to every estimator.
    backend:
        Traversal backend forwarded to every estimator and the ground-truth
        computation (``"dict"``, ``"csr"`` or ``None`` for the default).
    workers:
        Worker processes forwarded to every estimator and the ground-truth
        computation (``None`` resolves via ``REPRO_WORKERS``); worker counts
        never change results.
    weighted:
        SSSP engine selection (see :mod:`repro.graphs.sssp`).  On a
        weighted run, each estimator is scored against the ground truth of
        *its own estimand*: the weighted-aware estimators (KADABRA, ABRA,
        RK, Bader) against weighted Brandes, the hop-only estimators
        (:data:`HOP_ONLY_ESTIMATORS` — SaPHyRa and ego sample hop-shortest
        paths regardless of weights) against hop Brandes.  An explicit
        ``ground_truth`` argument is used for every estimator as-is.

    Returns
    -------
    list of :class:`EstimatorComparison`, in the order requested.
    """
    unknown = set(estimators) - set(AVAILABLE_ESTIMATORS)
    if unknown:
        raise ValueError(
            f"unknown estimators {sorted(unknown)}; "
            f"available: {', '.join(AVAILABLE_ESTIMATORS)}"
        )
    target_list = list(targets)
    use_weights = _sssp.effective_weighted(graph, weighted)
    truth_by_engine: Dict[bool, Optional[Dict[Node, float]]] = {}

    def truth_subset_for(name: str) -> Optional[Dict[Node, float]]:
        """The ground-truth subset matching this estimator's estimand."""
        if ground_truth is not None:
            return {node: ground_truth[node] for node in target_list}
        if not compute_ground_truth:
            return None
        estimator_weighted = use_weights and name not in HOP_ONLY_ESTIMATORS
        if estimator_weighted not in truth_by_engine:
            full = betweenness_centrality(
                graph, backend=backend, workers=workers,
                weighted="on" if estimator_weighted else "off",
            )
            truth_by_engine[estimator_weighted] = {
                node: full[node] for node in target_list
            }
        return truth_by_engine[estimator_weighted]

    rows: List[EstimatorComparison] = []
    for name in estimators:
        scores, seconds, samples = _run_estimator(
            name,
            graph,
            target_list,
            epsilon=epsilon,
            delta=delta,
            seed=seed,
            max_samples_cap=max_samples_cap,
            backend=backend,
            workers=workers,
            weighted=weighted,
        )
        row = EstimatorComparison(
            name=name,
            wall_time_seconds=seconds,
            num_samples=samples,
            scores=scores,
        )
        truth_subset = truth_subset_for(name)
        if truth_subset is not None:
            row.max_abs_error = max(
                abs(truth_subset[node] - scores.get(node, 0.0))
                for node in target_list
            )
            row.spearman = spearman_rank_correlation(truth_subset, scores)
            row.kendall = kendall_tau(truth_subset, scores)
            row.precision_at_10 = precision_at_k(
                truth_subset, scores, min(10, len(target_list))
            )
            row.false_zeros = classify_zeros(truth_subset, scores).false_zeros
        rows.append(row)
    return rows


def comparison_table(rows: Sequence[EstimatorComparison]) -> str:
    """Render comparison rows as an aligned text table."""
    from repro.experiments.report import render_table

    return render_table(
        ["estimator", "time (s)", "samples", "max err", "spearman", "kendall",
         "prec@10", "false zeros"],
        [
            (
                row.name,
                row.wall_time_seconds,
                row.num_samples,
                _fmt(row.max_abs_error),
                _fmt(row.spearman),
                _fmt(row.kendall),
                _fmt(row.precision_at_10),
                row.false_zeros if row.false_zeros is not None else "-",
            )
            for row in rows
        ],
    )


def _fmt(value: Optional[float]) -> object:
    return value if value is not None else "-"


def _run_estimator(
    name: str,
    graph: Graph,
    targets: List[Node],
    *,
    epsilon: float,
    delta: float,
    seed: SeedLike,
    max_samples_cap: Optional[int],
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    weighted: Optional[str] = None,
):
    """Run one estimator, returning ``(target scores, seconds, samples)``.

    ``weighted`` reaches the weighted-aware estimators only; SaPHyRa and
    ego are hop-based by construction (see :data:`HOP_ONLY_ESTIMATORS`).
    """
    if name in ("saphyra", "saphyra_full"):
        algorithm = SaPHyRaBC(
            epsilon, delta, seed=seed, max_samples_cap=max_samples_cap,
            backend=backend, workers=workers,
        )
        result = algorithm.rank(graph, targets if name == "saphyra" else None)
        scores = {node: result.scores[node] for node in targets}
        return scores, result.wall_time_seconds, result.num_samples

    factories = {
        "kadabra": lambda: KADABRA(
            epsilon, delta, seed=seed, max_samples_cap=max_samples_cap,
            backend=backend, workers=workers, weighted=weighted,
        ),
        "abra": lambda: ABRA(
            epsilon, delta, seed=seed, max_samples_cap=max_samples_cap,
            backend=backend, workers=workers, weighted=weighted,
        ),
        "rk": lambda: RiondatoKornaropoulos(
            epsilon, delta, seed=seed, max_samples_cap=max_samples_cap,
            backend=backend, workers=workers, weighted=weighted,
        ),
        "bader": lambda: BaderPivot(
            epsilon, delta, seed=seed, backend=backend, workers=workers,
            weighted=weighted,
        ),
        # The no-guarantee heuristic reference point; it can focus on the
        # target subset directly (the scores of other nodes are never read).
        "ego": lambda: EgoBetweenness(
            targets, backend=backend, workers=workers
        ),
    }
    result = factories[name]().estimate(graph)
    return (
        result.subset_scores(targets),
        result.wall_time_seconds,
        result.num_samples,
    )
