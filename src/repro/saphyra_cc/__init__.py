"""SaPHyRa_cc: ranking node subsets by closeness centrality.

The paper's conclusion names closeness centrality as the first measure the
framework should be extended to; this subpackage is that extension.  The
mapping mirrors Section II's recipe:

* a sample is a uniformly random node ``t``;
* the hypothesis ``h_v`` of a target ``v`` "predicts" the normalised distance
  ``d(v, t) / D`` (with ``D`` an upper bound on distances, so losses live in
  ``[0, 1]``);
* the expected risk of ``h_v`` is its normalised average distance — ranking
  hypotheses by *ascending* risk ranks nodes by *descending* closeness;
* the exact subspace contains the samples ``t ∈ A``: the pairwise distances
  among targets are computed exactly with one BFS per target, which is
  exactly the "samples directly linked to the target nodes" idea of the
  framework.
"""

from __future__ import annotations

from repro.saphyra_cc.algorithm import ClosenessRankingResult, SaPHyRaCC
from repro.saphyra_cc.problem import ClosenessProblem

__all__ = ["SaPHyRaCC", "ClosenessRankingResult", "ClosenessProblem"]
