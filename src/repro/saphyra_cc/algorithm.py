"""The SaPHyRa_cc algorithm: closeness ranking with the SaPHyRa framework."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence

from repro.core.estimation import SaPHyRaResult
from repro.core.ranking import rank_scores
from repro.core.saphyra import SaPHyRa
from repro.graphs.graph import Graph
from repro.saphyra_cc.problem import ClosenessProblem
from repro.utils.rng import SeedLike
from repro.utils.timing import Timer
from repro.utils.validation import check_probability_pair

Node = Hashable


@dataclass
class ClosenessRankingResult:
    """Closeness estimates and ranking for the target nodes.

    Attributes
    ----------
    targets:
        Target nodes in input order.
    closeness:
        ``{node: estimated closeness (n-1)/sum-of-distances}``.
    average_distance:
        ``{node: estimated average hop distance to the rest of the graph}``.
    ranking:
        Targets by decreasing estimated closeness (ties by id).
    epsilon, delta:
        Requested guarantee, expressed on the *normalised average distance*
        (the quantity the sampler actually estimates).
    num_samples:
        Samples drawn from the approximate subspace.
    lambda_exact:
        Mass of the exact subspace (``|A| / n``).
    wall_time_seconds:
        Total running time.
    framework:
        The underlying framework result (risks in normalised-distance units).
    """

    targets: List[Node]
    closeness: Dict[Node, float]
    average_distance: Dict[Node, float]
    ranking: List[Node]
    epsilon: float
    delta: float
    num_samples: int
    lambda_exact: float
    distance_bound: int
    wall_time_seconds: float = 0.0
    framework: Optional[SaPHyRaResult] = None
    extra: Dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.targets)


class SaPHyRaCC:
    """Rank a node subset by closeness centrality with the SaPHyRa framework.

    Parameters
    ----------
    epsilon, delta:
        ``(epsilon, delta)`` guarantee on the normalised average distance of
        every target (distances divided by the diameter bound, so epsilon is
        comparable across graphs).
    seed:
        RNG seed.
    max_samples_cap:
        Optional cap on the number of samples.
    workers:
        Worker processes for the sampling stage (``None`` resolves via
        ``REPRO_WORKERS``); bit-identical for any worker count.

    Examples
    --------
    >>> from repro.datasets.synthetic import karate_club_graph
    >>> result = SaPHyRaCC(epsilon=0.05, delta=0.1, seed=1).rank(
    ...     karate_club_graph(), [0, 5, 16, 33])
    >>> len(result.ranking)
    4
    """

    def __init__(
        self,
        epsilon: float = 0.05,
        delta: float = 0.01,
        *,
        seed: SeedLike = None,
        max_samples_cap: Optional[int] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> None:
        check_probability_pair(epsilon, delta)
        self.epsilon = epsilon
        self.delta = delta
        self.seed = seed
        self.max_samples_cap = max_samples_cap
        self.backend = backend
        self.workers = workers

    def rank(
        self,
        graph: Graph,
        targets: Sequence[Node],
        *,
        distance_bound: Optional[int] = None,
    ) -> ClosenessRankingResult:
        """Estimate closeness for ``targets`` and rank them."""
        timer = Timer()
        with timer:
            problem = ClosenessProblem(
                graph,
                targets,
                distance_bound=distance_bound,
                seed=self.seed,
                backend=self.backend,
            )
            orchestrator = SaPHyRa(
                self.epsilon,
                self.delta,
                seed=self.seed,
                max_samples_cap=self.max_samples_cap,
                workers=self.workers,
            )
            framework_result = orchestrator.rank(problem)

            average_distance: Dict[Node, float] = {}
            closeness: Dict[Node, float] = {}
            for node, risk in zip(framework_result.names, framework_result.risks):
                average_distance[node] = problem.risk_to_average_distance(risk)
                closeness[node] = problem.risk_to_closeness(risk)

        return ClosenessRankingResult(
            targets=list(targets),
            closeness=closeness,
            average_distance=average_distance,
            ranking=rank_scores(closeness),
            epsilon=self.epsilon,
            delta=self.delta,
            num_samples=framework_result.num_samples,
            lambda_exact=framework_result.lambda_exact,
            distance_bound=problem.distance_bound,
            wall_time_seconds=timer.elapsed,
            framework=framework_result,
        )
