"""Hypothesis-ranking formulation of closeness centrality.

Setup
-----
Let ``G`` be connected with ``n >= 2`` nodes and let ``A`` be the targets.
For an upper bound ``D`` on hop distances (estimated once with
:func:`repro.graphs.diameter.estimate_diameter`), define for each target
``v`` and each sample ``t != v``::

    loss(h_v, t) = d(v, t) / D          in [0, 1]

With ``t`` uniform over ``V \\ {v}`` the expected risk is
``R(h_v) = avg_t d(v, t) / D``, and the classic closeness
``c(v) = (n - 1) / sum_t d(v, t)`` is recovered as ``1 / (D * R(h_v))``.

Samples are drawn uniformly from ``V`` (the hypothesis' own node contributes
``d(v, v) = 0``).  The exact subspace is ``A`` itself
(``lambda-hat = |A| / n``): one BFS per target yields all pairwise target
distances, giving exact contributions for precisely the samples that are
"directly linked to the target nodes"; the approximate subspace is sampled
uniformly from ``V \\ A``.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Sequence

from repro.core.estimation import ExactEvaluation
from repro.engine import dag_cache as _dag_cache
from repro.errors import GraphError
from repro.graphs import csr as _csr
from repro.graphs.components import is_connected
from repro.graphs.diameter import estimate_diameter
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng

Node = Hashable


class ClosenessProblem:
    """The closeness-centrality hypothesis-ranking problem for targets ``A``.

    Parameters
    ----------
    graph:
        A connected graph with at least 2 nodes.
    targets:
        Target nodes to rank.
    distance_bound:
        Optional explicit upper bound ``D`` on hop distances; estimated from
        the graph when omitted.
    seed:
        Seed used only for the diameter estimate.
    backend:
        Traversal backend (``"dict"``, ``"csr"`` or ``None`` for the
        default).  The CSR path reads target distances straight off the BFS
        distance array instead of materialising per-node dicts; losses are
        identical either way.
    """

    def __init__(
        self,
        graph: Graph,
        targets: Sequence[Node],
        *,
        distance_bound: Optional[int] = None,
        seed: SeedLike = None,
        backend: Optional[str] = None,
    ) -> None:
        if graph.number_of_nodes() < 2:
            raise GraphError("closeness ranking needs at least 2 nodes")
        if not is_connected(graph):
            raise GraphError(
                "closeness ranking requires a connected graph; "
                "extract the largest connected component first"
            )
        targets = list(targets)
        if not targets:
            raise ValueError("targets must not be empty")
        missing = [node for node in targets if not graph.has_node(node)]
        if missing:
            raise GraphError(f"target nodes not in graph: {missing[:5]!r}")
        if len(set(targets)) != len(targets):
            raise ValueError("targets must be unique")

        self.graph = graph
        self.targets = targets
        self._nodes = list(graph.nodes())
        self.n = graph.number_of_nodes()
        # Target indices, target distances and the distance bound are all
        # frozen at construction; sample-time traversals read the live graph
        # (through the shared DAG cache).  Record the graph version so a
        # post-construction mutation fails loudly instead of silently mixing
        # stale per-target state with fresh distance rows.
        self._graph_version = graph._version
        if distance_bound is None:
            distance_bound = max(1, estimate_diameter(graph, seed))
        elif distance_bound < 1:
            raise ValueError(f"distance_bound must be >= 1, got {distance_bound}")
        self.distance_bound = distance_bound

        # Exact subspace: distances from every target to every target.
        self._target_set = set(targets)
        self._backend = _csr.effective_backend(graph, backend)
        if self._backend == _csr.CSR_BACKEND:
            self._snapshot = _csr.as_csr(graph)
            self._target_indices = [
                self._snapshot.index_of(node) for node in targets
            ]
            # One BFS distance array per target (``-1`` = unreachable).
            # Rows come from the shared source-DAG cache (repeated target
            # sweeps on the same graph — epsilon grids, repeated ranks —
            # reuse them); cache misses run as batched multi-source sweeps,
            # so the per-target thin frontiers still merge into fat ones on
            # road-style graphs.
            self._target_distances = dict(
                zip(targets, _dag_cache.source_distance_rows(graph, targets))
            )
        else:
            self._snapshot = None
            self._target_indices = None
            self._target_distances = {
                node: _dag_cache.source_distance_map(
                    graph, node, backend=self._backend
                )
                for node in targets
            }

    # ------------------------------------------------------------------
    @property
    def hypothesis_names(self) -> Sequence[Node]:
        return self.targets

    def exact_evaluation(self) -> ExactEvaluation:
        """Exact risks over the subspace ``{t : t in A}`` (mass ``|A| / n``)."""
        risks: List[float] = []
        scale = 1.0 / (self.n * self.distance_bound)
        for node in self.targets:
            distances = self._target_distances[node]
            if self._snapshot is not None:
                total = 0
                for other, other_index in zip(self.targets, self._target_indices):
                    if other != node:
                        total += int(distances[other_index])
            else:
                total = sum(
                    distances[other] for other in self.targets if other != node
                )
            risks.append(total * scale)
        return ExactEvaluation(lambda_exact=len(self.targets) / self.n, risks=risks)

    def sample_losses(self, rng: SeedLike = None) -> Mapping[int, float]:
        """Draw ``t`` uniformly from ``V \\ A`` and return all target losses.

        Unlike betweenness, closeness losses are dense: one BFS from the
        sampled node yields the distance to every target.
        """
        from repro.errors import SamplingError

        if self.graph._version != self._graph_version:
            raise GraphError(
                "graph was mutated after ClosenessProblem construction; "
                "the frozen target distances and distance bound no longer "
                "describe it — build a new problem instance"
            )
        if len(self.targets) >= self.n:
            raise SamplingError(
                "the approximate subspace is empty (every node is a target); "
                "the exact evaluation already covers the whole sample space"
            )
        rng = ensure_rng(rng)
        while True:
            sample = self._nodes[rng.randrange(self.n)]
            if sample not in self._target_set:
                break
        losses: Dict[int, float] = {}
        if self._snapshot is not None:
            # Distance rows are order-insensitive, so they come from the
            # shared cache (a re-drawn sample node reuses its BFS) and are
            # swept direction-optimised; the values match ``csr_bfs`` bit
            # for bit.
            dist = _dag_cache.source_distances(self.graph, sample)
            for index, target_index in enumerate(self._target_indices):
                distance = int(dist[target_index])
                if distance < 0:  # pragma: no cover - connected graphs
                    distance = self.distance_bound
                losses[index] = min(1.0, distance / self.distance_bound)
            return losses
        distances = _dag_cache.source_distance_map(
            self.graph, sample, backend=self._backend
        )
        for index, node in enumerate(self.targets):
            distance = distances.get(node)
            if distance is None:  # pragma: no cover - connected graphs
                distance = self.distance_bound
            losses[index] = min(1.0, distance / self.distance_bound)
        return losses

    def vc_dimension(self) -> float:
        """Pseudo-dimension bound for the [0, 1]-valued distance losses.

        The hypothesis class is a set of ``|A|`` fixed functions, so its
        pseudo-dimension is at most ``log2 |A|`` + 1; the diameter-based term
        ``log2 D + 1`` (distinct distance levels) is used when smaller, in
        the spirit of Lemma 5.
        """
        import math

        by_targets = math.floor(math.log2(max(1, len(self.targets)))) + 1
        by_distances = math.floor(math.log2(max(1, self.distance_bound))) + 1
        return float(min(by_targets, by_distances))

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def risk_to_average_distance(self, risk: float) -> float:
        """Convert a combined risk back to an average hop distance."""
        return risk * self.distance_bound * self.n / (self.n - 1)

    def risk_to_closeness(self, risk: float) -> float:
        """Convert a combined risk to classic closeness ``(n-1)/sum d``."""
        average = self.risk_to_average_distance(risk)
        if average <= 0:
            return 0.0
        return 1.0 / average
