"""Command-line interface: ``repro <command>`` or ``python -m repro <command>``.

Commands
--------
``rank``        Rank a node subset of a named dataset (or an edge-list file).
``datasets``    List the available datasets with their summaries.
``table``       Regenerate Table I, II or III.
``figure``      Regenerate the data behind Figures 3-7.
``lint``        Statically check the architecture invariants (AST-based).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro._version import __version__


def _add_backend_argument(subparser) -> None:
    # default=None so an absent flag leaves the REPRO_BACKEND environment
    # variable (or the built-in auto selection) in charge.
    subparser.add_argument(
        "--backend",
        choices=("auto", "dict", "csr"),
        default=None,
        help="traversal backend: csr (array kernels), dict (reference "
             "implementation), or auto (pick per graph size; the default, "
             "and when passed explicitly it overrides REPRO_BACKEND)",
    )
    # default=None so an absent flag leaves the REPRO_WEIGHTED environment
    # variable (or the built-in auto routing) in charge.
    subparser.add_argument(
        "--weighted",
        choices=("auto", "on", "off"),
        default=None,
        help="weighted SSSP routing: auto (use edge weights iff the graph "
             "has them; the default), on (force the Dijkstra engine, absent "
             "weights count as 1), or off (ignore weights, hop distances).  "
             "When passed explicitly it overrides REPRO_WEIGHTED",
    )
    # default=None so an absent flag leaves the REPRO_SSSP_KERNEL environment
    # variable (or the built-in auto selection) in charge.
    subparser.add_argument(
        "--sssp-kernel",
        choices=("auto", "dijkstra", "delta"),
        default=None,
        help="weighted SSSP kernel: dijkstra (per-source binary heap), "
             "delta (bucket-synchronous delta-stepping), or auto (delta for "
             "batched sweeps, dijkstra for single-source calls; the "
             "default).  When passed explicitly it overrides "
             "REPRO_SSSP_KERNEL.  The kernels are bit-identical — this "
             "never changes results, only wall-clock time",
    )
    # default=None so an absent flag leaves the REPRO_COMPILED environment
    # variable (or the built-in auto detection) in charge.
    subparser.add_argument(
        "--compiled",
        choices=("auto", "on", "off"),
        default=None,
        help="compiled (numba) kernel tier for the weighted engine: auto "
             "(use numba iff installed; the default), on (require numba — "
             "error when missing), or off (pure-Python loops).  When passed "
             "explicitly it overrides REPRO_COMPILED.  Never changes "
             "results, only wall-clock time",
    )
    # default=None so an absent flag leaves the REPRO_WORKERS environment
    # variable (or serial execution) in charge.
    subparser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for source sweeps and sampling (0 = serial; "
             "the default, and when passed explicitly it overrides "
             "REPRO_WORKERS).  Worker counts never change results, only "
             "wall-clock time",
    )
    # default=None so an absent flag leaves the REPRO_START_METHOD
    # environment variable (or the platform default) in charge.
    subparser.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method for the worker pool (the "
             "platform default when absent; when passed explicitly it "
             "overrides REPRO_START_METHOD).  The pool is bit-identical "
             "under every start method — this never changes results",
    )
    # default=None so an absent flag leaves the REPRO_DAG_CACHE environment
    # variable (or the built-in on default) in charge.
    subparser.add_argument(
        "--dag-cache",
        choices=("on", "off"),
        default=None,
        help="cross-sample shortest-path DAG cache (on by default; when "
             "passed explicitly it overrides REPRO_DAG_CACHE).  The cache "
             "never changes results, only wall-clock time; "
             "REPRO_DAG_CACHE_SIZE bounds its per-graph entry count",
    )
    # default=None so an absent flag leaves REPRO_DAG_CACHE_SIZE (or the
    # built-in default of 512) in charge.
    subparser.add_argument(
        "--dag-cache-size",
        type=int,
        default=None,
        metavar="N",
        help="per-graph LRU entry bound for the DAG cache (default 512; "
             "when passed explicitly it overrides REPRO_DAG_CACHE_SIZE).  "
             "Cache bounds never change results, only wall-clock time",
    )
    # default=None so an absent flag leaves REPRO_DAG_CACHE_BUDGET (or the
    # built-in default of 16M elements) in charge.
    subparser.add_argument(
        "--dag-cache-budget",
        type=int,
        default=None,
        metavar="N",
        help="per-graph estimated-element budget for the DAG cache "
             "(default 16000000, about 128 MB; when passed explicitly it "
             "overrides REPRO_DAG_CACHE_BUDGET).  Never changes results",
    )
    # default=None so an absent flag leaves the REPRO_DAG_CACHE_DELTA
    # environment variable (or the built-in auto default) in charge.
    subparser.add_argument(
        "--dag-cache-delta",
        choices=("auto", "on", "off"),
        default=None,
        help="delta cache invalidation for mutating graphs: auto (validate "
             "cached entries against the mutation journal, falling back to "
             "wholesale eviction past a size limit; the default), on "
             "(always validate), or off (journal disabled, wholesale "
             "eviction on every mutation — the pre-delta behaviour).  When "
             "passed explicitly it overrides REPRO_DAG_CACHE_DELTA.  "
             "Retention is only ever claimed when provably safe — this "
             "never changes results, only wall-clock time",
    )
    # default=None so an absent flag leaves REPRO_DELTA_JOURNAL_SIZE (or
    # the built-in default of 256) in charge.
    subparser.add_argument(
        "--delta-journal-size",
        type=int,
        default=None,
        metavar="N",
        help="mutation-journal cap per graph (default 256; when passed "
             "explicitly it overrides REPRO_DELTA_JOURNAL_SIZE).  Edits "
             "past the cap degrade to wholesale cache eviction; never "
             "changes results",
    )
    # default=None so an absent flag leaves the REPRO_SHARED_MEMORY
    # environment variable (or the built-in on default) in charge.
    subparser.add_argument(
        "--shared-memory",
        choices=("on", "off"),
        default=None,
        help="zero-copy shared-memory handoff of the CSR graph to worker "
             "processes (on by default when numpy and "
             "multiprocessing.shared_memory are available; when passed "
             "explicitly it overrides REPRO_SHARED_MEMORY).  Never changes "
             "results, only wall-clock time; 'off' ships the classic "
             "pickle payload",
    )
    # default=None so an absent flag leaves the REPRO_SNAPSHOT_DIR
    # environment variable (or no store at all) in charge.
    subparser.add_argument(
        "--snapshot-dir",
        default=None,
        metavar="DIR",
        help="on-disk CSR snapshot store: datasets are memoised to "
             "DIR/datasets and exact ground truth persists in "
             "DIR/ground_truth, so repeat invocations skip graph "
             "generation and Brandes entirely.  No store when absent "
             "(when passed explicitly it overrides REPRO_SNAPSHOT_DIR).  "
             "Never changes results, only cold-start time",
    )
    # default=None so an absent flag leaves the REPRO_MMAP environment
    # variable (or the built-in auto default) in charge.
    subparser.add_argument(
        "--mmap",
        choices=("auto", "on", "off"),
        default=None,
        help="how snapshot files are attached: auto (read-only np.memmap "
             "views when numpy is available; the default), on (same, "
             "asserting intent), or off (read arrays into RAM).  When "
             "passed explicitly it overrides REPRO_MMAP.  Mapped and "
             "in-RAM arrays are byte-identical — never changes results, "
             "only memory footprint and load time",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SaPHyRa: ranking nodes in large networks (ICDE 2022 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    rank = subparsers.add_parser("rank", help="rank a node subset by betweenness")
    rank.add_argument("--dataset", default="karate", help="dataset name (see `repro datasets`)")
    rank.add_argument("--edge-list", default=None, help="edge-list file overriding --dataset")
    rank.add_argument("--scale", type=float, default=0.25, help="dataset scale factor")
    rank.add_argument("--subset-size", type=int, default=20, help="random target-subset size")
    rank.add_argument("--targets", default=None, help="comma-separated node ids (overrides --subset-size)")
    rank.add_argument("--epsilon", type=float, default=0.05)
    rank.add_argument("--delta", type=float, default=0.01)
    rank.add_argument("--seed", type=int, default=7)
    rank.add_argument("--top", type=int, default=10, help="how many ranked nodes to print")
    _add_backend_argument(rank)

    subparsers.add_parser("datasets", help="list available datasets")

    compare = subparsers.add_parser(
        "compare", help="compare estimators on one subset-ranking task"
    )
    compare.add_argument("--dataset", default="karate")
    compare.add_argument("--scale", type=float, default=0.25)
    compare.add_argument("--subset-size", type=int, default=30)
    compare.add_argument("--epsilon", type=float, default=0.05)
    compare.add_argument("--delta", type=float, default=0.01)
    compare.add_argument("--seed", type=int, default=7)
    compare.add_argument(
        "--estimators", default="saphyra,kadabra,abra",
        help="comma-separated estimator names "
             "(saphyra, saphyra_full, kadabra, abra, rk, bader, ego)",
    )
    _add_backend_argument(compare)

    table = subparsers.add_parser("table", help="regenerate a table of the paper")
    table.add_argument("number", type=int, choices=(1, 2, 3), help="table number")
    table.add_argument("--scale", type=float, default=0.25)
    table.add_argument("--seed", type=int, default=7)
    table.add_argument(
        "--datasets", default=None,
        help="comma-separated dataset names (default: the paper's four networks)",
    )
    _add_backend_argument(table)

    figure = subparsers.add_parser("figure", help="regenerate a figure of the paper")
    figure.add_argument("number", type=int, choices=(3, 4, 5, 6, 7), help="figure number")
    figure.add_argument("--scale", type=float, default=0.15)
    figure.add_argument("--seed", type=int, default=7)
    figure.add_argument("--num-subsets", type=int, default=2)
    figure.add_argument("--subset-size", type=int, default=30)
    figure.add_argument(
        "--epsilons", default=None,
        help="comma-separated epsilon grid, e.g. '0.2,0.1,0.05'",
    )
    figure.add_argument(
        "--datasets", default=None,
        help="comma-separated dataset names (default: the paper's four networks)",
    )
    _add_backend_argument(figure)

    lint = subparsers.add_parser(
        "lint",
        help="run the AST-based invariant checker over source trees",
        description="Statically check the repo's architecture invariants "
                    "(knob protocol, float-fold discipline, RNG discipline, "
                    "env-mirror writes, kernel ownership).  Exits 1 on any "
                    "unsuppressed finding.",
    )
    from repro.lint.cli import add_arguments as _add_lint_arguments

    _add_lint_arguments(lint)

    return parser


def _parse_datasets(value):
    if value is None:
        return None
    return tuple(token.strip() for token in value.split(",") if token.strip())


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 1
    backend = getattr(args, "backend", None)
    if backend is not None:
        # "auto" is set explicitly too, so `--backend auto` restores
        # per-graph selection even when REPRO_BACKEND is exported.
        from repro.graphs.csr import set_default_backend

        set_default_backend(backend)
    weighted = getattr(args, "weighted", None)
    if weighted is not None:
        # `--weighted auto` is set explicitly too, so it restores per-graph
        # routing even when REPRO_WEIGHTED is exported.
        from repro.graphs.sssp import set_default_weighted

        set_default_weighted(weighted)
    sssp_kernel = getattr(args, "sssp_kernel", None)
    if sssp_kernel is not None:
        # `--sssp-kernel auto` is set explicitly too, so it restores the
        # built-in selection even when REPRO_SSSP_KERNEL is exported.
        from repro.graphs.sssp import set_default_sssp_kernel

        set_default_sssp_kernel(sssp_kernel)
    compiled = getattr(args, "compiled", None)
    if compiled is not None:
        # `--compiled auto` is set explicitly too, so it restores numba
        # auto-detection even when REPRO_COMPILED is exported.
        from repro.graphs.compiled import set_default_compiled

        set_default_compiled(compiled)
    workers = getattr(args, "workers", None)
    if workers is not None:
        # `--workers 0` is set explicitly too, so it restores serial
        # execution even when REPRO_WORKERS is exported.
        from repro.parallel import set_default_workers

        set_default_workers(workers)
    start_method = getattr(args, "start_method", None)
    if start_method is not None:
        # An explicit --start-method overrides REPRO_START_METHOD for the
        # whole process (and is mirrored back into it for nested tooling).
        from repro.parallel import set_default_start_method

        set_default_start_method(start_method)
    dag_cache = getattr(args, "dag_cache", None)
    if dag_cache is not None:
        # `--dag-cache off` is set explicitly too, so it disables the cache
        # even when REPRO_DAG_CACHE is exported.
        from repro.engine import set_dag_cache_enabled

        set_dag_cache_enabled(dag_cache == "on")
    dag_cache_size = getattr(args, "dag_cache_size", None)
    if dag_cache_size is not None:
        # An explicit bound overrides REPRO_DAG_CACHE_SIZE process-wide.
        from repro.engine import set_default_dag_cache_size

        set_default_dag_cache_size(dag_cache_size)
    dag_cache_budget = getattr(args, "dag_cache_budget", None)
    if dag_cache_budget is not None:
        # An explicit budget overrides REPRO_DAG_CACHE_BUDGET process-wide.
        from repro.engine import set_default_dag_cache_budget

        set_default_dag_cache_budget(dag_cache_budget)
    dag_cache_delta = getattr(args, "dag_cache_delta", None)
    if dag_cache_delta is not None:
        # `--dag-cache-delta auto` is set explicitly too, so it restores the
        # built-in default even when REPRO_DAG_CACHE_DELTA is exported.
        from repro.engine import set_default_dag_cache_delta

        set_default_dag_cache_delta(dag_cache_delta)
    delta_journal_size = getattr(args, "delta_journal_size", None)
    if delta_journal_size is not None:
        # An explicit cap overrides REPRO_DELTA_JOURNAL_SIZE process-wide.
        from repro.engine import set_default_delta_journal_size

        set_default_delta_journal_size(delta_journal_size)
    snapshot_dir = getattr(args, "snapshot_dir", None)
    if snapshot_dir is not None:
        # An explicit --snapshot-dir overrides REPRO_SNAPSHOT_DIR for the
        # whole process (and is mirrored back into it for spawn workers).
        from repro.graphs.store import set_default_snapshot_dir

        set_default_snapshot_dir(snapshot_dir)
    mmap = getattr(args, "mmap", None)
    if mmap is not None:
        # `--mmap auto` is set explicitly too, so it restores the built-in
        # default even when REPRO_MMAP is exported.
        from repro.graphs.store import set_default_mmap

        set_default_mmap(mmap)
    shared_memory = getattr(args, "shared_memory", None)
    if shared_memory is not None:
        # `--shared-memory off` is set explicitly too, so it restores the
        # pickle payload even when REPRO_SHARED_MEMORY is exported.
        from repro.parallel import set_shared_memory_enabled

        set_shared_memory_enabled(shared_memory == "on")
    if args.command == "lint":
        from repro.lint.cli import run as _run_lint

        return _run_lint(args)
    if args.command == "rank":
        return _command_rank(args)
    if args.command == "datasets":
        return _command_datasets()
    if args.command == "compare":
        return _command_compare(args)
    if args.command == "table":
        return _command_table(args)
    if args.command == "figure":
        return _command_figure(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


# ----------------------------------------------------------------------
def _command_rank(args) -> int:
    from repro.datasets import load, random_subset
    from repro.graphs.io import read_edge_list
    from repro.graphs.components import largest_connected_component
    from repro.saphyra_bc import SaPHyRaBC

    if args.edge_list:
        graph = read_edge_list(args.edge_list)
        graph = graph.subgraph(largest_connected_component(graph))
        name = args.edge_list
    else:
        dataset = load(args.dataset, scale=args.scale, seed=args.seed)
        graph, name = dataset.graph, dataset.name
    if args.targets:
        targets: List = []
        for token in args.targets.split(","):
            token = token.strip()
            targets.append(int(token) if token.lstrip("-").isdigit() else token)
    else:
        targets = random_subset(graph, min(args.subset_size, graph.number_of_nodes()), args.seed)
    # workers=None: the --workers flag was installed process-wide by main()
    # via set_default_workers, mirroring the --backend mechanism.
    algorithm = SaPHyRaBC(args.epsilon, args.delta, seed=args.seed)
    result = algorithm.rank(graph, targets)
    print(f"# dataset={name} nodes={graph.number_of_nodes()} edges={graph.number_of_edges()}")
    if graph.is_weighted:
        # SaPHyRa's bidirectional sample generator is defined on hop
        # distances; weighted rankings come from the weighted-aware
        # estimators (`repro compare --estimators kadabra,abra,rk,bader`).
        print(
            "# note: SaPHyRa ranks hop-shortest-path betweenness; edge "
            "weights are ignored by this command"
        )
    print(
        f"# epsilon={args.epsilon} delta={args.delta} samples={result.num_samples} "
        f"converged_by={result.converged_by} time={result.wall_time_seconds:.3f}s"
    )
    print("rank | node | estimated betweenness")
    for position, node in enumerate(result.ranking[: args.top], start=1):
        print(f"{position:4d} | {node} | {result.scores[node]:.6f}")
    return 0


def _command_compare(args) -> int:
    from repro.analysis import compare_estimators, comparison_table
    from repro.datasets import load, random_subset

    dataset = load(args.dataset, scale=args.scale, seed=args.seed)
    graph = dataset.graph
    targets = random_subset(
        graph, min(args.subset_size, graph.number_of_nodes()), args.seed
    )
    estimators = tuple(
        token.strip() for token in args.estimators.split(",") if token.strip()
    )
    rows = compare_estimators(
        graph,
        targets,
        epsilon=args.epsilon,
        delta=args.delta,
        seed=args.seed,
        estimators=estimators,
    )
    print(
        f"# dataset={dataset.name} nodes={graph.number_of_nodes()} "
        f"edges={graph.number_of_edges()} targets={len(targets)} "
        f"epsilon={args.epsilon} delta={args.delta}"
    )
    print(comparison_table(rows))
    return 0


def _command_datasets() -> int:
    from repro.datasets import available_datasets, load
    from repro.graphs.properties import summarize

    print("name | nodes | edges | diameter(est) | description")
    for name in available_datasets():
        dataset = load(name, scale=0.1, seed=0)
        summary = summarize(dataset.graph, exact=False, seed=0)
        print(
            f"{name} | {summary.num_nodes} | {summary.num_edges} | "
            f"{summary.diameter} | {dataset.description}"
        )
    return 0


def _command_table(args) -> int:
    from repro.experiments import (
        ExperimentConfig,
        render_table,
        table1_vc_bounds,
        table2_networks,
        table3_subsets,
    )

    overrides = {}
    datasets = _parse_datasets(args.datasets)
    if datasets is not None:
        overrides["datasets"] = datasets
    config = ExperimentConfig(scale=args.scale, seed=args.seed, **overrides)
    if args.number == 1:
        rows = table1_vc_bounds(config)
        print(
            render_table(
                ["dataset", "subset", "size", "VD(V)", "BD(V)", "BS(A)",
                 "VC RK", "VC full", "VC subset"],
                [
                    (
                        row.dataset,
                        row.subset_kind,
                        row.subset_size,
                        row.report.vertex_diameter,
                        row.report.max_block_diameter,
                        row.report.bs_value,
                        row.report.riondato_vc,
                        row.report.bicomponent_vc,
                        row.report.personalized_vc,
                    )
                    for row in rows
                ],
            )
        )
    elif args.number == 2:
        rows = table2_networks(config)
        print(
            render_table(
                ["dataset", "nodes", "edges", "diameter", "blocks", "cutpoints",
                 "paper nodes", "paper edges", "paper diam."],
                [
                    (
                        row.dataset,
                        row.summary.num_nodes,
                        row.summary.num_edges,
                        row.summary.diameter,
                        row.summary.num_blocks,
                        row.summary.num_cutpoints,
                        row.paper_nodes,
                        row.paper_edges,
                        row.paper_diameter,
                    )
                    for row in rows
                ],
            )
        )
    else:
        rows = table3_subsets(config)
        print(
            render_table(
                ["area", "nodes", "edges"],
                [(row.area, row.num_nodes, row.num_edges) for row in rows],
            )
        )
    return 0


def _command_figure(args) -> int:
    from repro.experiments import (
        ExperimentConfig,
        figure3_running_time,
        figure4_rank_correlation,
        figure5_subset_size,
        figure6_relative_error,
        figure7_road_case_study,
        render_table,
    )
    from repro.experiments.figures import epsilon_sweep

    overrides = {}
    datasets = _parse_datasets(args.datasets)
    if datasets is not None:
        overrides["datasets"] = datasets
    if args.epsilons is not None:
        overrides["epsilons"] = tuple(
            float(token) for token in args.epsilons.split(",") if token.strip()
        )
    config = ExperimentConfig(
        scale=args.scale,
        seed=args.seed,
        num_subsets=args.num_subsets,
        subset_size=args.subset_size,
        subset_sizes=(10, args.subset_size),
        **overrides,
    )
    if args.number in (3, 4):
        rows = epsilon_sweep(config)
        if args.number == 3:
            series = figure3_running_time(rows=rows)
            for dataset, curves in series.items():
                print(f"== Fig. 3 ({dataset}): running time (s) ==")
                print(
                    render_table(
                        ["epsilon"] + list(curves),
                        _merge_series(curves),
                    )
                )
        else:
            series = figure4_rank_correlation(rows=rows)
            for dataset, curves in series.items():
                print(f"== Fig. 4 ({dataset}): Spearman correlation ==")
                print(
                    render_table(
                        ["epsilon"] + list(curves),
                        _merge_series(
                            {name: [(x, y) for x, y, _, _ in points] for name, points in curves.items()}
                        ),
                    )
                )
    elif args.number == 5:
        rows = figure5_subset_size(config)
        print(
            render_table(
                ["dataset", "algorithm", "subset size", "spearman", "ci low", "ci high"],
                [
                    (r.dataset, r.algorithm, r.subset_size, r.mean_spearman,
                     r.spearman_ci_low, r.spearman_ci_high)
                    for r in rows
                ],
            )
        )
    elif args.number == 6:
        rows = figure6_relative_error(config)
        print(
            render_table(
                ["dataset", "algorithm", "true zeros %", "false zeros %"],
                [
                    (r.dataset, r.algorithm, r.true_zero_percent, r.false_zero_percent)
                    for r in rows
                ],
            )
        )
    else:
        rows = figure7_road_case_study(config)
        print(
            render_table(
                ["area", "algorithm", "nodes", "time (s)", "spearman", "rank dev. %"],
                [
                    (r.area, r.algorithm, r.num_nodes, r.running_time_seconds,
                     r.spearman, r.rank_deviation_percent)
                    for r in rows
                ],
            )
        )
    return 0


def _merge_series(curves):
    """Merge ``{label: [(x, y), ...]}`` into table rows keyed by x."""
    xs = []
    for points in curves.values():
        for x, _ in points:
            if x not in xs:
                xs.append(x)
    rows = []
    for x in xs:
        row = [x]
        for label in curves:
            value = next((y for px, y in curves[label] if px == x), "-")
            row.append(value)
        rows.append(row)
    return rows


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
