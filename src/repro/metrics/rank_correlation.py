"""Rank correlation measures (Eq. 1 of the paper).

Ranks are always distinct integers ``1..k`` — ties in the underlying scores
are broken by node id, exactly as the paper's evaluation does — so Spearman's
coefficient can use the simple displacement formula.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Sequence

from repro.core.ranking import ranks_from_scores

Node = Hashable


def _common_keys(truth: Mapping[Node, float], estimate: Mapping[Node, float]) -> list:
    missing = [key for key in truth if key not in estimate]
    if missing:
        raise ValueError(
            f"estimate is missing {len(missing)} nodes present in the ground truth "
            f"(e.g. {missing[:3]!r})"
        )
    return list(truth)


def spearman_rank_correlation(
    truth: Mapping[Node, float], estimate: Mapping[Node, float]
) -> float:
    """Spearman's rank correlation between two score mappings (Eq. 1).

    ``r_s = 1 - 6 * sum d_i^2 / (k (k^2 - 1))`` where ``d_i`` is the rank
    displacement of node ``i``.  Both mappings are ranked over the keys of
    ``truth``; ``estimate`` must cover all of them.  Returns 1.0 for a single
    node (the correlation is undefined; agreeing on one element is perfect).
    """
    keys = _common_keys(truth, estimate)
    k = len(keys)
    if k <= 1:
        return 1.0
    truth_ranks = ranks_from_scores({key: truth[key] for key in keys})
    estimate_ranks = ranks_from_scores({key: estimate[key] for key in keys})
    displacement_sq = sum(
        (truth_ranks[key] - estimate_ranks[key]) ** 2 for key in keys
    )
    return 1.0 - 6.0 * displacement_sq / (k * (k * k - 1))


def kendall_tau(truth: Mapping[Node, float], estimate: Mapping[Node, float]) -> float:
    """Kendall's tau-a between the two induced rankings.

    Counts concordant minus discordant pairs over all ``k (k - 1) / 2``
    pairs.  ``O(k^2)``; fine for the subset sizes used in the experiments
    (tens to a few hundred nodes).
    """
    keys = _common_keys(truth, estimate)
    k = len(keys)
    if k <= 1:
        return 1.0
    truth_ranks = ranks_from_scores({key: truth[key] for key in keys})
    estimate_ranks = ranks_from_scores({key: estimate[key] for key in keys})
    concordant = 0
    discordant = 0
    for i in range(k):
        for j in range(i + 1, k):
            a = truth_ranks[keys[i]] - truth_ranks[keys[j]]
            b = estimate_ranks[keys[i]] - estimate_ranks[keys[j]]
            product = a * b
            if product > 0:
                concordant += 1
            elif product < 0:
                discordant += 1
    total = k * (k - 1) / 2
    return (concordant - discordant) / total


def rank_displacements(
    truth: Mapping[Node, float], estimate: Mapping[Node, float]
) -> Dict[Node, int]:
    """Per-node signed rank displacement (estimated rank minus true rank)."""
    keys = _common_keys(truth, estimate)
    truth_ranks = ranks_from_scores({key: truth[key] for key in keys})
    estimate_ranks = ranks_from_scores({key: estimate[key] for key in keys})
    return {key: estimate_ranks[key] - truth_ranks[key] for key in keys}
