"""Top-k agreement metrics.

Whole-network estimators are known to identify the most central nodes well
(the paper concedes as much in the introduction); these metrics quantify that
so the evaluation can show *where* the methods differ: the top of the ranking
(everyone is fine) versus the long tail (only the subset-aware method is).
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.core.ranking import rank_scores

Node = Hashable


def precision_at_k(
    truth: Mapping[Node, float], estimate: Mapping[Node, float], k: int
) -> float:
    """Fraction of the true top-k contained in the estimated top-k."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    true_top = set(rank_scores(dict(truth))[:k])
    estimated_top = set(rank_scores({node: estimate.get(node, 0.0) for node in truth})[:k])
    if not true_top:
        return 1.0
    return len(true_top & estimated_top) / len(true_top)


def jaccard_at_k(
    truth: Mapping[Node, float], estimate: Mapping[Node, float], k: int
) -> float:
    """Jaccard similarity between the true and estimated top-k sets."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    true_top = set(rank_scores(dict(truth))[:k])
    estimated_top = set(rank_scores({node: estimate.get(node, 0.0) for node in truth})[:k])
    union = true_top | estimated_top
    if not union:
        return 1.0
    return len(true_top & estimated_top) / len(union)


def bottom_half_spearman(
    truth: Mapping[Node, float], estimate: Mapping[Node, float]
) -> float:
    """Spearman correlation restricted to the *lower* half of the true ranking.

    This isolates the paper's point: the ranking of low-centrality nodes is
    where whole-network estimators break down.
    """
    from repro.metrics.rank_correlation import spearman_rank_correlation

    ordered = rank_scores(dict(truth))
    lower_half = ordered[len(ordered) // 2 :]
    if len(lower_half) < 2:
        return 1.0
    truth_lower = {node: truth[node] for node in lower_half}
    estimate_lower = {node: estimate.get(node, 0.0) for node in lower_half}
    return spearman_rank_correlation(truth_lower, estimate_lower)
