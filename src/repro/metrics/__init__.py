"""Ranking-quality and estimation-quality metrics used in the evaluation."""

from __future__ import annotations

from repro.metrics.deviation import average_rank_deviation, rank_deviations
from repro.metrics.errors import (
    estimation_within_epsilon,
    max_absolute_error,
    mean_absolute_error,
    signed_relative_errors,
)
from repro.metrics.rank_correlation import kendall_tau, spearman_rank_correlation
from repro.metrics.topk import bottom_half_spearman, jaccard_at_k, precision_at_k
from repro.metrics.zeros import ZeroStatistics, classify_zeros, relative_error_histogram

__all__ = [
    "spearman_rank_correlation",
    "kendall_tau",
    "precision_at_k",
    "jaccard_at_k",
    "bottom_half_spearman",
    "signed_relative_errors",
    "max_absolute_error",
    "mean_absolute_error",
    "estimation_within_epsilon",
    "classify_zeros",
    "ZeroStatistics",
    "relative_error_histogram",
    "rank_deviations",
    "average_rank_deviation",
]
