"""Rank deviation (the Fig. 7a metric of the USA-road case study).

For each node the deviation is the absolute difference between its estimated
rank and its true rank, expressed as a percentage of the subset size; the
case study reports the average over nodes in a geographic area.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Optional

from repro.core.ranking import ranks_from_scores

Node = Hashable


def rank_deviations(
    truth: Mapping[Node, float], estimate: Mapping[Node, float]
) -> Dict[Node, float]:
    """Per-node absolute rank deviation as a percentage of the subset size."""
    keys = list(truth)
    k = len(keys)
    if k == 0:
        return {}
    truth_ranks = ranks_from_scores({key: truth[key] for key in keys})
    estimate_ranks = ranks_from_scores(
        {key: estimate.get(key, 0.0) for key in keys}
    )
    return {
        key: 100.0 * abs(truth_ranks[key] - estimate_ranks[key]) / k for key in keys
    }


def average_rank_deviation(
    truth: Mapping[Node, float],
    estimate: Mapping[Node, float],
    nodes: Optional[Iterable[Node]] = None,
) -> float:
    """Average rank deviation over ``nodes`` (default: all ground-truth nodes)."""
    deviations = rank_deviations(truth, estimate)
    selected = list(nodes) if nodes is not None else list(deviations)
    values = [deviations[node] for node in selected if node in deviations]
    if not values:
        return 0.0
    return sum(values) / len(values)
