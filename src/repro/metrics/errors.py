"""Estimation-error metrics: absolute errors, relative errors, (eps, delta)
checks."""

from __future__ import annotations

import math
from typing import Dict, Hashable, Mapping

Node = Hashable


def max_absolute_error(
    truth: Mapping[Node, float], estimate: Mapping[Node, float]
) -> float:
    """``max_v |truth(v) - estimate(v)|`` over the ground-truth keys."""
    return max(abs(truth[node] - estimate.get(node, 0.0)) for node in truth)


def mean_absolute_error(
    truth: Mapping[Node, float], estimate: Mapping[Node, float]
) -> float:
    """Mean of ``|truth(v) - estimate(v)|`` over the ground-truth keys."""
    if not truth:
        return 0.0
    total = sum(abs(truth[node] - estimate.get(node, 0.0)) for node in truth)
    return total / len(truth)


def estimation_within_epsilon(
    truth: Mapping[Node, float], estimate: Mapping[Node, float], epsilon: float
) -> bool:
    """True iff every node's absolute error is below ``epsilon`` (Eq. 2)."""
    return max_absolute_error(truth, estimate) < epsilon


def signed_relative_errors(
    truth: Mapping[Node, float], estimate: Mapping[Node, float]
) -> Dict[Node, float]:
    """Per-node signed relative error in percent (the Fig. 6 metric).

    ``(estimate / truth - 1) * 100``.  When the true value is 0: the error is
    0 if the estimate is also 0 and ``inf`` otherwise, matching the paper's
    convention.
    """
    errors: Dict[Node, float] = {}
    for node, true_value in truth.items():
        estimated = estimate.get(node, 0.0)
        if true_value == 0.0:
            errors[node] = 0.0 if estimated == 0.0 else math.inf
        else:
            errors[node] = (estimated / true_value - 1.0) * 100.0
    return errors
