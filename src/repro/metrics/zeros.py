"""True-zero / false-zero analysis and the relative-error histogram (Fig. 6).

The paper's key diagnostic for why whole-network estimators rank badly:
nodes whose betweenness is estimated as exactly zero.  A *true zero* has
betweenness 0 and is estimated 0 (harmless); a *false zero* has positive
betweenness but an estimate of 0 (its relative error is -100% and its rank
is essentially random).  SaPHyRa_bc produces no false zeros (Lemma 19).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

from repro.metrics.errors import signed_relative_errors

Node = Hashable


@dataclass
class ZeroStatistics:
    """Counts of zero-estimated nodes.

    Attributes
    ----------
    num_nodes:
        Number of evaluated nodes.
    true_zeros:
        Nodes with ``bc = 0`` estimated as 0.
    false_zeros:
        Nodes with ``bc > 0`` estimated as 0.
    """

    num_nodes: int
    true_zeros: int
    false_zeros: int

    @property
    def true_zero_fraction(self) -> float:
        """Fraction of evaluated nodes that are true zeros."""
        return self.true_zeros / self.num_nodes if self.num_nodes else 0.0

    @property
    def false_zero_fraction(self) -> float:
        """Fraction of evaluated nodes that are false zeros."""
        return self.false_zeros / self.num_nodes if self.num_nodes else 0.0


def classify_zeros(
    truth: Mapping[Node, float], estimate: Mapping[Node, float], *, tolerance: float = 0.0
) -> ZeroStatistics:
    """Count true zeros and false zeros of ``estimate`` w.r.t. ``truth``.

    ``tolerance`` treats estimates with absolute value <= tolerance as zero
    (useful when an estimator adds tiny smoothing terms).
    """
    true_zeros = 0
    false_zeros = 0
    for node, true_value in truth.items():
        estimated = abs(estimate.get(node, 0.0))
        if estimated <= tolerance:
            if true_value == 0.0:
                true_zeros += 1
            else:
                false_zeros += 1
    return ZeroStatistics(
        num_nodes=len(truth), true_zeros=true_zeros, false_zeros=false_zeros
    )


def relative_error_histogram(
    truth: Mapping[Node, float],
    estimate: Mapping[Node, float],
    *,
    bin_edges: Sequence[float] = (-150.0, -100.0, -50.0, 0.0, 50.0, 100.0, 150.0),
) -> List[Tuple[str, float]]:
    """Histogram of signed relative errors in percent (the Fig. 6 plot).

    Errors beyond the last edge (including infinite errors for false
    positives on zero-centrality nodes) are grouped into a single overflow
    bucket, as in the paper.  Returns ``[(bucket label, percentage), ...]``.
    """
    errors = list(signed_relative_errors(truth, estimate).values())
    if not errors:
        return []
    edges = list(bin_edges)
    if len(edges) < 2 or any(b <= a for a, b in zip(edges, edges[1:])):
        raise ValueError("bin_edges must be strictly increasing with >= 2 values")
    num_bins = len(edges) - 1
    counts = [0] * (num_bins + 1)  # final slot: overflow / infinite errors
    for error in errors:
        if math.isinf(error) or error >= edges[-1]:
            counts[-1] += 1
        elif error < edges[0]:
            counts[0] += 1
        else:
            for index in range(num_bins):
                if edges[index] <= error < edges[index + 1]:
                    counts[index] += 1
                    break
    total = len(errors)
    labels = [
        f"[{edges[index]:g}, {edges[index + 1]:g})" for index in range(num_bins)
    ]
    labels.append(f">= {edges[-1]:g} or inf")
    return [
        (label, 100.0 * count / total) for label, count in zip(labels, counts)
    ]
