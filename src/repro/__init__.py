"""SaPHyRa: a learning-theory approach to ranking nodes in large networks.

This package is a from-scratch reproduction of the ICDE 2022 paper
*"SaPHyRa: A Learning Theory Approach to Ranking Nodes in Large Networks"*
by Thai, Thai, Vu and Dinh.  It provides:

* a graph substrate (:mod:`repro.graphs`) with biconnected-component
  decomposition, block-cut trees, balanced bidirectional BFS and optional
  positive edge weights behind one SSSP abstraction (BFS for unit weights,
  deterministic Dijkstra for weighted graphs — :mod:`repro.graphs.sssp`);
* the unified sampling engine (:mod:`repro.engine`): shared sample
  schedules, stopping rules, the deterministic chunked driver, and the
  cross-sample source-DAG cache every estimator draws through;
* the generic SaPHyRa hypothesis-ranking framework (:mod:`repro.core`);
* the betweenness-centrality instantiation SaPHyRa_bc
  (:mod:`repro.saphyra_bc`);
* sampling baselines from the paper's evaluation — ABRA, KADABRA,
  Riondato–Kornaropoulos and Bader (:mod:`repro.baselines`);
* ranking-quality metrics (:mod:`repro.metrics`), synthetic dataset
  surrogates (:mod:`repro.datasets`) and the experiment harness
  (:mod:`repro.experiments`) that regenerates every table and figure in the
  paper's evaluation section.

Quickstart
----------

>>> from repro import datasets, saphyra_bc
>>> graph = datasets.load("karate").graph
>>> targets = list(range(10))
>>> result = saphyra_bc.SaPHyRaBC(epsilon=0.05, delta=0.01, seed=7).rank(graph, targets)
>>> len(result.ranking) == len(targets)
True
"""

from __future__ import annotations

from repro._version import __version__
from repro.errors import (
    ConvergenceError,
    DatasetError,
    GraphError,
    ReproError,
    SamplingError,
)

__all__ = [
    "__version__",
    "ReproError",
    "GraphError",
    "SamplingError",
    "DatasetError",
    "ConvergenceError",
]
