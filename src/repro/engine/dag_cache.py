"""Cross-sample caching of shortest-path DAGs and BFS distance rows.

Sampling estimators repeat traversals: ABRA rebuilds the shortest-path DAG
of every sampled source, RK does the same before sampling one path from it,
closeness-style problems sweep the same target set once per run, and pivot
workloads hammer a small source set.  A traversal from a fixed source on a
fixed graph is a pure function, so those repeats are pure waste.

:class:`SourceDAGCache` memoises them, keyed on
``(Graph._version, source, backend, weighted)`` — the ``weighted`` flag
distinguishes hop-distance (BFS) traversals from weighted (Dijkstra)
traversals of the same source, so estimators running both engines on one
graph never cross-contaminate:

* entries are stored per graph object (weakly — a collected graph drops its
  entries); a ``Graph._version`` bump triggers **delta validation** (PR 8):
  when the mutation journal of :mod:`repro.graphs.delta` covers the gap,
  each entry is tested against the journalled edits (an inserted edge can
  only affect a source whose cached distances it shortens — or ties, for
  DAG entries; a deletion only one whose shortest paths it lies on) and
  survivors re-key to the new version.  Uncovered gaps — or
  ``dag_cache_delta=off`` (``REPRO_DAG_CACHE_DELTA``) — fall back to the
  historical wholesale eviction, exactly like the CSR snapshot cache in
  :mod:`repro.graphs.csr`;
* each graph's store is an LRU bounded *twice*: by entry count
  (``max_entries``) and by an estimated element budget (``max_cost``, in
  stored int64/float64-sized elements), so pivot-heavy workloads keep their
  hot sources resident while a uniform-random workload on a huge graph —
  where a single DAG is already hundreds of megabytes — degrades to
  holding roughly one traversal at a time (the pre-cache peak memory)
  instead of pinning hundreds of them;
* hit/miss/eviction counters make the behaviour testable and benchable.

Caching **never changes results**: a cached DAG is the same object the
uncached code path would recompute, DAG construction consumes no RNG, and
path sampling only reads the DAG.  The equivalence tests assert cached ==
uncached == ``workers > 1`` bit for bit.

Configuration: the process-wide default cache honours ``REPRO_DAG_CACHE``
(``1``/``on`` — the default — or ``0``/``off``), ``REPRO_DAG_CACHE_SIZE``
(max entries per graph, default 512) and ``REPRO_DAG_CACHE_BUDGET`` (max
estimated elements per graph, default 16M ≈ 128 MB);
:func:`set_dag_cache_enabled`, :func:`set_default_dag_cache_size` and
:func:`set_default_dag_cache_budget` (the CLI's ``--dag-cache`` /
``--dag-cache-size`` / ``--dag-cache-budget`` flags) override the
environment, mirroring the backend/workers knobs.  The override is
mirrored into the environment
variable so worker processes started under any start method — including
``spawn``, which re-imports this module from scratch — resolve the same
setting as the parent.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

from repro.graphs import csr as _csr
from repro.graphs import delta as _delta
from repro.graphs.delta import (  # re-exported via repro.engine
    DAG_CACHE_DELTA_ENV_VAR,
    DELTA_JOURNAL_SIZE_ENV_VAR,
    default_dag_cache_delta,
    resolve_dag_cache_delta,
    resolve_delta_journal_size,
    set_default_dag_cache_delta,
    set_default_delta_journal_size,
)
from repro.graphs.graph import Graph
from repro.parallel import EnvMirroredOverride

Node = Hashable

#: Environment variable toggling the default cache (``1``/``on`` | ``0``/``off``).
DAG_CACHE_ENV_VAR = "REPRO_DAG_CACHE"

#: Environment variable bounding the per-graph entry count of the default cache.
DAG_CACHE_SIZE_ENV_VAR = "REPRO_DAG_CACHE_SIZE"

#: Environment variable bounding the per-graph element budget of the default
#: cache (one unit ~ one stored int64/float64, so the default is ~128 MB).
DAG_CACHE_BUDGET_ENV_VAR = "REPRO_DAG_CACHE_BUDGET"

#: Default per-graph LRU capacity (DAGs *and* distance rows count as entries).
DEFAULT_DAG_CACHE_SIZE = 512

#: Default per-graph element budget (~128 MB of 8-byte elements).
DEFAULT_DAG_CACHE_BUDGET = 16_000_000

_TRUE_VALUES = ("1", "on", "true", "yes")
_FALSE_VALUES = ("0", "off", "false", "no")

_enabled_override: Optional[bool] = None
_env_mirror = EnvMirroredOverride(DAG_CACHE_ENV_VAR)


def dag_cache_enabled() -> bool:
    """Whether the shared default cache is consulted by the samplers.

    Resolution order: :func:`set_dag_cache_enabled` override, then the
    ``REPRO_DAG_CACHE`` environment variable, then on.

    The size and budget variables are validated here eagerly as well (not
    only when a cache is actually built), matching the eager
    ``REPRO_BACKEND`` validation in :func:`repro.graphs.csr.resolve_backend`:
    a typo'd ``REPRO_DAG_CACHE_SIZE`` surfaces as one clear error naming the
    variable at the first cache decision instead of deep inside a sampler.
    """
    _env_cache_size()
    _env_cache_budget()
    if _enabled_override is not None:
        return _enabled_override
    env = os.environ.get(DAG_CACHE_ENV_VAR, "").strip().lower()
    if not env:
        return True
    if env in _TRUE_VALUES:
        return True
    if env in _FALSE_VALUES:
        return False
    raise ValueError(
        f"{DAG_CACHE_ENV_VAR}={env!r} is not a valid setting; use one of "
        f"{_TRUE_VALUES} to enable or {_FALSE_VALUES} to disable"
    )


def set_dag_cache_enabled(enabled: Optional[bool]) -> None:
    """Force the cache on/off process-wide (``None`` restores env resolution).

    The choice is mirrored into ``REPRO_DAG_CACHE`` so worker processes
    inherit it under every multiprocessing start method: ``fork`` children
    copy the module global, but ``spawn``/``forkserver`` children re-import
    this module fresh and would otherwise fall back to the parent's
    *original* environment.  ``None`` restores the environment variable the
    first override displaced.  The mirroring protocol is
    :class:`repro.parallel.EnvMirroredOverride`, shared with the
    workers/shared-memory knobs.
    """
    global _enabled_override
    _env_mirror.set(None if enabled is None else ("1" if enabled else "0"))
    _enabled_override = enabled


def _positive_int_env(name: str) -> Optional[int]:
    """Return the validated positive-int value of ``name`` (``None`` = unset)."""
    env = os.environ.get(name, "").strip()
    if not env:
        return None
    try:
        value = int(env)
    except ValueError:
        raise ValueError(
            f"{name}={env!r} is not a valid cache size; "
            "expected a positive integer"
        ) from None
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def _env_cache_size() -> Optional[int]:
    return _positive_int_env(DAG_CACHE_SIZE_ENV_VAR)


def _env_cache_budget() -> Optional[int]:
    return _positive_int_env(DAG_CACHE_BUDGET_ENV_VAR)


_size_override: Optional[int] = None
_budget_override: Optional[int] = None
_size_env_mirror = EnvMirroredOverride(DAG_CACHE_SIZE_ENV_VAR)
_budget_env_mirror = EnvMirroredOverride(DAG_CACHE_BUDGET_ENV_VAR)


def _check_cache_bound(value: int, *, source: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(
            f"{source} must be a positive int, got {type(value).__name__}"
        )
    if value < 1:
        raise ValueError(f"{source} must be >= 1, got {value}")
    return value


def resolve_dag_cache_size() -> int:
    """The per-graph entry bound new caches are built with.

    Resolution order: :func:`set_default_dag_cache_size` override, then the
    ``REPRO_DAG_CACHE_SIZE`` environment variable, then
    :data:`DEFAULT_DAG_CACHE_SIZE`.
    """
    env = _env_cache_size()
    if _size_override is not None:
        return _size_override
    return env if env is not None else DEFAULT_DAG_CACHE_SIZE


def resolve_dag_cache_budget() -> int:
    """The per-graph element budget new caches are built with.

    Resolution order: :func:`set_default_dag_cache_budget` override, then
    the ``REPRO_DAG_CACHE_BUDGET`` environment variable, then
    :data:`DEFAULT_DAG_CACHE_BUDGET`.
    """
    env = _env_cache_budget()
    if _budget_override is not None:
        return _budget_override
    return env if env is not None else DEFAULT_DAG_CACHE_BUDGET


def set_default_dag_cache_size(size: Optional[int]) -> None:
    """Set (or with ``None`` clear) the default per-graph entry bound.

    Mirrored into ``REPRO_DAG_CACHE_SIZE`` (the
    :class:`repro.parallel.EnvMirroredOverride` protocol) so worker
    processes build their caches with the same bound under every start
    method; ``None`` restores the variable the first override displaced.
    The process-wide default cache is dropped so the next use is rebuilt
    with the new bound (the cache never changes results, so rebuilding is
    free of correctness concerns).
    """
    global _size_override
    if size is not None:
        _check_cache_bound(size, source="dag_cache_size")
    _size_env_mirror.set(None if size is None else str(size))
    _size_override = size
    clear_default_dag_cache()


def set_default_dag_cache_budget(budget: Optional[int]) -> None:
    """Set (or with ``None`` clear) the default per-graph element budget.

    Same mirroring and default-cache-rebuild semantics as
    :func:`set_default_dag_cache_size`.
    """
    global _budget_override
    if budget is not None:
        _check_cache_bound(budget, source="dag_cache_budget")
    _budget_env_mirror.set(None if budget is None else str(budget))
    _budget_override = budget
    clear_default_dag_cache()


def _entry_cost(value: object) -> int:
    """Rough element count of one cached value (1 unit ~ 8 bytes stored).

    Distance rows cost their length; DAGs cost their state arrays plus a
    conservative bound on the recorded DAG edges.  The estimate only has to
    be the right order of magnitude — it drives the LRU budget, nothing
    else.
    """
    size = getattr(value, "size", None)  # numpy distance row
    if isinstance(size, int):
        return max(1, size)
    if isinstance(value, (dict, list)):  # distance map / pure-python row
        return max(1, len(value))
    csr = getattr(value, "csr", None)
    if csr is not None:  # CSRShortestPathDAG: ~4 state arrays + DAG edges
        return max(1, 4 * csr.n + 2 * csr.m)
    distances = getattr(value, "distances", None)
    if distances is not None:  # label-space ShortestPathDAG
        predecessors = sum(len(p) for p in value.predecessors.values())
        return max(1, 4 * len(distances) + 2 * predecessors)
    return 1


class _GraphStore:
    """One graph's LRU entries plus their summed element-cost estimate."""

    __slots__ = ("version", "entries", "cost")

    def __init__(self, version: int) -> None:
        self.version = version
        self.entries: "OrderedDict[Tuple, Tuple[object, int]]" = OrderedDict()
        self.cost = 0

    def __len__(self) -> int:
        return len(self.entries)

    def get(self, key: Tuple) -> object:
        value, _ = self.entries[key]
        self.entries.move_to_end(key)
        return value

    def put(self, key: Tuple, value: object) -> None:
        cost = _entry_cost(value)
        self.entries[key] = (value, cost)
        self.cost += cost

    def pop_oldest(self) -> None:
        _, (_, cost) = self.entries.popitem(last=False)
        self.cost -= cost


class SourceDAGCache:
    """Bounded per-graph LRU of traversal results keyed on source and backend.

    Parameters
    ----------
    max_entries:
        LRU capacity per graph (``None`` resolves via
        :func:`resolve_dag_cache_size`: the
        :func:`set_default_dag_cache_size` override, then
        ``REPRO_DAG_CACHE_SIZE``, then the default).
    max_cost:
        Element budget per graph, in stored int64/float64-sized units
        (``None`` resolves via :func:`resolve_dag_cache_budget`).  When a workload's
        traversals are individually huge — one DAG on a paper-scale graph
        is already hundreds of megabytes — the budget degrades the cache to
        roughly one resident traversal (the most recent entry is always
        kept), matching the pre-cache peak memory instead of pinning
        ``max_entries`` of them.

    Examples
    --------
    >>> from repro.graphs.generators import cycle_graph
    >>> cache = SourceDAGCache(max_entries=4)
    >>> graph = cycle_graph(6)
    >>> first = cache.dag(graph, 0, backend="dict")
    >>> second = cache.dag(graph, 0, backend="dict")
    >>> first is second, cache.hits, cache.misses
    (True, 1, 1)
    >>> graph.add_edge(0, 3)  # this shortcut shortens paths from 0: evicted
    >>> cache.dag(graph, 0, backend="dict") is first
    False
    """

    def __init__(
        self,
        max_entries: Optional[int] = None,
        *,
        max_cost: Optional[int] = None,
    ) -> None:
        if max_entries is None:
            max_entries = resolve_dag_cache_size()
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_cost is None:
            max_cost = resolve_dag_cache_budget()
        if max_cost < 1:
            raise ValueError(f"max_cost must be >= 1, got {max_cost}")
        self.max_entries = max_entries
        self.max_cost = max_cost
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Delta-invalidation counters (PR 8): entries kept across a version
        # bump because the journalled edits provably cannot affect them,
        # entries evicted by a failed validity test, and version bumps that
        # fell back to wholesale eviction (journal uncovered / overflowed /
        # past the auto-mode validation limit).
        self.delta_retained = 0
        self.delta_evictions = 0
        self.journal_overflows = 0
        self._stores: "WeakKeyDictionary[Graph, _GraphStore]" = (
            WeakKeyDictionary()
        )

    # ------------------------------------------------------------------
    def _store(self, graph: Graph) -> _GraphStore:
        """The live entry store of ``graph``, revalidating on a version bump.

        A version bump first tries delta validation (see
        :meth:`_revalidate`): when the mutation journal covers the gap,
        each entry is tested against the edits and survivors re-key to the
        new version.  Uncovered gaps — and ``dag_cache_delta=off`` — keep
        the historical wholesale eviction.
        """
        cached = self._stores.get(graph)
        if cached is not None and cached.version == graph._version:
            return cached
        if cached is not None:
            if self._revalidate(graph, cached):
                return cached
            self.evictions += len(cached)
        store = _GraphStore(graph._version)
        self._stores[graph] = store
        # Arm the mutation journal so the next version bump is coverable.
        _delta.track(graph)
        return store

    def _revalidate(self, graph: Graph, store: _GraphStore) -> bool:
        """Delta-validate ``store`` in place; ``True`` when re-keyed.

        Runs the O(|Δ|) per-entry validity test of
        :func:`repro.graphs.delta.delta_affects_source` against the cached
        distances.  Entries an edit *could* affect are evicted; provably
        untouched ones survive and re-key to ``graph._version``.  Returns
        ``False`` (wholesale fallback) when the journal does not cover the
        gap or ``auto`` mode's validation limit is exceeded.
        """
        deltas = _delta.deltas_between(graph, store.version)
        if deltas is None:
            if len(store) and resolve_dag_cache_delta() != _delta.DELTA_OFF:
                self.journal_overflows += 1
            return False
        if (
            resolve_dag_cache_delta() == _delta.DELTA_AUTO
            and len(deltas) > _delta.AUTO_DELTA_VALIDATION_LIMIT
        ):
            self.journal_overflows += 1
            return False
        survivors: "OrderedDict[Tuple, Tuple[object, int]]" = OrderedDict()
        cost = 0
        for key, (value, entry_cost) in store.entries.items():
            if self._entry_survives(graph, key, value, deltas):
                survivors[key] = (value, entry_cost)
                cost += entry_cost
                self.delta_retained += 1
            else:
                self.delta_evictions += 1
                self.evictions += 1
        store.entries = survivors
        store.cost = cost
        store.version = graph._version
        return True

    def _entry_survives(
        self, graph: Graph, key: Tuple, value: object, deltas
    ) -> bool:
        """Whether no journalled edit can affect one cached entry."""
        kind = key[0]
        if kind == "dag":
            # ("dag", backend, weighted, source): full DAGs carry sigma and
            # predecessor lists, so equal-length (tie) paths matter too.
            weighted = bool(key[2])
            tie_sensitive = True
        elif kind == "dist-map":
            # ("dist-map", backend, source): hop distances, reachable only.
            weighted = False
            tie_sensitive = False
        elif kind == "dist":
            # ("dist", source) hop row | ("dist", True, source) weighted row.
            weighted = len(key) == 3
            tie_sensitive = False
        else:
            return False  # unknown entry shape: never retain on faith
        dist_of = self._distance_accessor(graph, kind, value)
        if dist_of is None:
            return False
        for delta in deltas:
            if _delta.delta_affects_source(
                delta, dist_of, weighted=weighted, tie_sensitive=tie_sensitive
            ):
                return False
        return True

    @staticmethod
    def _distance_accessor(graph: Graph, kind: str, value: object):
        """A ``label -> distance-or-None`` view of one cached entry.

        DAGs and distance maps are self-contained; index-space rows
        translate labels through the current snapshot — pure edge deltas
        preserve the label order, so its ``index`` equals the one the row
        was computed with.
        """
        if kind == "dag":
            snapshot = getattr(value, "csr", None)
            if snapshot is not None:  # CSRShortestPathDAG (index space)
                dist = value.dist
                index = snapshot.index

                def dist_of(label, _dist=dist, _index=index):
                    i = _index.get(label)
                    if i is None:
                        return None
                    d = _dist[i]
                    return None if d < 0 else d

                return dist_of
            distances = getattr(value, "distances", None)
            if distances is not None:  # label-space ShortestPathDAG
                return distances.get
            return None
        if kind == "dist-map":
            return value.get if isinstance(value, dict) else None
        row = value  # CSR distance row, -1/-1.0 = unreachable

        def row_dist_of(label, _row=row, _index=_csr.as_csr(graph).index):
            i = _index.get(label)
            if i is None:
                return None
            d = _row[i]
            return None if d < 0 else d

        return row_dist_of

    def _trim(self, store: _GraphStore) -> None:
        while len(store) > self.max_entries or (
            store.cost > self.max_cost and len(store) > 1
        ):
            store.pop_oldest()
            self.evictions += 1

    def lookup(self, graph: Graph, key: Tuple, compute: Callable[[], object]):
        """Return the cached value for ``key``, computing and storing on miss."""
        store = self._store(graph)
        if key in store.entries:
            self.hits += 1
            return store.get(key)
        self.misses += 1
        value = compute()
        store.put(key, value)
        self._trim(store)
        return value

    # ------------------------------------------------------------------
    @staticmethod
    def compute_dag(graph: Graph, source: Node, *, backend: str,
                    weighted: bool = False):
        """The uncached computation a :meth:`dag` miss performs."""
        if backend == _csr.CSR_BACKEND:
            snapshot = _csr.as_csr(graph)
            return _csr.csr_sssp_dag(
                snapshot, snapshot.index_of(source), weighted=weighted
            )
        from repro.graphs.traversal import dict_dijkstra_dag, shortest_path_dag

        if weighted:
            return dict_dijkstra_dag(graph, source)
        # Pin the hop metric (like the CSR branch): the ``weighted`` flag is
        # part of the cache key, so a ``False`` entry must stay a BFS DAG
        # even if the graph has since grown weights under ``weighted=auto``.
        return shortest_path_dag(
            graph, source, backend=_csr.DICT_BACKEND, weighted="off"
        )

    def dag(self, graph: Graph, source: Node, *, backend: str,
            weighted: bool = False):
        """The shortest-path DAG rooted at ``source`` (label space).

        Returns a :class:`~repro.graphs.csr.CSRShortestPathDAG` for the
        ``"csr"`` backend and a label-keyed
        :class:`~repro.graphs.traversal.ShortestPathDAG` for ``"dict"`` —
        the exact objects the uncached code paths build.  ``weighted``
        selects the Dijkstra engine and is part of the cache key.
        """
        if backend not in _csr.BACKENDS:
            raise ValueError(
                f"backend={backend!r} must be a concrete backend, one of "
                f"{_csr.BACKENDS} (resolve 'auto' before caching)"
            )
        return self.lookup(
            graph,
            ("dag", backend, weighted, source),
            lambda: self.compute_dag(
                graph, source, backend=backend, weighted=weighted
            ),
        )

    @staticmethod
    def compute_distance_map(graph: Graph, source: Node, *, backend: str):
        """The uncached computation a :meth:`distance_map` miss performs."""
        from repro.graphs.traversal import bfs_distances

        return bfs_distances(graph, source, backend=backend)

    def distance_map(self, graph: Graph, source: Node, *, backend: str):
        """The label-keyed ``{node: hop distance}`` map of ``source``.

        The dict-backend analogue of :meth:`distances` (reachable nodes
        only, insertion-ordered exactly like ``bfs_distances``).
        """
        if backend not in _csr.BACKENDS:
            raise ValueError(
                f"backend={backend!r} must be a concrete backend, one of "
                f"{_csr.BACKENDS} (resolve 'auto' before caching)"
            )
        return self.lookup(
            graph,
            ("dist-map", backend, source),
            lambda: self.compute_distance_map(graph, source, backend=backend),
        )

    @staticmethod
    def compute_distances(graph: Graph, source: Node, *, weighted: bool = False):
        """The uncached computation a :meth:`distances` miss performs."""
        snapshot = _csr.as_csr(graph)
        [row] = _csr.multi_source_sweep(
            snapshot, (snapshot.index_of(source),), kind=_csr.SWEEP_DISTANCE,
            weighted=weighted,
        )
        return row

    def distances(self, graph: Graph, source: Node, *, weighted: bool = False):
        """The CSR distance row of ``source`` (``-1`` = unreachable).

        Hop counts by default; with ``weighted=True`` (a separate cache
        key) float path lengths from the Dijkstra engine.
        """
        return self.lookup(
            graph,
            ("dist", weighted, source) if weighted else ("dist", source),
            lambda: self.compute_distances(graph, source, weighted=weighted),
        )

    def distance_rows(self, graph: Graph, sources: Sequence[Node]) -> List[object]:
        """Distance rows for many sources; misses run as one batched sweep.

        The batched sweep produces rows bit-identical to the per-source
        kernel (the PR 2 contract), so mixing cached and freshly-computed
        rows cannot change results.
        """
        source_list = list(sources)
        store = self._store(graph)
        rows: Dict[Node, object] = {}
        pending: List[Node] = []
        for source in source_list:
            if source in rows:
                continue
            key = ("dist", source)
            if key in store.entries:
                self.hits += 1
                rows[source] = store.get(key)
            elif source not in pending:
                self.misses += 1
                pending.append(source)
        if pending:
            snapshot = _csr.as_csr(graph)
            fresh = _csr.multi_source_sweep(
                snapshot,
                [snapshot.index_of(source) for source in pending],
                kind=_csr.SWEEP_DISTANCE,
            )
            for source, row in zip(pending, fresh):
                rows[source] = row
                store.put(("dist", source), row)
            self._trim(store)
        return [rows[source] for source in source_list]

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus the live entry count and cost.

        The delta counters (PR 8): ``delta_retained`` entries survived a
        version bump via the journal validity test, ``delta_evictions``
        failed it (also counted in ``evictions``), ``journal_overflows``
        version bumps fell back to wholesale eviction for lack of journal
        coverage.
        """
        entries = sum(len(store) for store in self._stores.values())
        cost = sum(store.cost for store in self._stores.values())
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "delta_retained": self.delta_retained,
            "delta_evictions": self.delta_evictions,
            "journal_overflows": self.journal_overflows,
            "entries": entries,
            "cost": cost,
        }

    def clear(self) -> None:
        """Drop every entry (counters are kept; they describe the lifetime)."""
        self._stores = WeakKeyDictionary()


# ----------------------------------------------------------------------
# The process-wide default cache the samplers consult
# ----------------------------------------------------------------------
_default_cache: Optional[SourceDAGCache] = None


def default_dag_cache() -> SourceDAGCache:
    """The lazily-created process-wide cache (one per worker process too)."""
    global _default_cache
    if _default_cache is None:
        _default_cache = SourceDAGCache()
    return _default_cache


def clear_default_dag_cache() -> None:
    """Drop the default cache; the next use re-reads the size knob."""
    global _default_cache
    _default_cache = None


def source_dag(graph: Graph, source: Node, *, backend: str,
               weighted: bool = False):
    """Shared-cache :meth:`SourceDAGCache.dag` (straight computation when off)."""
    if dag_cache_enabled():
        return default_dag_cache().dag(
            graph, source, backend=backend, weighted=weighted
        )
    return SourceDAGCache.compute_dag(
        graph, source, backend=backend, weighted=weighted
    )


def source_distances(graph: Graph, source: Node, *, weighted: bool = False):
    """Shared-cache :meth:`SourceDAGCache.distances` (straight when off)."""
    if dag_cache_enabled():
        return default_dag_cache().distances(graph, source, weighted=weighted)
    return SourceDAGCache.compute_distances(graph, source, weighted=weighted)


def source_distance_map(graph: Graph, source: Node, *, backend: str):
    """Shared-cache :meth:`SourceDAGCache.distance_map` (straight when off)."""
    if dag_cache_enabled():
        return default_dag_cache().distance_map(graph, source, backend=backend)
    return SourceDAGCache.compute_distance_map(graph, source, backend=backend)


def source_distance_rows(graph: Graph, sources: Sequence[Node]) -> List[object]:
    """Shared-cache :meth:`SourceDAGCache.distance_rows` (straight when off)."""
    if dag_cache_enabled():
        return default_dag_cache().distance_rows(graph, sources)
    snapshot = _csr.as_csr(graph)
    return _csr.multi_source_sweep(
        snapshot,
        [snapshot.index_of(source) for source in sources],
        kind=_csr.SWEEP_DISTANCE,
    )
