"""The sampling loop driver and the ordered source-sweep fold.

These are the two loop bodies everything else composes:

* :class:`SampleDriver` — owns one :class:`repro.parallel.WorkerPool` and a
  global chunk counter.  ``run_batch`` draws a fixed number of samples;
  ``run_schedule`` runs a :class:`~repro.engine.schedule.SampleSchedule`
  against a :class:`~repro.engine.stopping.StoppingRule`.  Chunk layouts are
  a pure function of the schedule (continuing chunk indices across batches
  and stages) and partial results are folded in chunk order, so results are
  bit-identical for any worker count — the same contract the estimators
  implemented by hand before the port.
* :func:`sweep_sources` — the fixed-work analogue: an ordered, chunked fold
  over a source list (exact Brandes, Bader pivots, closeness sweeps, ego
  networks), streaming chunk results through ``WorkerPool.imap`` so large
  per-source vectors never pile up.

Fold contract: a chunk task returns one *chunk-partial* — the reduction of
its chunk computed in-worker (e.g. exact Brandes returns one summed
dependency vector per chunk, not one vector per source) — and the master
folds partials strictly in chunk order.  The serial path (``workers=0``)
runs the identical chunk tasks in-process, so the float accumulation order
is a pure function of the fixed chunk layout and worker counts never change
results, while the bytes shipped per chunk shrink from O(chunk x n) to
O(n).  Graph payloads go through :func:`repro.parallel.shareable_graph` so
CSR-backed sweeps hand the frozen snapshot to workers zero-copy via shared
memory instead of pickling the adjacency per process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, TypeVar

from repro import parallel as _parallel
from repro.engine.schedule import SampleSchedule
from repro.engine.stopping import StoppingRule

T = TypeVar("T")


@dataclass
class DriveOutcome:
    """Result of one :meth:`SampleDriver.run_schedule` run.

    Attributes
    ----------
    num_samples:
        Total samples drawn by the schedule (excludes earlier batches run
        through the same driver, e.g. a pilot).
    num_stages:
        Schedule stages executed.
    converged_by:
        The stopping rule's ``converged_label`` when it fired, its
        ``cap_label`` when the schedule cap was reached first.
    """

    num_samples: int
    num_stages: int
    converged_by: str


class SampleDriver:
    """Deterministic chunked sampling through one shared worker pool.

    Parameters
    ----------
    chunk_task:
        Picklable module-level function ``(payload, (chunk_index, draws))``
        returning one chunk's partial result.  The task must derive its RNG
        stream from the chunk index (:func:`repro.parallel.chunk_rng`).
    payload:
        Shared context shipped to each worker once; must be picklable when
        ``workers > 1``.
    workers:
        Worker processes (``None`` resolves via ``REPRO_WORKERS``).
    chunk_size:
        Draws per chunk; part of each estimator's definition (it fixes the
        RNG stream layout), so it defaults to the historical
        :data:`repro.parallel.SAMPLE_CHUNK_SIZE`.

    Use as a context manager; the pool is shut down on exit::

        with SampleDriver(_chunk, payload=..., workers=workers) as driver:
            driver.run_batch(pilot_size, fold_pilot)
            outcome = driver.run_schedule(schedule, rule, fold)
    """

    def __init__(
        self,
        chunk_task: Callable,
        *,
        payload: object = None,
        workers: Optional[int] = None,
        chunk_size: int = _parallel.SAMPLE_CHUNK_SIZE,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        self.next_chunk = 0
        self._pool = _parallel.WorkerPool(
            chunk_task, payload=payload, workers=workers
        )

    # ------------------------------------------------------------------
    def run_batch(self, count: int, fold: Callable[[object], None]) -> int:
        """Draw ``count`` samples; fold each chunk's partial in chunk order.

        Chunk indices continue from previous batches, so successive phases
        (pilot batch, then schedule stages) consume one global stream
        sequence exactly as the pre-engine estimators did.
        """
        pieces = _parallel.plan_chunks(
            count, self.chunk_size, start_chunk=self.next_chunk
        )
        self.next_chunk += len(pieces)
        for partial in self._pool.map(pieces):
            fold(partial)
        return count

    def run_schedule(
        self,
        schedule: SampleSchedule,
        stopping: StoppingRule,
        fold: Callable[[object], None],
    ) -> DriveOutcome:
        """Draw stages until the stopping rule fires or the cap is reached."""
        drawn = 0
        stages = 0
        target = schedule.first_stage
        while True:
            stages += 1
            self.run_batch(target - drawn, fold)
            drawn = target
            if stopping.should_stop(drawn):
                return DriveOutcome(drawn, stages, stopping.converged_label)
            if drawn >= schedule.max_samples:
                return DriveOutcome(drawn, stages, stopping.cap_label)
            target = schedule.next_target(target)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down cleanly (in-flight chunks finish first)."""
        self._pool.close()

    def __enter__(self) -> "SampleDriver":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        # Mirror WorkerPool's lifecycle contract: a clean exit drains
        # in-flight chunks (close + join), an exception hard-stops the
        # workers.  Both paths release shared-memory payload blocks.
        if exc_type is not None:
            self._pool.terminate()
        else:
            self.close()


def sweep_sources(
    chunk_task: Callable,
    sources: Sequence[T],
    fold: Callable[[Sequence[T], object], None],
    *,
    payload: object = None,
    workers: Optional[int] = None,
    chunk_size: int = _parallel.SOURCE_CHUNK_SIZE,
) -> None:
    """Ordered chunked fold over a fixed source list.

    ``chunk_task(payload, chunk)`` computes one chunk's results (in any
    process); ``fold(chunk, result)`` is called strictly in source order, so
    even float accumulation order is independent of the worker count.
    Results stream through ``imap`` — only a bounded number of chunks is in
    flight even when per-source results are large dependency vectors.
    """
    chunks = _parallel.chunked(list(sources), chunk_size)
    with _parallel.WorkerPool(
        chunk_task, payload=payload, workers=workers
    ) as pool:
        for chunk, result in zip(chunks, pool.imap(chunks)):
            fold(chunk, result)
