"""Geometric sample-size schedules.

Every adaptive estimator in the paper draws samples in *stages*: a first
stage sized from the Hoeffding/Bernstein pilot formula
``c / eps^2 * ln(1/delta)``, then geometric growth (doubling, by default)
until a hard cap derived from a VC-dimension bound.  The schedule is part of
each estimator's *definition* — the stage boundaries fix the chunk layout
and therefore the RNG stream consumption — so it is arithmetic worth having
exactly once.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

from repro.utils.validation import check_probability_pair


class SampleSchedule:
    """A geometric stage schedule with a hard cap.

    Stage targets are *cumulative* sample counts: the first stage draws
    ``first_stage`` samples, stage ``k + 1`` grows the cumulative target to
    ``min(max_samples, ceil(target * growth))`` (exact integer doubling when
    ``growth == 2``, matching the historical estimators bit for bit).

    Parameters
    ----------
    first_stage:
        Cumulative target of the first stage (clamped to ``max_samples``).
    max_samples:
        The hard cap — usually a VC-dimension sample size.
    growth:
        Multiplicative stage growth, ``> 1``.

    Examples
    --------
    >>> schedule = SampleSchedule(32, 200)
    >>> list(schedule.targets())
    [32, 64, 128, 200]
    >>> SampleSchedule.fixed(50).num_stages()
    1
    """

    __slots__ = ("first_stage", "max_samples", "growth")

    def __init__(self, first_stage: int, max_samples: int, *, growth: float = 2.0) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        if first_stage < 1:
            raise ValueError(f"first_stage must be >= 1, got {first_stage}")
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        self.first_stage = min(first_stage, max_samples)
        self.max_samples = max_samples
        self.growth = growth

    # ------------------------------------------------------------------
    @classmethod
    def fixed(cls, num_samples: int) -> "SampleSchedule":
        """A single-stage schedule drawing exactly ``num_samples`` samples."""
        return cls(num_samples, num_samples)

    @classmethod
    def from_guarantee(
        cls,
        epsilon: float,
        delta: float,
        max_samples: int,
        *,
        sample_constant: float = 0.5,
        min_first_stage: int = 32,
        growth: float = 2.0,
    ) -> "SampleSchedule":
        """The schedule the progressive baselines share.

        First stage ``max(min_first_stage, ceil(c / eps^2 * ln(1/delta)))``
        (the union-bound-free pilot size), capped at ``max_samples``.
        """
        check_probability_pair(epsilon, delta)
        first = max(
            min_first_stage,
            math.ceil(sample_constant / epsilon**2 * math.log(1.0 / delta)),
        )
        return cls(first, max_samples, growth=growth)

    # ------------------------------------------------------------------
    def next_target(self, target: int) -> int:
        """The cumulative target of the stage after the one ending at ``target``."""
        if self.growth == 2.0:
            # Exact integer doubling: ``ceil(t * 2.0)`` is equal for every
            # int target below 2**52, but the integer form never rounds.
            return min(self.max_samples, 2 * target)
        return min(self.max_samples, math.ceil(target * self.growth))

    def num_stages(self) -> int:
        """The union-bound delta-split divisor ``ceil(log_growth(N_max / N_0))``.

        ``log2`` is used verbatim for ``growth == 2`` to reproduce the
        historical estimators' arithmetic exactly.  Note this counts the
        geometric *doublings*, not the executed stages: :meth:`targets`
        yields one more stage whenever the cap is not an exact power of
        ``growth`` times ``first_stage`` (the doctest above runs 4 stages
        while ``num_stages()`` is 3) — the historical estimators split
        delta this way, so a new stopping rule wanting a strict per-stage
        union bound should divide by ``len(list(targets()))`` instead.
        """
        ratio = max(1.0, self.max_samples / self.first_stage)
        if self.growth == 2.0:
            return max(1, math.ceil(math.log2(ratio)))
        return max(1, math.ceil(math.log(ratio) / math.log(self.growth)))

    def targets(self) -> Iterator[int]:
        """Yield the cumulative stage targets up to and including the cap."""
        target: Optional[int] = None
        while target != self.max_samples:
            target = self.first_stage if target is None else self.next_target(target)
            yield target

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SampleSchedule(first_stage={self.first_stage}, "
            f"max_samples={self.max_samples}, growth={self.growth})"
        )
