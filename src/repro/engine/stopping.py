"""Pluggable stopping rules for the sample driver.

A stopping rule answers, after every schedule stage, "are the current
estimates already ``epsilon``-accurate?".  All rules here are backed by the
deviation bounds in :mod:`repro.stats`; they differ only in what per-
hypothesis state they read (dense sum/sum-of-squares dicts, 0/1 hit counts,
or a :class:`~repro.core.adaptive._RiskAccumulator` with per-hypothesis
delta allocations) and in the labels the estimators historically reported
through ``converged_by``.
"""

from __future__ import annotations

import math
from typing import Hashable, List, Mapping, Protocol, Sequence

from repro.stats.bernstein import empirical_bernstein_bound


class StoppingRule(Protocol):
    """The protocol the :class:`~repro.engine.driver.SampleDriver` consumes.

    Attributes
    ----------
    converged_label:
        ``converged_by`` value reported when the rule fires.
    cap_label:
        ``converged_by`` value reported when the schedule cap is reached
        before the rule fires.
    """

    converged_label: str
    cap_label: str

    def should_stop(self, num_samples: int) -> bool:
        """True when every hypothesis' deviation bound is below target."""
        ...  # pragma: no cover - protocol


class FixedSampleRule:
    """Never stops early — fixed-sample-size estimators (RK, Bader)."""

    converged_label = "fixed"
    cap_label = "fixed"

    def should_stop(self, num_samples: int) -> bool:
        return False


class BernsteinSumsRule:
    """Per-hypothesis empirical-Bernstein check over shared sum dicts.

    The rule reads (it never owns) the estimator's running ``totals`` /
    ``totals_sq`` mappings, so the caller keeps folding chunk partials into
    them between checks.  ``per_check_delta`` is the union-bound share
    ``delta / (num_stages * num_hypotheses)``.
    """

    converged_label = "adaptive"
    cap_label = "cap"

    def __init__(
        self,
        totals: Mapping[Hashable, float],
        totals_sq: Mapping[Hashable, float],
        *,
        epsilon: float,
        per_check_delta: float,
    ) -> None:
        self.totals = totals
        self.totals_sq = totals_sq
        self.epsilon = epsilon
        self.per_check_delta = per_check_delta

    def should_stop(self, num_samples: int) -> bool:
        if num_samples < 2:
            return False
        for key, total in self.totals.items():
            centered = self.totals_sq[key] - total * total / num_samples
            variance = max(0.0, centered / (num_samples - 1))
            deviation = empirical_bernstein_bound(
                num_samples, self.per_check_delta, variance
            )
            if deviation > self.epsilon:
                return False
        return True


class HitCountRule:
    """Bernstein check for 0/1 losses tracked as plain hit counts (KADABRA).

    For a hit count ``c`` out of ``N`` samples the unbiased sample variance
    is ``c (N - c) / (N (N - 1))`` — no sum-of-squares dict needed.
    """

    converged_label = "adaptive"
    cap_label = "cap"

    def __init__(
        self,
        counts: Mapping[Hashable, float],
        *,
        epsilon: float,
        per_check_delta: float,
    ) -> None:
        self.counts = counts
        self.epsilon = epsilon
        self.per_check_delta = per_check_delta

    def should_stop(self, num_samples: int) -> bool:
        if num_samples < 2:
            return False
        for count in self.counts.values():
            variance = (
                count * (num_samples - count) / (num_samples * (num_samples - 1))
            )
            deviation = empirical_bernstein_bound(
                num_samples, self.per_check_delta, variance
            )
            if deviation > self.epsilon:
                return False
        return True


class AllocatedBernsteinRule:
    """The SaPHyRa framework rule: per-hypothesis delta allocations (Eq. 13).

    Unlike the union-bound rules above, each hypothesis gets its own error
    probability (variance-weighted, solved from the pilot batch).  The rule
    records the deviations of its *last* check in :attr:`deviations`, which
    the adaptive sampler reports in its result.
    """

    converged_label = "bernstein"
    cap_label = "vc"

    def __init__(
        self,
        accumulator,
        delta_allocations: Sequence[float],
        *,
        epsilon: float,
    ) -> None:
        self.accumulator = accumulator
        self.delta_allocations = list(delta_allocations)
        self.epsilon = epsilon
        self.deviations: List[float] = [math.inf] * len(self.delta_allocations)

    def should_stop(self, num_samples: int) -> bool:
        accumulator = self.accumulator
        self.deviations = [
            empirical_bernstein_bound(
                accumulator.count,
                self.delta_allocations[index],
                accumulator.variance(index),
            )
            for index in range(len(self.delta_allocations))
        ]
        return max(self.deviations) <= self.epsilon
