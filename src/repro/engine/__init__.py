"""The unified sampling engine.

Every sampling estimator in this reproduction — the SaPHyRa framework's
adaptive sampler and both baseline families (ABRA, RK, KADABRA, Bader) —
shares one skeleton: draw samples on a geometric schedule, fold per-chunk
partial results in a deterministic order, evaluate a stopping rule after
every stage, and stop either adaptively or at a hard (VC-derived) cap.
Before this package existed that skeleton was re-implemented in five
places; now it lives here, once:

* :class:`SampleSchedule` — the geometric stage schedule (first stage,
  growth factor, hard cap) plus the stage-count arithmetic the
  delta-splitting rules need.
* :class:`StoppingRule` and its implementations — pluggable convergence
  checks backed by the deviation bounds in :mod:`repro.stats`.
* :class:`SampleDriver` / :func:`sweep_sources` — the loop bodies: chunked
  sampling through the :mod:`repro.parallel` worker pool under the existing
  determinism contract (fixed chunk layouts, per-chunk seeded RNG streams,
  chunk-order folds), and the ordered fold over a fixed source list used by
  exact Brandes, the pivot estimator and the closeness sweeps.
* :class:`SourceDAGCache` — a cross-sample cache of shortest-path DAGs and
  BFS distance rows keyed on ``(Graph._version, source, backend)``, so
  pivot-heavy and repeated-source workloads reuse traversals instead of
  recomputing them per sample (``REPRO_DAG_CACHE`` toggles it,
  ``REPRO_DAG_CACHE_SIZE`` / ``REPRO_DAG_CACHE_BUDGET`` bound its per-graph
  entry count and estimated memory).

Nothing in the engine changes results: schedules and folds reproduce the
exact chunk/RNG layout the estimators used before the port, and cached
traversals are pure functions of ``(graph version, source, backend)``.
"""

from __future__ import annotations

from repro.engine.dag_cache import (
    DAG_CACHE_BUDGET_ENV_VAR,
    DAG_CACHE_DELTA_ENV_VAR,
    DAG_CACHE_ENV_VAR,
    DAG_CACHE_SIZE_ENV_VAR,
    DELTA_JOURNAL_SIZE_ENV_VAR,
    SourceDAGCache,
    clear_default_dag_cache,
    dag_cache_enabled,
    default_dag_cache,
    default_dag_cache_delta,
    resolve_dag_cache_budget,
    resolve_dag_cache_delta,
    resolve_dag_cache_size,
    resolve_delta_journal_size,
    set_dag_cache_enabled,
    set_default_dag_cache_budget,
    set_default_dag_cache_delta,
    set_default_dag_cache_size,
    set_default_delta_journal_size,
    source_dag,
    source_distance_map,
    source_distance_rows,
    source_distances,
)
from repro.engine.driver import DriveOutcome, SampleDriver, sweep_sources
from repro.engine.schedule import SampleSchedule
from repro.engine.stopping import (
    AllocatedBernsteinRule,
    BernsteinSumsRule,
    FixedSampleRule,
    HitCountRule,
    StoppingRule,
)

__all__ = [
    "SampleSchedule",
    "StoppingRule",
    "BernsteinSumsRule",
    "HitCountRule",
    "AllocatedBernsteinRule",
    "FixedSampleRule",
    "SampleDriver",
    "DriveOutcome",
    "sweep_sources",
    "SourceDAGCache",
    "source_dag",
    "source_distances",
    "source_distance_map",
    "source_distance_rows",
    "default_dag_cache",
    "clear_default_dag_cache",
    "dag_cache_enabled",
    "set_dag_cache_enabled",
    "resolve_dag_cache_size",
    "resolve_dag_cache_budget",
    "set_default_dag_cache_size",
    "set_default_dag_cache_budget",
    "default_dag_cache_delta",
    "resolve_dag_cache_delta",
    "set_default_dag_cache_delta",
    "resolve_delta_journal_size",
    "set_default_delta_journal_size",
    "DAG_CACHE_ENV_VAR",
    "DAG_CACHE_SIZE_ENV_VAR",
    "DAG_CACHE_BUDGET_ENV_VAR",
    "DAG_CACHE_DELTA_ENV_VAR",
    "DELTA_JOURNAL_SIZE_ENV_VAR",
]
