"""Module index and import/alias resolution.

The linter sees files, not an installed package: ``src/repro/graphs/csr.py``
must be addressable as ``repro.graphs.csr`` even though the walk started at
``src``, and a fixture twin under ``tests/fixtures/lint/knob_flow/violation``
must resolve its sibling imports without any root configuration.  Both fall
out of the same scheme:

* every file gets a *dotted name* from its path parts (``__init__.py`` maps
  to its package, a leading ``src`` component is dropped);
* a module reference in an ``import`` statement resolves by **dotted-suffix
  match** against the index — ``repro.graphs.csr`` matches the file whose
  dotted name ends with that suffix, and the fixture's bare ``engine``
  matches ``tests.fixtures...violation.engine``.  An ambiguous suffix (two
  files match) resolves to nothing: the rules stay conservative.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.model import SourceFile


def dotted_name_for(source: SourceFile) -> str:
    """The dotted module name of one linted file.

    ``src/repro/graphs/csr.py`` → ``repro.graphs.csr``;
    ``src/repro/lint/__init__.py`` → ``repro.lint``.  Only a *leading*
    ``src`` component is dropped — dropping interior ones could alias two
    distinct files onto one name.
    """
    parts = list(source.parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    leaf = parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[: -len(".py")]
    if leaf == "__init__":
        parts = parts[:-1]
    else:
        parts = parts[:-1] + [leaf]
    return ".".join(parts)


class ModuleInfo:
    """One module of the run: its file, dotted name and import bindings."""

    def __init__(self, source: SourceFile, dotted: str) -> None:
        self.source = source
        self.dotted = dotted
        #: local alias → dotted module reference (``import a.b as c``; for a
        #: plain ``import a.b`` the binding is ``a`` → ``a``, and dotted
        #: call chains like ``a.b.f()`` re-join the path at resolution time).
        self.module_aliases: Dict[str, str] = {}
        #: local name → (dotted module reference, symbol name) for
        #: ``from a.b import f [as g]`` bindings.
        self.symbol_imports: Dict[str, Tuple[str, str]] = {}
        #: dotted module references imported without an alias
        #: (``import a.b``), used to resolve fully-dotted call chains.
        self.plain_imports: List[str] = []

    @property
    def package(self) -> str:
        """The package containing this module (itself, for ``__init__``)."""
        if self.source.name == "__init__.py":
            return self.dotted
        return self.dotted.rpartition(".")[0]

    # ------------------------------------------------------------------
    def collect_imports(self) -> None:
        tree = self.source.tree
        if tree is None:
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.module_aliases[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds ``a``; remember the full
                        # path so ``a.b.f()`` chains resolve too.
                        root = alias.name.split(".", 1)[0]
                        self.module_aliases.setdefault(root, root)
                        self.plain_imports.append(alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    # ``from a import b`` may bind the submodule ``a.b``
                    # or a symbol of ``a``; the index disambiguates at
                    # resolution time, so record both readings.
                    self.module_aliases.setdefault(local, f"{base}.{alias.name}")
                    self.symbol_imports[local] = (base, alias.name)

    def _resolve_from_base(self, node: ast.ImportFrom) -> Optional[str]:
        """The dotted module a ``from ... import`` pulls names out of."""
        if not node.level:
            return node.module
        # Relative import: climb from the containing package.
        base_parts = self.package.split(".") if self.package else []
        climb = node.level - 1
        if climb > len(base_parts):
            return None
        parts = base_parts[: len(base_parts) - climb]
        if node.module:
            parts.append(node.module)
        return ".".join(parts) if parts else None


class ModuleIndex:
    """All modules of one lint run, addressable by dotted suffix."""

    def __init__(self, sources: Sequence[SourceFile]) -> None:
        self.modules: List[ModuleInfo] = []
        self.by_path: Dict[str, ModuleInfo] = {}
        #: dotted suffix → matching modules (ambiguity kept, resolved to
        #: nothing by :meth:`resolve`).
        self._by_suffix: Dict[str, List[ModuleInfo]] = {}
        for source in sources:
            if source.tree is None:
                continue
            info = ModuleInfo(source, dotted_name_for(source))
            info.collect_imports()
            self.modules.append(info)
            self.by_path[source.path] = info
            parts = info.dotted.split(".") if info.dotted else []
            for start in range(len(parts)):
                suffix = ".".join(parts[start:])
                self._by_suffix.setdefault(suffix, []).append(info)

    def resolve(self, reference: str) -> Optional[ModuleInfo]:
        """The unique module a dotted reference names, if any.

        Exact dotted-name matches win; otherwise the reference must match
        exactly one module as a dotted suffix.  Anything ambiguous or
        unknown resolves to ``None`` — rules never guess.
        """
        candidates = self._by_suffix.get(reference, [])
        if len(candidates) == 1:
            return candidates[0]
        exact = [info for info in candidates if info.dotted == reference]
        if len(exact) == 1:
            return exact[0]
        return None
