"""Symbol table: function/method signatures, classes, knob registry.

Built once per lint run over every parsed file (see
:func:`project_semantics`), this is the layer that lets rules ask "does the
callee's signature accept ``backend``?" or "which ``REPRO_*`` knobs does
this project declare?" without re-walking ASTs per rule.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple
from weakref import WeakKeyDictionary

from repro.lint.model import SourceFile
from repro.lint.rules.common import dotted_name
from repro.lint.semantics.modules import ModuleIndex, ModuleInfo

_ENV_VALUE_RE = re.compile(r"^REPRO_[A-Z0-9_]+$")


class FunctionInfo:
    """One function or method signature, with its defining AST node."""

    def __init__(
        self,
        node: ast.AST,  # FunctionDef | AsyncFunctionDef
        module: ModuleInfo,
        owner: Optional[str] = None,
    ) -> None:
        self.node = node
        self.module = module
        self.name = node.name
        #: the class name for methods, ``None`` for module-level functions.
        self.owner = owner
        args = node.args
        self.positional: Tuple[str, ...] = tuple(
            a.arg for a in list(getattr(args, "posonlyargs", [])) + list(args.args)
        )
        self.kwonly: Tuple[str, ...] = tuple(a.arg for a in args.kwonlyargs)
        self.has_varargs = args.vararg is not None
        self.has_kwargs = args.kwarg is not None
        decorators = set()
        for decorator in node.decorator_list:
            name = dotted_name(decorator)
            if name is not None:
                decorators.add(name.rpartition(".")[2])
        self.decorators: Set[str] = decorators
        self.is_static = "staticmethod" in decorators
        self.is_classmethod = "classmethod" in decorators

    @property
    def qualname(self) -> str:
        prefix = f"{self.owner}." if self.owner else ""
        return f"{self.module.dotted}.{prefix}{self.name}"

    def accepts(self, param: str) -> bool:
        """Whether ``param`` is an explicit parameter (``**kwargs`` aside)."""
        return param in self.positional or param in self.kwonly

    def binding_positional(self, count: int, *, bound_receiver: bool) -> Set[str]:
        """The parameter names ``count`` positional arguments bind.

        ``bound_receiver`` skips the leading ``self``/``cls`` slot for
        calls through an instance or ``self.`` (static methods have no
        receiver slot regardless).
        """
        offset = 0
        if self.owner is not None and not self.is_static and bound_receiver:
            offset = 1
        return set(self.positional[offset:offset + count])


class ClassInfo:
    """One class: its methods by name and base-class names."""

    def __init__(self, node: ast.ClassDef, module: ModuleInfo) -> None:
        self.node = node
        self.module = module
        self.name = node.name
        self.bases: Tuple[str, ...] = tuple(
            base_name for base_name in
            (dotted_name(base) for base in node.bases)
            if base_name is not None
        )
        self.methods: Dict[str, FunctionInfo] = {}
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[statement.name] = FunctionInfo(
                    statement, module, owner=node.name
                )


class ModuleSymbols:
    """Top-level functions and classes of one module."""

    def __init__(self, module: ModuleInfo) -> None:
        self.module = module
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        tree = module.source.tree
        assert tree is not None
        for statement in tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[statement.name] = FunctionInfo(statement, module)
            elif isinstance(statement, ast.ClassDef):
                self.classes[statement.name] = ClassInfo(statement, module)


def _env_constant(node: ast.AST) -> str:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if _ENV_VALUE_RE.match(node.value):
            return node.value
    return ""


class Project:
    """The whole-run semantic model the cross-module rules consume."""

    def __init__(self, sources: Sequence[SourceFile]) -> None:
        self.sources: Tuple[SourceFile, ...] = tuple(sources)
        self.index = ModuleIndex(sources)
        self.symbols: Dict[str, ModuleSymbols] = {
            info.source.path: ModuleSymbols(info) for info in self.index.modules
        }
        #: ``REPRO_*`` env value → every (file, declaring node) site, in
        #: file order.  Declarations are ``X_ENV_VAR = "REPRO_X"``
        #: constants and literal ``os.environ.get``/``os.getenv`` reads —
        #: the same discovery the knob-protocol rule audits.
        self.env_declarations: Dict[str, List[Tuple[SourceFile, ast.AST]]] = {}
        #: ``ExperimentConfig`` field names seen anywhere in the run.
        self.config_fields: Set[str] = set()
        #: ``set_default_*`` / ``set_*_enabled`` override functions by name.
        self.setter_registry: Dict[str, FunctionInfo] = {}
        self._collect()

    # ------------------------------------------------------------------
    def _collect(self) -> None:
        for info in self.index.modules:
            tree = info.source.tree
            assert tree is not None
            for node in ast.walk(tree):
                value = ""
                if isinstance(node, ast.Assign):
                    if any(
                        isinstance(target, ast.Name)
                        and target.id.endswith("_ENV_VAR")
                        for target in node.targets
                    ):
                        value = _env_constant(node.value)
                elif isinstance(node, ast.Call):
                    name = dotted_name(node.func)
                    if name in ("os.environ.get", "os.getenv") and node.args:
                        value = _env_constant(node.args[0])
                elif isinstance(node, ast.ClassDef) and node.name == "ExperimentConfig":
                    for statement in node.body:
                        if isinstance(statement, ast.AnnAssign) and isinstance(
                            statement.target, ast.Name
                        ):
                            self.config_fields.add(statement.target.id)
                if value:
                    self.env_declarations.setdefault(value, []).append(
                        (info.source, node)
                    )
            for function in self.symbols[info.source.path].functions.values():
                if function.name.startswith("set_default_") or (
                    function.name.startswith("set_")
                    and function.name.endswith("_enabled")
                ):
                    self.setter_registry.setdefault(function.name, function)

    # ------------------------------------------------------------------
    def knob_names(self, exclude_parts: Sequence[str] = ()) -> Set[str]:
        """The knob parameter names the project declares.

        A knob is the lowercased remainder of a declared ``REPRO_*``
        variable (``REPRO_SSSP_KERNEL`` → ``sssp_kernel``); declarations in
        files whose path contains an excluded part (tests, benchmarks, the
        lint package itself) do not mint knobs.
        """
        knobs: Set[str] = set()
        for env_value, sites in self.env_declarations.items():
            for source, _node in sites:
                if any(part in exclude_parts for part in source.parts):
                    continue
                knobs.add(env_value[len("REPRO_"):].lower())
                break
        return knobs

    def module_of(self, source: SourceFile) -> Optional[ModuleInfo]:
        return self.index.by_path.get(source.path)

    def symbols_of(self, module: ModuleInfo) -> ModuleSymbols:
        return self.symbols[module.source.path]

    def resolve_function(
        self, reference: str, symbol: str
    ) -> Optional[FunctionInfo]:
        """The project-owned function ``symbol`` of module ``reference``."""
        target = self.index.resolve(reference)
        if target is None:
            return None
        return self.symbols[target.source.path].functions.get(symbol)

    # ------------------------------------------------------------------
    def functions(self):
        """Iterate every module-level function and method of the run."""
        for module_symbols in self.symbols.values():
            for function in module_symbols.functions.values():
                yield function
            for class_info in module_symbols.classes.values():
                for method in class_info.methods.values():
                    yield method


# ----------------------------------------------------------------------
# One model per run: the engine hands every rule the same source list, so
# memoizing on the first file makes the second and third semantic rules
# free.  Keyed weakly — a finished run's model is collectable.
# ----------------------------------------------------------------------
_project_cache: "WeakKeyDictionary[SourceFile, Project]" = WeakKeyDictionary()


def project_semantics(sources: Sequence[SourceFile]) -> Project:
    """The (memoized) :class:`Project` model for one run's source list."""
    if not sources:
        return Project(())
    anchor = sources[0]
    cached = _project_cache.get(anchor)
    if cached is not None and cached.sources == tuple(sources):
        return cached
    project = Project(sources)
    _project_cache[anchor] = project
    return project
