"""Call-graph construction with per-call-site argument binding.

For every :class:`~repro.lint.semantics.symbols.FunctionInfo` this module
enumerates the call sites in its body and resolves each one to the
project-owned callee, when that resolution is *certain*:

* ``f(...)`` — a function of the same module, or a ``from x import f as g``
  binding;
* ``alias.f(...)`` / ``a.b.c.f(...)`` — through ``import`` aliases and
  dotted module paths;
* ``self.m(...)`` — a method of the enclosing class (or, one level up, of
  a base class resolvable by name);
* ``ClassName.m(...)`` — a method called through a class defined in or
  imported into the calling module.

Each resolved site records the exact argument binding: explicit keyword
names, the callee parameters bound positionally (receiver slot accounted
for), and whether a ``*args``/``**kwargs`` splat makes the binding open —
splats are treated as forwarding everything, so rules never fire on a
binding they cannot see.  Unresolvable calls produce no edge at all.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.lint.rules.common import dotted_name
from repro.lint.semantics.modules import ModuleInfo
from repro.lint.semantics.symbols import ClassInfo, FunctionInfo, Project


@dataclass
class CallSite:
    """One resolved call: who calls whom, binding what."""

    caller: FunctionInfo
    callee: FunctionInfo
    node: ast.Call
    keywords: Set[str] = field(default_factory=set)
    positional_bound: Set[str] = field(default_factory=set)
    has_star_args: bool = False
    has_star_kwargs: bool = False

    def binds(self, param: str) -> bool:
        """Whether ``param`` is visibly bound (or possibly bound by a splat)."""
        return (
            param in self.keywords
            or param in self.positional_bound
            or self.has_star_args
            or self.has_star_kwargs
        )


def _class_in_scope(
    project: Project, module: ModuleInfo, name: str
) -> Optional[ClassInfo]:
    """The class ``name`` refers to inside ``module``, if project-owned."""
    local = project.symbols_of(module).classes.get(name)
    if local is not None:
        return local
    imported = module.symbol_imports.get(name)
    if imported is not None:
        base, symbol = imported
        target = project.index.resolve(base)
        if target is not None:
            return project.symbols_of(target).classes.get(symbol)
    return None


def _method_of(
    project: Project, class_info: ClassInfo, name: str
) -> Optional[FunctionInfo]:
    """``class_info``'s method ``name``, looking one level into bases."""
    method = class_info.methods.get(name)
    if method is not None:
        return method
    for base_name in class_info.bases:
        base = _class_in_scope(
            project, class_info.module, base_name.rpartition(".")[2]
        )
        if base is not None:
            method = base.methods.get(name)
            if method is not None:
                return method
    return None


def _resolve_callee(
    project: Project,
    module: ModuleInfo,
    caller: FunctionInfo,
    call: ast.Call,
):
    """``(callee, bound_receiver)`` for one call node, or ``(None, False)``."""
    func = call.func
    if isinstance(func, ast.Name):
        symbols = project.symbols_of(module)
        local = symbols.functions.get(func.id)
        if local is not None:
            return local, False
        imported = module.symbol_imports.get(func.id)
        if imported is not None:
            base, symbol = imported
            return project.resolve_function(base, symbol), False
        return None, False
    if not isinstance(func, ast.Attribute):
        return None, False
    full = dotted_name(func)
    if full is None:
        return None, False
    base, _, attr = full.rpartition(".")
    # ``self.m(...)`` — the enclosing class, then one level of bases.
    if base == "self" and caller.owner is not None:
        class_info = project.symbols_of(caller.module).classes.get(caller.owner)
        if class_info is not None:
            return _method_of(project, class_info, attr), True
        return None, False
    # ``ClassName.m(...)`` — through a class visible in this module.  No
    # receiver is bound: the first positional argument fills ``self``.
    if "." not in base:
        class_info = _class_in_scope(project, module, base)
        if class_info is not None:
            return _method_of(project, class_info, attr), False
    # ``alias.f(...)`` / ``a.b.c.f(...)`` — module aliases and plain
    # dotted imports: expand the root through the alias table, keep the
    # rest of the chain.
    root, _, rest = base.partition(".")
    expansion = module.module_aliases.get(root)
    if expansion is not None:
        reference = f"{expansion}.{rest}" if rest else expansion
        return project.resolve_function(reference, attr), False
    return None, False


def call_sites(project: Project, function: FunctionInfo) -> List[CallSite]:
    """Every call in ``function``'s body resolved to a project callee.

    Nested lambdas and inner defs are included — forwarding frequently
    happens inside a deferred ``lambda`` (the DAG-cache miss closures).
    """
    module = function.module
    sites: List[CallSite] = []
    for node in ast.walk(function.node):
        if not isinstance(node, ast.Call):
            continue
        callee, bound_receiver = _resolve_callee(project, module, function, node)
        if callee is None:
            continue
        positional = [
            arg for arg in node.args if not isinstance(arg, ast.Starred)
        ]
        site = CallSite(
            caller=function,
            callee=callee,
            node=node,
            keywords={
                keyword.arg for keyword in node.keywords
                if keyword.arg is not None
            },
            positional_bound=callee.binding_positional(
                len(positional), bound_receiver=bound_receiver
            ),
            has_star_args=any(
                isinstance(arg, ast.Starred) for arg in node.args
            ),
            has_star_kwargs=any(
                keyword.arg is None for keyword in node.keywords
            ),
        )
        sites.append(site)
    return sites
