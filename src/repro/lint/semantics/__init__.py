"""Whole-program semantic model shared by the cross-module lint rules.

PR 7's rules are per-file pattern matchers; the PR 9 rules (``knob-flow``,
``cache-version-key``, ``journal-hook``) need to answer questions a single
AST cannot: *which function does this call site invoke, and which keyword
arguments does it bind there?*  This subpackage builds that model once per
lint run and shares it between rules:

* :mod:`repro.lint.semantics.modules` — the module index: dotted names for
  every linted file plus per-module import/alias resolution (``import a.b
  as c``, ``from a import b as c``, relative imports), with dotted-suffix
  matching so the fixture corpus resolves under any root directory.
* :mod:`repro.lint.semantics.symbols` — the symbol table: signatures of
  every module-level function and every method (positional/keyword-only
  parameters, ``*args``/``**kwargs``, decorators), class layouts, the
  ``ExperimentConfig`` field list, the ``set_default_*`` registry, and the
  knob-name registry derived from the declared ``REPRO_*`` variables.
* :mod:`repro.lint.semantics.callgraph` — the call-graph builder: per
  call site, the resolved callee (through import aliases, ``from x import
  y as z`` bindings, dotted module paths and ``self.``/class-name method
  resolution) and the exact keyword/positional binding, including ``**``
  splats (treated as forwarding everything).

Everything here is conservative by construction: a call that cannot be
confidently resolved to a project-owned function simply produces no edge,
so the rules built on top can only fire on bindings they actually proved.

Rules obtain the shared model with :func:`project_semantics`, which
memoizes on the source list the engine passes to ``check_project`` — three
rules asking for the model of the same run build it once.
"""

from __future__ import annotations

from repro.lint.semantics.callgraph import CallSite, call_sites
from repro.lint.semantics.modules import ModuleIndex, ModuleInfo
from repro.lint.semantics.symbols import (
    ClassInfo,
    FunctionInfo,
    Project,
    project_semantics,
)

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleIndex",
    "ModuleInfo",
    "Project",
    "call_sites",
    "project_semantics",
]
