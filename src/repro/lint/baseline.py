"""Baseline ratchet: land strict rules before every old site is fixed.

A new whole-program rule can surface pre-existing findings faster than
they can responsibly be fixed; blocking the rule on a zero count would
either delay the gate or pressure-wash real findings into suppressions.
The ratchet resolves that: a committed JSON file lists the *known* old
findings, CI fails only on findings **not** in the file, and a baseline
entry the tree no longer produces is itself an error (with
``--fail-on-stale-baseline``) — so the file can only ever shrink.

Entries match on ``(rule, path, message)``, deliberately ignoring
line/column: unrelated edits move lines, and a moved known finding should
not break the build.  Matching is multiset-aware — two identical findings
need two entries.

File format (committed at the repo root as ``lint-baseline.json``)::

    {"version": 1,
     "findings": [{"rule": "...", "path": "...", "message": "..."}]}
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.lint.model import Finding, LintUsageError

BaselineEntry = Dict[str, str]

_ENTRY_FIELDS = ("rule", "path", "message")


def baseline_key(entry: BaselineEntry) -> Tuple[str, str, str]:
    return (entry["rule"], entry["path"], entry["message"])


def finding_entry(finding: Finding) -> BaselineEntry:
    """The baseline entry describing one finding."""
    return {
        "rule": finding.rule,
        "path": finding.path,
        "message": finding.message,
    }


def load_baseline(path: str) -> List[BaselineEntry]:
    """Parse and validate a committed baseline file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise LintUsageError(f"baseline file not found: {path!r}") from None
    except json.JSONDecodeError as exc:
        raise LintUsageError(
            f"baseline file {path!r} is not valid JSON: {exc}"
        ) from None
    if not isinstance(payload, dict) or payload.get("version") != 1:
        raise LintUsageError(
            f"baseline file {path!r} must be a version-1 object: "
            '{"version": 1, "findings": [...]}'
        )
    entries = payload.get("findings")
    if not isinstance(entries, list):
        raise LintUsageError(
            f"baseline file {path!r} must carry a findings list"
        )
    validated: List[BaselineEntry] = []
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict) or not all(
            isinstance(entry.get(field), str) for field in _ENTRY_FIELDS
        ):
            raise LintUsageError(
                f"baseline entry #{index} in {path!r} must carry string "
                f"fields {_ENTRY_FIELDS}"
            )
        validated.append({field: entry[field] for field in _ENTRY_FIELDS})
    return validated


def save_baseline(path: str, findings: Sequence[Finding]) -> None:
    """Write the ratchet file for the given (unsuppressed) findings."""
    payload = {
        "version": 1,
        "findings": sorted(
            (finding_entry(finding) for finding in findings),
            key=baseline_key,
        ),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def partition_against_baseline(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry]
) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
    """Split findings into ``(new, baselined)`` plus the stale entries.

    Each baseline entry absorbs at most as many findings as it occurs in
    the file; surplus findings with the same key are *new*.  Entries that
    absorb nothing are stale — the ratchet must shrink to match.
    """
    budget = Counter(baseline_key(entry) for entry in entries)
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        key = baseline_key(finding_entry(finding))
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    stale: List[BaselineEntry] = []
    consumed: Counter = Counter()
    for entry in entries:
        key = baseline_key(entry)
        consumed[key] += 1
        matched = sum(
            1 for finding in baselined
            if baseline_key(finding_entry(finding)) == key
        )
        if consumed[key] > matched:
            stale.append(entry)
    return new, baselined, stale
