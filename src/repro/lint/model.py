"""Core data model for the invariant checker.

Three pieces live here, shared by every rule:

* :class:`Finding` — one diagnostic, anchored to ``path:line:col`` with a
  stable rule ID.
* :class:`Suppression` and the ``# repro-lint: disable=RULE — reason``
  comment parser (tokenize-based, so ``#`` inside string literals never
  matches).  A malformed suppression is itself a finding
  (``bad-suppression``) and cannot be suppressed.
* :class:`SourceFile` — one parsed module: source text, AST, a lazy
  child→parent node map (rules use it for "is this fold wrapped in
  ``int()``" / "is this write inside ``EnvMirroredOverride``" questions),
  and the per-line suppression table.

Everything is stdlib-only and Python 3.9-compatible.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: Rule IDs emitted by the checker itself rather than by a registered
#: rule.  They flag problems with the lint input (unparseable file,
#: malformed suppression) and can never be suppressed — otherwise a bad
#: suppression could hide itself.
META_RULES = ("parse-error", "bad-suppression")


class LintUsageError(Exception):
    """A problem with the lint invocation itself (e.g. a missing path)."""


@dataclass(frozen=True)
class Finding:
    """One diagnostic: ``path:line:col: rule: message``."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class Suppression:
    """One parsed ``# repro-lint: disable=...`` comment."""

    line: int  # line the comment sits on
    rules: Tuple[str, ...]
    reason: str


# The comment grammar, after the marker: ``disable=RULE[,RULE...]``,
# then a separator (em-dash, double hyphen or colon), then the reason.
# The reason is mandatory — an exemption without a recorded "why" is how
# invariants rot.
_MARKER_RE = re.compile(r"#\s*repro-lint:\s*(?P<body>.*)$")
_DISABLE_PREFIX = "disable="
_SEPARATORS = ("—", "--", ":")  # em-dash, double hyphen, colon
_RULE_ID_RE = re.compile(r"^[a-z][a-z0-9]*(-[a-z0-9]+)*$")


def _split_reason(text: str) -> Tuple[str, Optional[str]]:
    """Split ``"rule1,rule2 — reason"`` at the earliest separator."""
    best: Optional[Tuple[int, str]] = None
    for sep in _SEPARATORS:
        index = text.find(sep)
        if index != -1 and (best is None or index < best[0]):
            best = (index, sep)
    if best is None:
        return text, None
    index, sep = best
    return text[:index], text[index + len(sep):]


def parse_suppression_comment(
    path: str,
    line: int,
    comment: str,
    known_rules: Set[str],
) -> Tuple[Optional[Suppression], Optional[Finding]]:
    """Parse one comment; return ``(suppression, bad_suppression_finding)``.

    Comments without the ``repro-lint:`` marker return ``(None, None)``.
    A marker with a malformed body returns a ``bad-suppression`` finding
    instead of silently suppressing nothing.
    """
    match = _MARKER_RE.search(comment)
    if match is None:
        return None, None

    def bad(message: str) -> Tuple[None, Finding]:
        return None, Finding(
            rule="bad-suppression", path=path, line=line, col=0, message=message
        )

    body = match.group("body").strip()
    if not body.startswith(_DISABLE_PREFIX):
        return bad(
            "malformed repro-lint comment: expected "
            "'# repro-lint: disable=RULE[,RULE] — reason', got "
            f"{body!r}"
        )
    rules_text, reason = _split_reason(body[len(_DISABLE_PREFIX):])
    if reason is None or not reason.strip():
        return bad(
            "suppression must carry a reason: "
            "'# repro-lint: disable=RULE — why this exemption is sound'"
        )
    rules = tuple(token.strip() for token in rules_text.split(",") if token.strip())
    if not rules:
        return bad("suppression lists no rule IDs")
    for rule in rules:
        if not _RULE_ID_RE.match(rule):
            return bad(f"malformed rule ID {rule!r} in suppression")
        if rule in META_RULES:
            return bad(f"rule {rule!r} cannot be suppressed")
        if rule not in known_rules:
            known = ", ".join(sorted(known_rules))
            return bad(f"unknown rule {rule!r} in suppression (known: {known})")
    return Suppression(line=line, rules=rules, reason=reason.strip()), None


class SourceFile:
    """One file under lint: text, AST, suppressions, parent map."""

    def __init__(
        self,
        path: str,
        text: str,
        known_rules: Set[str],
    ) -> None:
        self.path = path
        self.text = text
        self.parts: Tuple[str, ...] = PurePath(path).parts
        self.name: str = PurePath(path).name
        self.tree: Optional[ast.Module] = None
        #: parse-error / bad-suppression findings raised while loading.
        self.meta_findings: List[Finding] = []
        #: line number -> suppressions that cover findings on that line.
        self.suppressions: Dict[int, List[Suppression]] = {}
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        try:
            self.tree = ast.parse(text, filename=path)
        except SyntaxError as exc:
            self.meta_findings.append(
                Finding(
                    rule="parse-error",
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"could not parse file: {exc.msg}",
                )
            )
            return
        self._collect_suppressions(known_rules)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: str, known_rules: Set[str]) -> "SourceFile":
        with open(path, "r", encoding="utf-8") as handle:
            return cls(path, handle.read(), known_rules)

    # ------------------------------------------------------------------
    def _collect_suppressions(self, known_rules: Set[str]) -> None:
        """Scan comment tokens for ``repro-lint`` markers.

        An inline comment covers its own line; a comment-only line covers
        the next line as well, so multi-line statements can carry the
        suppression just above their first line.
        """
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.text).readline))
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            return  # the AST parsed, so this is vanishingly rare
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            line = token.start[0]
            suppression, bad = parse_suppression_comment(
                self.path, line, token.string, known_rules
            )
            if bad is not None:
                self.meta_findings.append(bad)
                continue
            if suppression is None:
                continue
            self.suppressions.setdefault(line, []).append(suppression)
            standalone = self.text.splitlines()[line - 1][: token.start[1]].strip() == ""
            if standalone:
                self.suppressions.setdefault(line + 1, []).append(suppression)

    # ------------------------------------------------------------------
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child → parent map over the whole AST (built once, lazily)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            assert self.tree is not None
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The node's parents, innermost first."""
        parents = self.parents()
        current = parents.get(node)
        while current is not None:
            yield current
            current = parents.get(current)

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    # ------------------------------------------------------------------
    def is_suppressed(self, finding: Finding) -> Optional[Suppression]:
        """The suppression covering ``finding``, if any."""
        if finding.rule in META_RULES:
            return None
        for suppression in self.suppressions.get(finding.line, []):
            if finding.rule in suppression.rules:
                return suppression
        return None

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Anchor a finding at an AST node of this file."""
        return Finding(
            rule=rule,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class Rule:
    """Base class for lint rules.

    Per-file rules override :meth:`check_file`; cross-module rules (the
    knob-protocol audit) override :meth:`check_project`, which sees every
    file of the run at once.  A rule may implement both.
    """

    rule_id: str = ""
    description: str = ""

    def check_file(self, source: SourceFile) -> List[Finding]:
        return []

    def check_project(self, sources: Sequence[SourceFile]) -> List[Finding]:
        return []
