"""Command-line front end: ``repro lint`` and ``python -m repro.lint``.

Both entry points share :func:`add_arguments`/:func:`run`, so the
subcommand and the module invocation accept identical options.  Exit
codes: 0 = clean, 1 = unsuppressed findings (or, with
``--fail-on-stale-baseline``, a baseline entry the tree no longer
produces), 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.lint.engine import LintUsageError, run_lint, select_rules
from repro.lint.rules import default_rules

#: The trees the CI job gates on; linting nothing by accident is worse
#: than linting everything by default.
DEFAULT_PATHS = ("src", "tests", "benchmarks")


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options on ``parser`` (shared by both CLIs)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src tests benchmarks; "
             "directories are walked, fixture directories are skipped)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="format",
        help="output format: text (path:line:col: rule: message) or a "
             "versioned json report (includes per-rule timings)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="RULE[,RULE]",
        help="run only these rule IDs (comma-separated) — lets pre-commit "
             "loops skip the whole-program pass; suppressions for rules "
             "not run are neither checked nor marked stale",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="committed ratchet file of known findings: findings listed "
             "there are reported as baselined (exit 0), only new ones "
             "fail; see also --update-baseline and "
             "--fail-on-stale-baseline",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the --baseline file from the current unsuppressed "
             "findings and exit 0 (the ratchet only ever shrinks: review "
             "the diff before committing)",
    )
    parser.add_argument(
        "--fail-on-stale-baseline",
        action="store_true",
        help="also exit non-zero when the baseline file contains entries "
             "the current tree no longer produces (CI uses this so the "
             "ratchet cannot rot)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the shipped rule IDs with their contracts and exit",
    )


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.rule_id}: {rule.description}")
        return 0
    try:
        rule_filter = None
        if args.rules is not None:
            rule_filter = [
                token.strip() for token in args.rules.split(",") if token.strip()
            ]
        rules = select_rules(rule_filter)
        entries = None
        if args.baseline is not None and not args.update_baseline:
            from repro.lint.baseline import load_baseline

            entries = load_baseline(args.baseline)
        elif args.update_baseline and args.baseline is None:
            raise LintUsageError("--update-baseline requires --baseline FILE")
        report = run_lint(args.paths, rules=rules, baseline=entries)
    except LintUsageError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        from repro.lint.baseline import save_baseline

        save_baseline(args.baseline, report.findings)
        print(
            f"wrote {len(report.findings)} finding(s) to {args.baseline}; "
            "review the diff — the ratchet should only ever shrink"
        )
        return 0
    stale_fails = bool(args.fail_on_stale_baseline and report.stale_baseline)
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.format())
        for entry in report.stale_baseline:
            print(
                f"{entry['path']}: stale-baseline: {entry['rule']} entry no "
                f"longer produced by the tree: {entry['message']}"
            )
        summary = (
            f"{report.files} file(s) checked: {len(report.findings)} "
            f"finding(s), {len(report.suppressed)} suppressed"
        )
        if report.baselined or report.stale_baseline:
            summary += (
                f", {len(report.baselined)} baselined, "
                f"{len(report.stale_baseline)} stale baseline entr"
                + ("y" if len(report.stale_baseline) == 1 else "ies")
            )
        print(summary)
    return 0 if report.ok and not stale_fails else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Statically check the repo's architecture invariants "
                    "(knob protocol and knob threading, float-fold "
                    "discipline, RNG discipline, env-mirror writes, kernel "
                    "ownership, cache version fencing, the graph mutation "
                    "journal protocol, suppression hygiene).",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))
