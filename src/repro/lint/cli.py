"""Command-line front end: ``repro lint`` and ``python -m repro.lint``.

Both entry points share :func:`add_arguments`/:func:`run`, so the
subcommand and the module invocation accept identical options.  Exit
codes: 0 = clean, 1 = unsuppressed findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.lint.engine import LintUsageError, run_lint
from repro.lint.rules import default_rules

#: The trees the CI job gates on; linting nothing by accident is worse
#: than linting everything by default.
DEFAULT_PATHS = ("src", "tests", "benchmarks")


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the lint options on ``parser`` (shared by both CLIs)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src tests benchmarks; "
             "directories are walked, fixture directories are skipped)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="format",
        help="output format: text (path:line:col: rule: message) or a "
             "versioned json report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the shipped rule IDs with their contracts and exit",
    )


def run(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.rule_id}: {rule.description}")
        return 0
    try:
        report = run_lint(args.paths)
    except LintUsageError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.format())
        print(
            f"{report.files} file(s) checked: {len(report.findings)} "
            f"finding(s), {len(report.suppressed)} suppressed"
        )
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro.lint``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Statically check the repo's architecture invariants "
                    "(knob protocol, float-fold discipline, RNG "
                    "discipline, env-mirror writes, kernel ownership).",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))
