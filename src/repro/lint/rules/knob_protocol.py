"""``knob-protocol``: every ``REPRO_*`` knob carries its full surface.

The protocol (ROADMAP, "Architecture invariants"): every toggle resolves
arg > ``set_default_*`` override > ``REPRO_*`` env > default, and is
reachable from all three entry points — programmatic (the
``set_default_*`` / ``set_*_enabled`` override), command line (a
``--knob-name`` flag in ``cli.py``) and experiment configs (an
``ExperimentConfig`` field).  Env-only knobs drift: they work on the
machine that exported the variable and silently fall back everywhere
else.  This is the one cross-module rule — it audits the whole file set
at once:

* a knob is *declared* by a module-level ``X_ENV_VAR = "REPRO_FOO"``
  constant or a literal ``os.environ.get("REPRO_FOO")`` read in
  non-test/bench code;
* the knob name is the lowercased remainder (``REPRO_DAG_CACHE_SIZE`` →
  ``dag_cache_size``), and the rule then requires a
  ``set_default_dag_cache_size``/``set_dag_cache_size_enabled``
  function somewhere in the project, a ``--dag-cache-size`` flag string
  in a ``cli.py``, and a ``dag_cache_size`` field on ``ExperimentConfig``.

One finding per env var, anchored at its declaration, listing every
missing surface.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Sequence, Set, Tuple

from repro.lint.model import Finding, Rule, SourceFile
from repro.lint.rules.common import dotted_name

_ENV_VALUE_RE = re.compile(r"^REPRO_[A-Z0-9_]+$")

#: Path components whose files neither declare knobs nor count as knob
#: surfaces: test/bench/fixture code reads knobs, it does not define
#: them, and the lint package's own cli.py is not the product CLI.
DEFAULT_EXCLUDE_PARTS: Tuple[str, ...] = (
    "tests",
    "benchmarks",
    "examples",
    "fixtures",
    "lint",
)


def _env_constant(node: ast.AST) -> str:
    """The ``REPRO_*`` value if ``node`` is a literal matching it."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if _ENV_VALUE_RE.match(node.value):
            return node.value
    return ""


class KnobProtocolRule(Rule):
    rule_id = "knob-protocol"
    description = (
        "every REPRO_* env var read in product code needs the full knob "
        "surface: a set_default_*/set_*_enabled override, a --flag in "
        "cli.py, and an ExperimentConfig field"
    )

    def __init__(
        self, exclude_parts: Sequence[str] = DEFAULT_EXCLUDE_PARTS
    ) -> None:
        self.exclude_parts = tuple(exclude_parts)

    def _included(self, source: SourceFile) -> bool:
        return source.tree is not None and not any(
            part in self.exclude_parts for part in source.parts
        )

    # ------------------------------------------------------------------
    def _declarations(
        self, sources: Sequence[SourceFile]
    ) -> Dict[str, Tuple[SourceFile, ast.AST]]:
        """env var value → (file, declaring node), first site wins."""
        declared: Dict[str, Tuple[SourceFile, ast.AST]] = {}
        for source in sources:
            if not self._included(source):
                continue
            assert source.tree is not None
            for node in ast.walk(source.tree):
                value = ""
                if isinstance(node, ast.Assign):
                    if any(
                        isinstance(target, ast.Name)
                        and target.id.endswith("_ENV_VAR")
                        for target in node.targets
                    ):
                        value = _env_constant(node.value)
                elif isinstance(node, ast.Call):
                    name = dotted_name(node.func)
                    if name in ("os.environ.get", "os.getenv") and node.args:
                        value = _env_constant(node.args[0])
                if value and value not in declared:
                    declared[value] = (source, node)
        return declared

    def _surfaces(
        self, sources: Sequence[SourceFile]
    ) -> Tuple[Set[str], Set[str], Set[str]]:
        """(function names, cli flag strings, ExperimentConfig fields)."""
        functions: Set[str] = set()
        flags: Set[str] = set()
        fields: Set[str] = set()
        for source in sources:
            if not self._included(source):
                continue
            assert source.tree is not None
            is_cli = source.name == "cli.py"
            for node in ast.walk(source.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions.add(node.name)
                elif (
                    is_cli
                    and isinstance(node, ast.Constant)
                    and isinstance(node.value, str)
                    and node.value.startswith("--")
                ):
                    flags.add(node.value)
                elif isinstance(node, ast.ClassDef) and node.name == "ExperimentConfig":
                    for statement in node.body:
                        if isinstance(statement, ast.AnnAssign) and isinstance(
                            statement.target, ast.Name
                        ):
                            fields.add(statement.target.id)
        return functions, flags, fields

    # ------------------------------------------------------------------
    def check_project(self, sources: Sequence[SourceFile]) -> List[Finding]:
        declared = self._declarations(sources)
        if not declared:
            return []
        functions, flags, fields = self._surfaces(sources)
        findings: List[Finding] = []
        for env_value in sorted(declared):
            source, node = declared[env_value]
            knob = env_value[len("REPRO_"):].lower()
            missing: List[str] = []
            if (
                f"set_default_{knob}" not in functions
                and f"set_{knob}_enabled" not in functions
            ):
                missing.append(
                    f"no set_default_{knob}()/set_{knob}_enabled() override"
                )
            flag = "--" + knob.replace("_", "-")
            if flag not in flags:
                missing.append(f"no {flag} flag in cli.py")
            if knob not in fields:
                missing.append(f"no ExperimentConfig.{knob} field")
            if missing:
                findings.append(
                    source.finding(
                        self.rule_id,
                        node,
                        f"{env_value} is an incomplete knob: "
                        + "; ".join(missing)
                        + " (the protocol is arg > set_default override "
                        "> env > default, reachable from the CLI and "
                        "ExperimentConfig)",
                    )
                )
        return findings
