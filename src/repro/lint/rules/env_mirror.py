"""``env-mirror``: ``os.environ`` writes only inside EnvMirroredOverride.

The knob protocol keeps spawn workers in agreement with the parent by
mirroring every override into its ``REPRO_*`` environment variable
through :class:`repro.parallel.EnvMirroredOverride`, which also restores
the displaced value on reset.  A direct ``os.environ[...] = ...`` write
anywhere else bypasses that bookkeeping: the next worker pool inherits a
value no override tracks, and tearing it down leaks state into later
runs.  The rule flags every mutation of the process environment —
subscript assignment/deletion, ``pop``/``setdefault``/``update``/
``clear``, ``os.putenv``/``os.unsetenv`` — unless it sits inside the
``EnvMirroredOverride`` class body in ``parallel.py``.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.model import Finding, Rule, SourceFile
from repro.lint.rules.common import dotted_name, is_os_environ

_MUTATING_METHODS = frozenset({"pop", "setdefault", "update", "clear", "__setitem__"})


def _environ_write(node: ast.AST) -> Optional[ast.AST]:
    """The offending node if ``node`` mutates the process environment."""
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Subscript) and is_os_environ(target.value):
                return target
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Subscript) and is_os_environ(target.value):
                return target
    elif isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and is_os_environ(func.value)
        ):
            return node
        if dotted_name(func) in ("os.putenv", "os.unsetenv"):
            return node
    return None


class EnvMirrorRule(Rule):
    rule_id = "env-mirror"
    description = (
        "direct os.environ writes (assignment, del, pop, update, "
        "putenv) are allowed only inside parallel.py's "
        "EnvMirroredOverride; route overrides through the set_default_* "
        "functions so spawned workers stay in sync"
    )

    def check_file(self, source: SourceFile) -> List[Finding]:
        if source.tree is None:
            return []
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            offender = _environ_write(node)
            if offender is None:
                continue
            if source.name == "parallel.py":
                enclosing = source.enclosing_class(node)
                if enclosing is not None and enclosing.name == "EnvMirroredOverride":
                    continue
            findings.append(
                source.finding(
                    self.rule_id,
                    offender,
                    "direct write to the process environment outside "
                    "EnvMirroredOverride; use the knob's set_default_* "
                    "override (which mirrors and restores the env var) "
                    "so spawned workers and later runs stay consistent",
                )
            )
        return findings
