"""``suppression-stale``: every audited exception must still be live.

The suppression inventory is the repo's list of *audited* invariant
exceptions — each ``# repro-lint: disable=RULE — reason`` says "a human
looked at this line and vouched for it".  That inventory rots silently:
code under a suppression gets refactored, the rule stops firing, and the
stale comment keeps advertising an exception that no longer exists (and
would re-license a future regression on the same line without any fresh
audit).  So a suppression whose rule did not fire on the lines it covers
is itself a finding.

Staleness is judged only against rules that actually ran: a filtered
``--rules knob-flow`` invocation does not mark ``float-fold``
suppressions stale, because nothing checked them this pass.  The
judgement uses the engine's partition — a suppression is *live* for rule
``R`` if at least one ``R`` finding landed in the suppressed list through
it — so this rule cannot run standalone; the engine drives it after all
other rules (see :func:`repro.lint.engine.run_lint`).
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.lint.model import Finding, Rule, SourceFile, Suppression


class SuppressionStaleRule(Rule):
    rule_id = "suppression-stale"
    description = (
        "a # repro-lint: disable=RULE comment whose rule no longer fires "
        "on the guarded line is stale — remove it (or re-audit why it "
        "was there) so the audited-exception inventory cannot rot"
    )

    def stale_findings(
        self,
        sources: Sequence[SourceFile],
        judged_rules: Set[str],
        used: Set[Tuple[int, str]],
    ) -> List[Finding]:
        """Findings for suppressions no suppressed finding went through.

        ``judged_rules`` is the set of rule IDs that actually ran this
        pass; ``used`` holds ``(id(suppression), rule_id)`` pairs the
        engine recorded while partitioning.  A standalone comment line
        registers the same :class:`Suppression` object on two lines, so
        de-duplication is by object identity.
        """
        findings: List[Finding] = []
        for source in sources:
            seen: Set[int] = set()
            for suppressions in source.suppressions.values():
                for suppression in suppressions:
                    if id(suppression) in seen:
                        continue
                    seen.add(id(suppression))
                    findings.extend(
                        self._judge(source, suppression, judged_rules, used)
                    )
        return findings

    def _judge(
        self,
        source: SourceFile,
        suppression: Suppression,
        judged_rules: Set[str],
        used: Set[Tuple[int, str]],
    ) -> List[Finding]:
        findings = []
        for rule in suppression.rules:
            if rule == self.rule_id:
                # A suppression may itself be suppressed-stale-exempted;
                # judging that would chase its own tail.
                continue
            if rule not in judged_rules:
                continue
            if (id(suppression), rule) in used:
                continue
            findings.append(
                Finding(
                    rule=self.rule_id,
                    path=source.path,
                    line=suppression.line,
                    col=0,
                    message=(
                        f"suppression for {rule!r} is stale: the rule no "
                        "longer fires on the line(s) this comment covers "
                        f"(audited reason was: {suppression.reason!r}) — "
                        "remove the disable or re-audit the code it "
                        "guarded"
                    ),
                )
            )
        return findings
