"""``cache-version-key``: per-``Graph`` caches must be version-fenced.

Caches keyed on a mutable ``Graph`` are the repo's sharpest correctness
edge: a stale entry is not an error, it is a silently wrong answer served
fast.  The ROADMAP contract is "caches key on ``Graph._version`` (plus
``backend``/``weighted`` where the payload depends on them)", and PR 8's
hand-caught ``compute_dag`` bug is exactly what happens when one knob goes
missing from one key.  This rule turns both halves into a gate:

* **version fencing** — a store into a subscriptable cache *indexed by a
  Graph-typed value* (``cache[graph] = ...``) must live in a scope that
  reads ``._version``: the storing function itself, or (for methods) the
  owning class — either the key/value embeds ``graph._version`` or the
  store records it and revalidates on lookup (the ``_csr_cache`` /
  ``SourceDAGCache`` idioms).  A Graph-keyed store in a scope that never
  looks at ``_version`` cannot be fence-correct.
* **knob-complete keys** — inside a function that takes a ``backend`` or
  ``weighted`` parameter and stores cache entries under a literal key
  tuple (a ``.lookup(...)``/``.put(...)`` call or a ``cache[(...)]=``
  subscript), a knob the function body uses must also appear inside the
  key expression; a key that omits it collapses distinct payloads onto
  one entry (the ``compute_dag`` bug class).

A Graph-typed value is recognised conservatively: a parameter named
``graph`` or annotated ``Graph``/``"Graph"``.  Everything the rule cannot
see stays silent — suppress intentional exceptions with an audited
reason.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Sequence, Set, Tuple

from repro.lint.model import Finding, Rule, SourceFile
from repro.lint.rules.common import dotted_name
from repro.lint.semantics import project_semantics
from repro.lint.semantics.symbols import FunctionInfo

#: Path components outside the audit (mirrors the knob-flow scoping).
DEFAULT_EXCLUDE_PARTS: Tuple[str, ...] = (
    "tests",
    "benchmarks",
    "examples",
    "fixtures",
    "lint",
)

#: The knobs whose value changes what a traversal cache entry *contains*
#: (ROADMAP: "plus source/backend/weighted for SourceDAGCache").
KEY_KNOBS = ("backend", "weighted")

#: Call-attribute names treated as cache-entry stores when passed a
#: literal key tuple.
_KEYED_STORE_CALLS = frozenset({"lookup", "put"})


def _graphish_params(function: FunctionInfo) -> Set[str]:
    """Parameter names that hold a Graph by name or annotation."""
    names: Set[str] = set()
    args = function.node.args
    for arg in (
        list(getattr(args, "posonlyargs", []))
        + list(args.args)
        + list(args.kwonlyargs)
    ):
        if arg.arg == "graph":
            names.add(arg.arg)
            continue
        annotation = arg.annotation
        text = ""
        if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            text = annotation.value
        elif annotation is not None:
            text = dotted_name(annotation) or ""
        if text.split(".")[-1] == "Graph":
            names.add(arg.arg)
    return names


def _subscript_stores(body: ast.AST) -> Iterator[ast.Subscript]:
    """Subscript nodes that are assignment or deletion targets."""
    for node in ast.walk(body):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        for target in targets:
            if isinstance(target, ast.Subscript):
                yield target


def _reads_version(scope: ast.AST) -> bool:
    """Whether ``scope`` contains any ``._version`` attribute read."""
    return any(
        isinstance(node, ast.Attribute) and node.attr == "_version"
        for node in ast.walk(scope)
    )


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _key_expressions(function: FunctionInfo) -> Iterator[ast.AST]:
    """Literal key-tuple expressions of the function's cache stores.

    Two store shapes count: a ``.lookup(...)``/``.put(...)`` call whose
    argument list contains a tuple literal (the key), and a subscript
    assignment whose index is a tuple literal.  Key *variables* are
    invisible on purpose — only a literal key can be audited statically.
    """
    for node in ast.walk(function.node):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _KEYED_STORE_CALLS:
                for arg in node.args:
                    if isinstance(arg, (ast.Tuple,)) or (
                        isinstance(arg, ast.IfExp)
                        and isinstance(arg.body, ast.Tuple)
                    ):
                        yield arg
    for target in _subscript_stores(function.node):
        index = target.slice
        if isinstance(index, ast.Tuple) or (
            isinstance(index, ast.IfExp) and isinstance(index.body, ast.Tuple)
        ):
            yield index


class CacheVersionKeyRule(Rule):
    rule_id = "cache-version-key"
    description = (
        "caches indexed by a Graph must fence on Graph._version (embed it "
        "in the key or revalidate a recorded version), and literal cache "
        "key tuples must include the backend/weighted knobs the cached "
        "payload depends on"
    )

    def __init__(
        self, exclude_parts: Sequence[str] = DEFAULT_EXCLUDE_PARTS
    ) -> None:
        self.exclude_parts = tuple(exclude_parts)

    def _included(self, source: SourceFile) -> bool:
        return source.tree is not None and not any(
            part in self.exclude_parts for part in source.parts
        )

    # ------------------------------------------------------------------
    def check_project(self, sources: Sequence[SourceFile]) -> List[Finding]:
        project = project_semantics(sources)
        findings: List[Finding] = []
        for function in project.functions():
            source = function.module.source
            if not self._included(source):
                continue
            findings.extend(self._check_graph_keyed(project, function))
            findings.extend(self._check_knob_keys(function))
        return findings

    # ------------------------------------------------------------------
    def _check_graph_keyed(self, project, function: FunctionInfo):
        graphish = _graphish_params(function)
        if not graphish:
            return
        stores = [
            target for target in _subscript_stores(function.node)
            if isinstance(target.slice, ast.Name)
            and target.slice.id in graphish
        ]
        if not stores:
            return
        # Fence scope: the storing function itself first (the ``as_csr``
        # idiom — read, compare, store in one body), then the owning class
        # (the ``SourceDAGCache._GraphStore`` idiom — ``put`` stores what
        # ``lookup`` revalidates).  Deliberately NOT the whole module: an
        # unrelated function's ``._version`` read must not certify this
        # store as fenced.
        if _reads_version(function.node):
            return
        where = f"function {function.qualname}"
        if function.owner is not None:
            symbols = project.symbols_of(function.module)
            owner = symbols.classes.get(function.owner)
            if owner is not None:
                if _reads_version(owner.node):
                    return
                where = f"class {function.owner}"
        for target in stores:
            yield function.module.source.finding(
                self.rule_id,
                target,
                f"{function.qualname}() stores a cache entry keyed by a "
                f"Graph, but {where} never reads ._version — a mutated "
                "graph will be served stale results; key the entry on "
                "graph._version or record and revalidate the version "
                "(the _csr_cache / SourceDAGCache idioms)",
            )

    def _check_knob_keys(self, function: FunctionInfo):
        knob_params = [
            knob for knob in KEY_KNOBS if function.accepts(knob)
        ]
        if not knob_params:
            return
        body_names = _names_in(function.node)
        for key in _key_expressions(function):
            key_names = _names_in(key)
            for knob in knob_params:
                if knob in body_names and knob not in key_names:
                    yield function.module.source.finding(
                        self.rule_id,
                        key,
                        f"{function.qualname}() caches under a key that "
                        f"omits its {knob!r} parameter while the payload "
                        f"depends on it — entries computed under "
                        f"different {knob} values would collide; add "
                        f"{knob} to the key tuple",
                    )
