"""Helpers shared by the rule visitors."""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.model import SourceFile

#: The modules allowed to contain level-expansion kernels and float
#: folds: the one-kernel-per-concern whitelist from the ROADMAP.
KERNEL_BASENAMES = frozenset(
    {"csr.py", "delta_stepping.py", "compiled.py", "traversal.py"}
)

#: Names numpy is conventionally imported under in this repo.
NUMPY_ALIASES = frozenset({"np", "numpy", "_np"})


def is_kernel_module(source: SourceFile) -> bool:
    """True for ``graphs/{csr,delta_stepping,compiled,traversal}.py``.

    Keyed on basename + parent directory (not the absolute path) so the
    fixture corpus can mirror the layout under any root.
    """
    return (
        source.name in KERNEL_BASENAMES
        and len(source.parts) >= 2
        and source.parts[-2] == "graphs"
    )


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


def is_os_environ(node: ast.AST) -> bool:
    """True for the ``os.environ`` attribute chain."""
    return dotted_name(node) == "os.environ"
