"""``float-fold``: no unaudited float summations in kernel modules.

The determinism contract pins the exact float accumulation order across
backends, worker counts and kernels.  numpy's ``.sum()`` uses pairwise
summation, which re-associates float additions — harmless for integer
arrays, contract-breaking for float ones (PR 5's review caught one by
hand; cf. the deliberate ``tolist()`` sequential fold at
``graphs/csr.py`` ``distance_stats_from_row``).  Statically we cannot
see dtypes, so the rule is a discipline check over the kernel modules:

* a fold wrapped directly in ``int(...)`` is self-evidently an integer
  fold — allowed;
* any other ``sum(...)`` / ``np.sum(...)`` / ``math.fsum(...)`` /
  ``x.sum()`` must carry an audited
  ``# repro-lint: disable=float-fold — reason`` suppression explaining
  why its accumulation order is safe.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.model import Finding, Rule, SourceFile
from repro.lint.rules.common import is_kernel_module


def _is_fold_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in ("sum", "fsum")
    if isinstance(func, ast.Attribute):
        if func.attr == "fsum":  # math.fsum(...)
            return True
        if func.attr == "sum":
            # Both np.sum(a) and a.sum() re-associate; flag either.
            return True
    return False


class FloatFoldRule(Rule):
    rule_id = "float-fold"
    description = (
        "sum()/.sum()/np.sum/math.fsum in kernel modules "
        "(graphs/{csr,delta_stepping,compiled,traversal}.py) must be "
        "int()-wrapped integer folds or carry an audited suppression — "
        "pairwise summation re-associates float additions"
    )

    def check_file(self, source: SourceFile) -> List[Finding]:
        if not is_kernel_module(source) or source.tree is None:
            return []
        findings: List[Finding] = []
        parents = source.parents()
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call) or not _is_fold_call(node):
                continue
            parent = parents.get(node)
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id == "int"
                and node in parent.args
            ):
                continue  # int(x.sum()) — an integer fold, order-safe
            snippet = ast.unparse(node)
            if len(snippet) > 60:
                snippet = snippet[:57] + "..."
            findings.append(
                source.finding(
                    self.rule_id,
                    node,
                    f"unwrapped fold `{snippet}` in a kernel module; "
                    "pairwise summation re-associates float additions — "
                    "wrap integer folds in int(...), or add "
                    "`# repro-lint: disable=float-fold — <why the order "
                    "is safe>` after auditing",
                )
            )
        return findings
