"""``kernel-ownership``: one kernel per concern, no private copies.

Level expansion and the sigma-overflow guard live only in
``graphs/csr.py``'s ``_BatchSweep`` (with ``delta_stepping.py``,
``compiled.py`` and ``traversal.py`` as the other sanctioned kernel
homes).  Before that consolidation the repo had five hand-rolled BFS
loops that each had to re-learn every determinism fix; the rule keeps
copies from re-growing by rejecting, outside the whitelist:

* imports of underscore-private names from the kernel modules and
  attribute access on the known kernel privates (``_BatchSweep`` & co.);
* hand-rolled frontier loops — a ``while`` whose condition tests a
  ``*frontier*`` name and whose body reassigns one, or any assignment to
  a ``next_frontier``/``new_frontier`` variable.

Legitimate exceptions (the bidirectional balancer's single-slot sweep,
kernel unit tests, the hop-BFS oracle in the Brandes tests) carry
audited suppressions.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.lint.model import Finding, Rule, SourceFile
from repro.lint.rules.common import is_kernel_module

#: Private helpers owned by the kernel modules; reaching for them from
#: outside couples callers to kernel internals.
PRIVATE_KERNEL_NAMES = frozenset(
    {
        "_BatchSweep",
        "_backward_dependencies",
        "_np_bfs",
        "_np_shortest_path_dag",
        "_shared_state",
        "_sigma_may_overflow",
    }
)

_KERNEL_MODULE_STEMS = frozenset({"csr", "delta_stepping", "compiled", "traversal"})


def _is_frontier_name(name: str) -> bool:
    return "frontier" in name.lower()


def _assigns_frontier(node: ast.AST) -> bool:
    """True when ``node`` (re)binds a frontier-ish plain name."""
    if isinstance(node, ast.Assign):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    else:
        return False
    return any(
        isinstance(target, ast.Name) and _is_frontier_name(target.id)
        for target in targets
    )


class KernelOwnershipRule(Rule):
    rule_id = "kernel-ownership"
    description = (
        "frontier/level-expansion loops and kernel privates "
        "(_BatchSweep etc.) belong to graphs/{csr,delta_stepping,"
        "compiled,traversal}.py; elsewhere they need an audited "
        "suppression"
    )

    def check_file(self, source: SourceFile) -> List[Finding]:
        if is_kernel_module(source) or source.tree is None:
            return []
        findings: List[Finding] = []
        parents = source.parents()
        flagged_whiles: Set[ast.AST] = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.split(".")[-1] not in _KERNEL_MODULE_STEMS:
                    continue
                for alias in node.names:
                    if alias.name.startswith("_"):
                        findings.append(
                            source.finding(
                                self.rule_id,
                                node,
                                f"import of kernel private `{alias.name}` "
                                f"from `{module}`; kernel internals stay "
                                "inside the whitelisted graphs modules — "
                                "use the public sweep APIs",
                            )
                        )
            elif isinstance(node, ast.Attribute):
                if node.attr in PRIVATE_KERNEL_NAMES:
                    findings.append(
                        source.finding(
                            self.rule_id,
                            node,
                            f"access to kernel private `{node.attr}`; "
                            "level expansion and its guards are owned by "
                            "the graphs kernel modules — use the public "
                            "sweep APIs",
                        )
                    )
            elif isinstance(node, ast.While):
                tests_frontier = any(
                    isinstance(sub, ast.Name) and _is_frontier_name(sub.id)
                    for sub in ast.walk(node.test)
                )
                if tests_frontier and any(
                    _assigns_frontier(sub)
                    for body_node in node.body
                    for sub in ast.walk(body_node)
                ):
                    flagged_whiles.add(node)
                    findings.append(
                        source.finding(
                            self.rule_id,
                            node,
                            "hand-rolled frontier/level-expansion loop; "
                            "the one BFS kernel lives in "
                            "repro.graphs.csr._BatchSweep — drive it "
                            "through the public sweep APIs instead of "
                            "growing a private copy",
                        )
                    )
        # Assignments to the canonical scratch names outside a flagged
        # loop (the loop finding already covers the ones inside it).
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            if not any(
                isinstance(target, ast.Name)
                and target.id in ("next_frontier", "new_frontier")
                for target in targets
            ):
                continue
            current = parents.get(node)
            inside_flagged = False
            while current is not None:
                if current in flagged_whiles:
                    inside_flagged = True
                    break
                current = parents.get(current)
            if inside_flagged:
                continue
            findings.append(
                source.finding(
                    self.rule_id,
                    node,
                    "assignment to a level-expansion scratch frontier; "
                    "BFS level expansion is owned by "
                    "repro.graphs.csr._BatchSweep — use the public sweep "
                    "APIs instead of a private loop",
                )
            )
        return findings
