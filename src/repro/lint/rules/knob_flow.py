"""``knob-flow``: knob kwargs must be threaded through every call chain.

The bug class this gates is the one PRs 1, 3, 5 and 8 each fixed by hand:
a function accepts a knob (``backend=``, ``weighted=``, ``workers=``,
``sssp_kernel=`` …), calls a callee whose signature *also* accepts that
knob, and silently drops it — the callee then re-resolves the knob from
process-wide defaults, which agrees with the caller's argument on every
test machine until the day it doesn't.  A dropped knob is a silent
wrong-answer (or wrong-performance) bug, so the contract is syntactic and
total: **if you accept a knob and your callee accepts the same knob, you
forward it explicitly.**

Mechanically, for every function ``F`` in product code with a parameter
whose name is a declared knob (the lowercased remainder of a ``REPRO_*``
variable — see :meth:`repro.lint.semantics.symbols.Project.knob_names`),
and every call site of ``F`` resolving to a project-owned callee ``G``
whose signature has the same parameter: the site must bind it — by
keyword (``backend=backend``, or an explicit pin like ``weighted="off"``,
which is a visible, auditable decision), positionally, or through a
``*args``/``**kwargs`` splat (pass-through forwarding counts; the rule
never fires on a binding it cannot see).  Unresolvable calls produce no
finding: the analysis is conservative by construction.

Intentional drops carry an audited suppression::

    # repro-lint: disable=knob-flow — audited: serial fallback probe, workers pinned off
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.lint.model import Finding, Rule, SourceFile
from repro.lint.semantics import call_sites, project_semantics

#: Path components excluded from the audit: test/bench/example code pins
#: knobs on purpose, fixture twins are deliberate violations, and the lint
#: package itself is not knob-threading product code.
DEFAULT_EXCLUDE_PARTS: Tuple[str, ...] = (
    "tests",
    "benchmarks",
    "examples",
    "fixtures",
    "lint",
)


class KnobFlowRule(Rule):
    rule_id = "knob-flow"
    description = (
        "a function accepting a knob kwarg (backend/workers/weighted/"
        "sssp_kernel/...) must forward it explicitly to every callee whose "
        "signature also accepts it — dropped knobs re-resolve from global "
        "defaults and silently diverge"
    )

    def __init__(
        self, exclude_parts: Sequence[str] = DEFAULT_EXCLUDE_PARTS
    ) -> None:
        self.exclude_parts = tuple(exclude_parts)

    def _included(self, source: SourceFile) -> bool:
        return source.tree is not None and not any(
            part in self.exclude_parts for part in source.parts
        )

    # ------------------------------------------------------------------
    def check_project(self, sources: Sequence[SourceFile]) -> List[Finding]:
        project = project_semantics(sources)
        knobs = project.knob_names(self.exclude_parts)
        if not knobs:
            return []
        findings: List[Finding] = []
        for function in project.functions():
            source = function.module.source
            if not self._included(source):
                continue
            held = [
                knob for knob in sorted(knobs) if function.accepts(knob)
            ]
            if not held:
                continue
            for site in call_sites(project, function):
                if not self._included(site.callee.module.source):
                    continue
                for knob in held:
                    if not site.callee.accepts(knob):
                        continue
                    if site.binds(knob):
                        continue
                    findings.append(
                        source.finding(
                            self.rule_id,
                            site.node,
                            f"{function.qualname}() accepts knob "
                            f"{knob!r} but drops it calling "
                            f"{site.callee.qualname}(), whose signature "
                            f"also accepts it — forward {knob}={knob} "
                            "(or pin a value explicitly); the callee "
                            "otherwise re-resolves the knob from "
                            "process-wide defaults",
                        )
                    )
        return findings
