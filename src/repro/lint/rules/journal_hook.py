"""``journal-hook``: graph mutators must bump ``_version`` and journal.

Since PR 8, cache correctness rests on a two-part mutation protocol in
:class:`repro.graphs.graph.Graph`: every mutation of the adjacency
structure or edge weights (1) bumps the monotonic ``_version`` counter the
CSR snapshot cache and ``SourceDAGCache`` fence on, and (2) records an
:class:`~repro.graphs.delta.EdgeDelta` (or the STRUCTURAL marker) in the
armed mutation journal so delta validation can retain provably-unaffected
cache entries.  A future mutator that forgets either half corrupts every
cache in the process — silently, because the equivalence tests only cover
the mutators that exist today.

The rule fires on any *method* in product code that mutates
``self._adj`` (subscript assignment/deletion at any nesting depth, or a
mutating call like ``self._adj.pop``/``.setdefault``/``.update``/
``.clear``) or adjusts the ``self._num_edges``/``self._num_weighted``
counters, unless the same method both writes ``self._version`` and calls
``self._journal.record(...)``.  Mutations of *another* object's ``_adj``
(``clone._adj[...] = ...``) are exempt inside a class that also mutates
``self._adj`` — that is the owning class building a fresh instance — and
a finding anywhere else: external code must go through the ``Graph``
mutation API, which journals for it.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.lint.model import Finding, Rule, SourceFile
from repro.lint.rules.common import dotted_name

#: Path components outside the audit (test doubles mutate freely).
DEFAULT_EXCLUDE_PARTS: Tuple[str, ...] = (
    "tests",
    "benchmarks",
    "examples",
    "fixtures",
    "lint",
)

#: dict methods that mutate in place.
_MUTATING_CALLS = frozenset(
    {"pop", "popitem", "setdefault", "update", "clear", "__setitem__"}
)


def _adj_root(node: ast.AST) -> Optional[str]:
    """The root name of an ``<root>._adj[...]...`` chain, else ``None``."""
    current = node
    while isinstance(current, ast.Subscript):
        current = current.value
    name = dotted_name(current)
    if name is None:
        return None
    parts = name.split(".")
    if len(parts) >= 2 and parts[1] == "_adj":
        return parts[0]
    return None


def _counter_root(node: ast.AST) -> Optional[str]:
    name = dotted_name(node)
    if name is None:
        return None
    parts = name.split(".")
    if len(parts) == 2 and parts[1] in ("_num_edges", "_num_weighted"):
        return parts[0]
    return None


def _mutations(body: ast.AST) -> Iterator[Tuple[ast.AST, str]]:
    """``(site, root name)`` for every adjacency/counter mutation."""
    for node in ast.walk(body):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in _MUTATING_CALLS:
                root = _adj_root(node.func.value)
                if root is not None:
                    yield node, root
            continue
        for target in targets:
            if isinstance(target, ast.Subscript):
                root = _adj_root(target)
                if root is not None:
                    yield node, root
            elif isinstance(target, ast.Attribute) and isinstance(
                node, ast.AugAssign
            ):
                root = _counter_root(target)
                if root is not None:
                    yield node, root


def _writes_version(body: ast.AST) -> bool:
    for node in ast.walk(body):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if dotted_name(target) == "self._version":
                return True
    return False


def _records_journal(body: ast.AST) -> bool:
    return any(
        isinstance(node, ast.Call)
        and dotted_name(node.func) == "self._journal.record"
        for node in ast.walk(body)
    )


class JournalHookRule(Rule):
    rule_id = "journal-hook"
    description = (
        "every method mutating graph adjacency/weights (self._adj, the "
        "edge counters) must bump self._version AND record an EdgeDelta/"
        "STRUCTURAL marker in self._journal; external code must mutate "
        "through the Graph API"
    )

    def __init__(
        self, exclude_parts: Sequence[str] = DEFAULT_EXCLUDE_PARTS
    ) -> None:
        self.exclude_parts = tuple(exclude_parts)

    def _included(self, source: SourceFile) -> bool:
        return source.tree is not None and not any(
            part in self.exclude_parts for part in source.parts
        )

    # ------------------------------------------------------------------
    def check_file(self, source: SourceFile) -> List[Finding]:
        if not self._included(source):
            return []
        assert source.tree is not None
        findings: List[Finding] = []
        # Classes whose methods mutate self._adj own graph storage; their
        # non-self mutations (clone building) are sanctioned.
        owning_classes = set()
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and any(
                root == "self" for _site, root in _mutations(node)
            ):
                owning_classes.add(node)
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                enclosing = source.enclosing_class(node)
                findings.extend(
                    self._check_function(source, node, enclosing, owning_classes)
                )
        return findings

    def _check_function(self, source, function, enclosing, owning_classes):
        self_sites = []
        foreign_sites = []
        for site, root in _mutations(function):
            if root == "self":
                self_sites.append(site)
            else:
                foreign_sites.append(site)
        if self_sites and enclosing is not None:
            missing = []
            if not _writes_version(function):
                missing.append("bump self._version")
            if not _records_journal(function):
                missing.append(
                    "record an EdgeDelta/STRUCTURAL marker via "
                    "self._journal.record(...)"
                )
            if missing:
                yield source.finding(
                    self.rule_id,
                    function,
                    f"{enclosing.name}.{function.name}() mutates graph "
                    "adjacency/weights but does not "
                    + " or ".join(missing)
                    + " — stale CSR snapshots and cached DAGs would "
                    "survive this mutation (the PR 8 delta protocol)",
                )
        if foreign_sites and enclosing not in owning_classes:
            for site in foreign_sites:
                yield source.finding(
                    self.rule_id,
                    site,
                    "direct mutation of another object's ._adj bypasses "
                    "the version/journal protocol — use the Graph "
                    "mutation API (add_edge/set_edge_weight/remove_edge/"
                    "remove_node), which journals for you",
                )
