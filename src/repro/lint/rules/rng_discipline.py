"""``rng-discipline``: all randomness rides seeded per-chunk streams.

Global RNG state (``random.seed``/``random.random``/``np.random.*``) is
process-wide: a library call that consumes from it changes every later
draw, so results stop being a pure function of the master seed — the
exact failure the fixed chunk layout + per-chunk ``spawn_rngs`` streams
in :mod:`repro.parallel` exist to prevent.  The rule bans attribute
access on the global ``random`` module and on ``np.random`` everywhere
except ``repro/utils/rng.py`` (the one place seeded streams are minted).
Constructing seeded instances — ``random.Random(seed)`` — is fine
anywhere; that is the sanctioned API.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.model import Finding, Rule, SourceFile
from repro.lint.rules.common import NUMPY_ALIASES

#: Attributes of the ``random`` module that do not touch global state:
#: class constructors callers seed themselves.
_ALLOWED_RANDOM_ATTRS = frozenset({"Random", "SystemRandom"})


def _is_rng_home(source: SourceFile) -> bool:
    return (
        source.name == "rng.py"
        and len(source.parts) >= 2
        and source.parts[-2] == "utils"
    )


class RngDisciplineRule(Rule):
    rule_id = "rng-discipline"
    description = (
        "no global random.* or np.random.* use outside "
        "repro/utils/rng.py; randomness must come from seeded "
        "random.Random instances (ensure_rng/spawn_rngs)"
    )

    def check_file(self, source: SourceFile) -> List[Finding]:
        if _is_rng_home(source) or source.tree is None:
            return []
        findings: List[Finding] = []
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Attribute):
                continue
            value = node.value
            if (
                isinstance(value, ast.Name)
                and value.id == "random"
                and node.attr not in _ALLOWED_RANDOM_ATTRS
            ):
                findings.append(
                    source.finding(
                        self.rule_id,
                        node,
                        f"global-state RNG call `random.{node.attr}`; use a "
                        "seeded stream from repro.utils.rng "
                        "(ensure_rng/spawn_rngs) so results stay a pure "
                        "function of the master seed",
                    )
                )
            elif (
                isinstance(value, ast.Name)
                and value.id in NUMPY_ALIASES
                and node.attr == "random"
            ):
                findings.append(
                    source.finding(
                        self.rule_id,
                        node,
                        f"`{value.id}.random` use; numpy's global RNG is "
                        "process-wide state — draw through seeded "
                        "repro.utils.rng streams instead",
                    )
                )
        return findings
