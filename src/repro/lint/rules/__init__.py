"""The rule registry.

Rules register here by being listed in :func:`default_rules`; IDs are
stable and documented in the README's "Static invariants" section.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.lint.model import META_RULES, Rule
from repro.lint.rules.env_mirror import EnvMirrorRule
from repro.lint.rules.float_fold import FloatFoldRule
from repro.lint.rules.kernel_ownership import KernelOwnershipRule
from repro.lint.rules.knob_protocol import KnobProtocolRule
from repro.lint.rules.rng_discipline import RngDisciplineRule

__all__ = [
    "EnvMirrorRule",
    "FloatFoldRule",
    "KernelOwnershipRule",
    "KnobProtocolRule",
    "RngDisciplineRule",
    "all_rule_ids",
    "default_rules",
]


def default_rules() -> List[Rule]:
    """Fresh instances of every shipped rule."""
    return [
        KnobProtocolRule(),
        FloatFoldRule(),
        RngDisciplineRule(),
        EnvMirrorRule(),
        KernelOwnershipRule(),
    ]


def all_rule_ids() -> Tuple[str, ...]:
    """Every shipped rule ID plus the unsuppressable meta rules."""
    return tuple(rule.rule_id for rule in default_rules()) + META_RULES
