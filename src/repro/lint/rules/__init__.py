"""The rule registry.

Rules register here by being listed in :func:`default_rules`; IDs are
stable and documented in the README's "Static invariants" section.  The
PR 7 rules are per-file pattern matchers; the PR 9 rules (``knob-flow``,
``cache-version-key``, ``journal-hook``) run over the whole-program
semantic model of :mod:`repro.lint.semantics`, and ``suppression-stale``
is judged by the engine after partitioning (it needs to know which
suppressions absorbed a finding).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.lint.model import META_RULES, Rule
from repro.lint.rules.cache_version_key import CacheVersionKeyRule
from repro.lint.rules.env_mirror import EnvMirrorRule
from repro.lint.rules.float_fold import FloatFoldRule
from repro.lint.rules.journal_hook import JournalHookRule
from repro.lint.rules.kernel_ownership import KernelOwnershipRule
from repro.lint.rules.knob_flow import KnobFlowRule
from repro.lint.rules.knob_protocol import KnobProtocolRule
from repro.lint.rules.rng_discipline import RngDisciplineRule
from repro.lint.rules.suppression_stale import SuppressionStaleRule

__all__ = [
    "CacheVersionKeyRule",
    "EnvMirrorRule",
    "FloatFoldRule",
    "JournalHookRule",
    "KernelOwnershipRule",
    "KnobFlowRule",
    "KnobProtocolRule",
    "RngDisciplineRule",
    "SuppressionStaleRule",
    "all_rule_ids",
    "default_rules",
]


def default_rules() -> List[Rule]:
    """Fresh instances of every shipped rule."""
    return [
        KnobProtocolRule(),
        FloatFoldRule(),
        RngDisciplineRule(),
        EnvMirrorRule(),
        KernelOwnershipRule(),
        KnobFlowRule(),
        CacheVersionKeyRule(),
        JournalHookRule(),
        SuppressionStaleRule(),
    ]


def all_rule_ids() -> Tuple[str, ...]:
    """Every shipped rule ID plus the unsuppressable meta rules."""
    return tuple(rule.rule_id for rule in default_rules()) + META_RULES
