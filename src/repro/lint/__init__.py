"""``repro lint``: an AST-based checker for the architecture invariants.

The ROADMAP's "Architecture invariants" section is load-bearing — the
backends, worker pool, delta-stepping and compiled kernels are all
required to agree bit for bit — but equivalence tests only catch a
violation *after* it has produced wrong numbers.  This package enforces
the contracts statically, at CI time, with stdlib :mod:`ast` visitors:

* ``knob-protocol`` — every ``REPRO_*`` environment variable read in
  ``src/`` must carry the full knob surface (a ``set_default_*`` /
  ``set_*_enabled`` override, a CLI flag, an ``ExperimentConfig`` field).
* ``float-fold`` — ``sum()``/``.sum()``/``np.sum``/``math.fsum`` folds
  inside the kernel modules must be integer (``int(...)``-wrapped) or
  carry an audited suppression: pairwise summation re-associates float
  additions and breaks bit-identical determinism.
* ``rng-discipline`` — no global ``random.*`` or ``np.random.*`` calls
  outside ``repro/utils/rng.py``; all randomness rides seeded streams.
* ``env-mirror`` — direct ``os.environ`` writes only inside
  ``repro/parallel.py``'s ``EnvMirroredOverride`` machinery.
* ``kernel-ownership`` — frontier/level-expansion loops and kernel
  privates (``_BatchSweep`` & co.) stay inside the whitelisted
  ``graphs/{csr,delta_stepping,compiled,traversal}.py`` modules.

Findings are suppressed inline with an audited reason::

    total = sum(values)  # repro-lint: disable=float-fold — sequential fold, order is pinned

Run ``repro lint`` or ``python -m repro.lint [paths...]``; the exit code
is non-zero on any unsuppressed finding.  The package is stdlib-only (no
numpy import) so the checker runs identically in the no-numpy CI leg.
"""

from __future__ import annotations

from repro.lint.engine import LintReport, LintUsageError, iter_python_files, run_lint
from repro.lint.model import Finding, Rule, SourceFile, Suppression
from repro.lint.rules import all_rule_ids, default_rules

__all__ = [
    "Finding",
    "LintReport",
    "LintUsageError",
    "Rule",
    "SourceFile",
    "Suppression",
    "all_rule_ids",
    "default_rules",
    "iter_python_files",
    "run_lint",
]
