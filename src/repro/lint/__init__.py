"""``repro lint``: an AST-based checker for the architecture invariants.

The ROADMAP's "Architecture invariants" section is load-bearing — the
backends, worker pool, delta-stepping and compiled kernels are all
required to agree bit for bit — but equivalence tests only catch a
violation *after* it has produced wrong numbers.  This package enforces
the contracts statically, at CI time, with stdlib :mod:`ast` visitors.

Per-file pattern rules:

* ``knob-protocol`` — every ``REPRO_*`` environment variable read in
  ``src/`` must carry the full knob surface (a ``set_default_*`` /
  ``set_*_enabled`` override, a CLI flag, an ``ExperimentConfig`` field).
* ``float-fold`` — ``sum()``/``.sum()``/``np.sum``/``math.fsum`` folds
  inside the kernel modules must be integer (``int(...)``-wrapped) or
  carry an audited suppression: pairwise summation re-associates float
  additions and breaks bit-identical determinism.
* ``rng-discipline`` — no global ``random.*`` or ``np.random.*`` calls
  outside ``repro/utils/rng.py``; all randomness rides seeded streams.
* ``env-mirror`` — direct ``os.environ`` writes only inside
  ``repro/parallel.py``'s ``EnvMirroredOverride`` machinery.
* ``kernel-ownership`` — frontier/level-expansion loops and kernel
  privates (``_BatchSweep`` & co.) stay inside the whitelisted
  ``graphs/{csr,delta_stepping,compiled,traversal}.py`` modules.

Whole-program rules (built on the :mod:`repro.lint.semantics` model —
module index with import/alias resolution, symbol table, call graph with
per-call-site keyword binding):

* ``knob-flow`` — a function that accepts a knob keyword (``backend``,
  ``weighted``, ``workers``, …) must forward it to every resolved callee
  whose signature also accepts it; a dropped knob silently reverts the
  callee to its default and the two call paths diverge.
* ``cache-version-key`` — a scope that stores into a Graph-indexed cache
  must read ``._version`` (the mutation fence), and literal cache-key
  tuples must include any ``backend``/``weighted`` knob the cached
  payload depends on.
* ``journal-hook`` — every structural graph mutation (``_adj`` writes,
  edge-counter updates) must bump ``self._version`` *and* record a delta
  in ``self._journal``; mutating another object's ``_adj`` from outside
  an owning class is flagged outright.
* ``suppression-stale`` — a ``disable=`` comment whose rule no longer
  fires on that line is itself a finding; exemptions must not outlive
  the code they excused.

Findings are suppressed inline with an audited reason::

    total = sum(values)  # repro-lint: disable=float-fold — sequential fold, order is pinned

Run ``repro lint`` or ``python -m repro.lint [paths...]``; the exit code
is non-zero on any unsuppressed finding.  ``--rules RULE[,RULE]`` filters
the run, ``--baseline FILE`` applies the committed ratchet (known
findings pass, new ones fail, stale entries shrink the file).  The
package is stdlib-only (no numpy import) so the checker runs identically
in the no-numpy CI leg.
"""

from __future__ import annotations

from repro.lint.baseline import (
    finding_entry,
    load_baseline,
    partition_against_baseline,
    save_baseline,
)
from repro.lint.engine import (
    LintReport,
    LintUsageError,
    iter_python_files,
    run_lint,
    select_rules,
)
from repro.lint.model import Finding, Rule, SourceFile, Suppression
from repro.lint.rules import all_rule_ids, default_rules
from repro.lint.semantics import Project, project_semantics

__all__ = [
    "Finding",
    "LintReport",
    "LintUsageError",
    "Project",
    "Rule",
    "SourceFile",
    "Suppression",
    "all_rule_ids",
    "default_rules",
    "finding_entry",
    "iter_python_files",
    "load_baseline",
    "partition_against_baseline",
    "project_semantics",
    "run_lint",
    "save_baseline",
    "select_rules",
]
