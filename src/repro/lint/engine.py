"""File collection and the lint run itself."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.lint.model import Finding, Rule, SourceFile
from repro.lint.rules import default_rules

#: Directory names never descended into when a directory is linted.
#: ``fixtures`` holds the deliberate-violation corpus for the lint tests
#: — those files are linted only when passed as explicit paths.
SKIP_DIR_NAMES = frozenset(
    {"__pycache__", ".git", ".venv", "fixtures", "node_modules", ".mypy_cache"}
)


class LintUsageError(Exception):
    """A problem with the lint invocation itself (e.g. a missing path)."""


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files: int = 0
    rules: List[Rule] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "rules": [
                {"id": rule.rule_id, "description": rule.description}
                for rule in self.rules
            ],
            "findings": [finding.to_dict() for finding in self.findings],
            "summary": {
                "files": self.files,
                "findings": len(self.findings),
                "suppressed": len(self.suppressed),
            },
        }


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files and directories into a sorted ``.py`` file list.

    Explicit file paths are always included (that is how the fixture
    corpus gets linted); directories are walked with ``SKIP_DIR_NAMES``
    pruned.  A path that does not exist raises :class:`LintUsageError`.
    """
    collected: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            collected.append(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d not in SKIP_DIR_NAMES)
                for name in sorted(files):
                    if name.endswith(".py"):
                        collected.append(os.path.join(root, name))
        else:
            raise LintUsageError(f"no such file or directory: {path!r}")
    # De-duplicate while keeping a deterministic order.
    unique: List[str] = []
    seen = set()
    for path in sorted(collected):
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def run_lint(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Lint ``paths`` and return the partitioned report.

    Meta findings (``parse-error``, ``bad-suppression``) are always
    active; rule findings whose line carries a matching
    ``# repro-lint: disable=`` comment land in ``report.suppressed``.
    """
    active_rules = list(default_rules() if rules is None else rules)
    known = {rule.rule_id for rule in active_rules}
    sources = [SourceFile.load(path, known) for path in iter_python_files(paths)]
    by_path = {source.path: source for source in sources}

    raw: List[Finding] = []
    for source in sources:
        raw.extend(source.meta_findings)
    for rule in active_rules:
        for source in sources:
            raw.extend(rule.check_file(source))
        raw.extend(rule.check_project(sources))

    report = LintReport(files=len(sources), rules=active_rules)
    for finding in sorted(raw, key=Finding.sort_key):
        source = by_path.get(finding.path)
        if source is not None and source.is_suppressed(finding):
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)
    return report
