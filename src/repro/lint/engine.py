"""File collection and the lint run itself.

The run pipeline: collect files → parse (suppressions included) → run
every per-file and whole-program rule (individually timed) → partition
findings by suppression, recording which suppression absorbed what → judge
suppression staleness against that record → apply the committed baseline
ratchet, splitting the remainder into *new* findings (fail CI) and
*baselined* ones (known, allowed, expected to shrink).
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.model import Finding, LintUsageError, Rule, SourceFile
from repro.lint.rules import all_rule_ids, default_rules
from repro.lint.rules.suppression_stale import SuppressionStaleRule

#: Directory names never descended into when a directory is linted.
#: ``fixtures`` holds the deliberate-violation corpus for the lint tests
#: — those files are linted only when passed as explicit paths.
SKIP_DIR_NAMES = frozenset(
    {"__pycache__", ".git", ".venv", "fixtures", "node_modules", ".mypy_cache"}
)


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    #: findings matched by the committed baseline ratchet: known, allowed,
    #: and expected to disappear as the old sites are fixed.
    baselined: List[Finding] = field(default_factory=list)
    #: baseline entries the current tree no longer produces — the ratchet
    #: file must shrink to match (``--fail-on-stale-baseline`` gates it).
    stale_baseline: List[Dict[str, str]] = field(default_factory=list)
    files: int = 0
    rules: List[Rule] = field(default_factory=list)
    #: wall-clock seconds per rule (check_file total + check_project), in
    #: registry order — the whole-program rules are the expensive ones,
    #: and ``--rules`` exists because of exactly this number.
    timings: "OrderedDict[str, float]" = field(default_factory=OrderedDict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "rules": [
                {"id": rule.rule_id, "description": rule.description}
                for rule in self.rules
            ],
            "findings": [finding.to_dict() for finding in self.findings],
            "baselined": [finding.to_dict() for finding in self.baselined],
            "stale_baseline": list(self.stale_baseline),
            "summary": {
                "files": self.files,
                "findings": len(self.findings),
                "suppressed": len(self.suppressed),
                "baselined": len(self.baselined),
                "stale_baseline": len(self.stale_baseline),
                "rule_timings": {
                    rule_id: round(seconds, 6)
                    for rule_id, seconds in self.timings.items()
                },
            },
        }


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files and directories into a sorted ``.py`` file list.

    Explicit file paths are always included (that is how the fixture
    corpus gets linted); directories are walked with ``SKIP_DIR_NAMES``
    pruned.  A path that does not exist raises :class:`LintUsageError`.
    """
    collected: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            collected.append(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d not in SKIP_DIR_NAMES)
                for name in sorted(files):
                    if name.endswith(".py"):
                        collected.append(os.path.join(root, name))
        else:
            raise LintUsageError(f"no such file or directory: {path!r}")
    # De-duplicate while keeping a deterministic order.
    unique: List[str] = []
    seen = set()
    for path in sorted(collected):
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def select_rules(names: Optional[Sequence[str]]) -> List[Rule]:
    """The shipped rules filtered to ``names`` (all of them for ``None``).

    Unknown names raise :class:`LintUsageError` listing the known IDs, so
    a typo'd ``--rules`` filter cannot silently lint nothing.
    """
    rules = default_rules()
    if names is None:
        return rules
    by_id = {rule.rule_id: rule for rule in rules}
    unknown = [name for name in names if name not in by_id]
    if unknown:
        raise LintUsageError(
            f"unknown rule(s) {', '.join(sorted(unknown))!s}; known rules: "
            + ", ".join(sorted(by_id))
        )
    wanted = set(names)
    return [rule for rule in rules if rule.rule_id in wanted]


def run_lint(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Sequence[Dict[str, str]]] = None,
) -> LintReport:
    """Lint ``paths`` and return the partitioned report.

    Meta findings (``parse-error``, ``bad-suppression``) are always
    active; rule findings whose line carries a matching
    ``# repro-lint: disable=`` comment land in ``report.suppressed``.
    Suppressions are parsed against the *full* shipped-rule registry even
    when ``rules`` is a filtered subset — a ``--rules knob-flow`` pass
    must not re-classify valid ``float-fold`` suppressions as unknown.
    With ``baseline`` (parsed entries of the committed ratchet file),
    known findings land in ``report.baselined`` and entries the tree no
    longer produces in ``report.stale_baseline``.
    """
    active_rules = list(default_rules() if rules is None else rules)
    known = set(all_rule_ids()) | {rule.rule_id for rule in active_rules}
    sources = [SourceFile.load(path, known) for path in iter_python_files(paths)]
    by_path = {source.path: source for source in sources}

    raw: List[Finding] = []
    for source in sources:
        raw.extend(source.meta_findings)
    stale_rule: Optional[SuppressionStaleRule] = None
    timings: "OrderedDict[str, float]" = OrderedDict()
    for rule in active_rules:
        if isinstance(rule, SuppressionStaleRule):
            # Judged after partitioning — it needs to know which
            # suppressions actually absorbed a finding.
            stale_rule = rule
            continue
        started = time.perf_counter()
        for source in sources:
            raw.extend(rule.check_file(source))
        raw.extend(rule.check_project(sources))
        timings[rule.rule_id] = (
            timings.get(rule.rule_id, 0.0) + time.perf_counter() - started
        )

    report = LintReport(files=len(sources), rules=active_rules)
    used: Set[Tuple[int, str]] = set()

    def partition(findings: Sequence[Finding]) -> None:
        for finding in sorted(findings, key=Finding.sort_key):
            source = by_path.get(finding.path)
            suppression = (
                source.is_suppressed(finding) if source is not None else None
            )
            if suppression is not None:
                used.add((id(suppression), finding.rule))
                report.suppressed.append(finding)
            else:
                report.findings.append(finding)

    partition(raw)

    if stale_rule is not None:
        judged = {
            rule.rule_id
            for rule in active_rules
            if not isinstance(rule, SuppressionStaleRule)
        }
        started = time.perf_counter()
        stale = stale_rule.stale_findings(sources, judged, used)
        timings[stale_rule.rule_id] = time.perf_counter() - started
        partition(stale)
        report.findings.sort(key=Finding.sort_key)
        report.suppressed.sort(key=Finding.sort_key)
    report.timings = timings

    if baseline is not None:
        from repro.lint.baseline import partition_against_baseline

        new, baselined, stale_entries = partition_against_baseline(
            report.findings, baseline
        )
        report.findings = new
        report.baselined = baselined
        report.stale_baseline = stale_entries
    return report
