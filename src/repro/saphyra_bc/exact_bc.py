"""``Exact_bc``: closed-form evaluation of the 2-hop exact subspace.

The exact subspace (Eq. 29) contains every PISP path of length 2 whose
middle node is a target.  For each target ``v`` its exact risk is

    l-hat_v = sum over ordered same-block pairs (s, t) with d(s, t) = 2
              and v a common neighbour of s and t of
              q_st / (sigma_st * gamma * eta)

and the subspace mass is

    lambda-hat = sum over the same pairs of
                 (#common neighbours in A / sigma_st) * q_st / (gamma * eta).

Both are computed in ``O(K)`` with ``K = sum_{v in B} deg(v)^2`` where ``B``
is the neighbourhood of the target set (Lemma 18): for each ``s in B`` a
two-level neighbour scan finds all distance-2 targets ``t`` together with
``sigma_st`` (the number of common neighbours) and the number of middles
that are targets.

The crucial property (Lemma 19): any target with non-zero betweenness has at
least one 2-hop shortest path through it, so ``l-hat_v > 0`` — the exact
subspace eliminates *false zeros*, which is what lifts the ranking quality
for low-centrality nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence

from repro.saphyra_bc.isp import PersonalizedISP

Node = Hashable


@dataclass
class ExactSubspaceEvaluation:
    """Output of ``Exact_bc``.

    Attributes
    ----------
    lambda_exact:
        ``lambda-hat`` — probability of the exact subspace under the PISP
        distribution.
    risks:
        ``l-hat_v`` per target, in target order (PISP units).
    num_pairs:
        Number of ordered distance-2 same-block pairs that contributed.
    work:
        Number of adjacency entries scanned (the ``K`` of Lemma 18).
    """

    lambda_exact: float
    risks: List[float]
    num_pairs: int
    work: int


def exact_two_hop_risks(
    space: PersonalizedISP, targets: Sequence[Node]
) -> ExactSubspaceEvaluation:
    """Run ``Exact_bc`` for ``targets`` on the personalized ISP space.

    ``targets`` must match ``space.targets`` (the same order is used for the
    returned risk vector).
    """
    graph = space.graph
    target_list = list(targets)
    target_index = {node: position for position, node in enumerate(target_list)}
    target_set = set(target_list)

    # B: all neighbours of target nodes (the only possible endpoints of a
    # 2-hop path whose middle is a target).
    boundary: Dict[Node, None] = {}
    for node in target_list:
        for neighbor in graph.neighbors(node):
            boundary[neighbor] = None

    reach_tables = space.bct.out_reach
    risks_units = [0.0] * len(target_list)
    lambda_units = 0.0
    num_pairs = 0
    work = 0

    for source in boundary:
        source_neighbors = set(graph.neighbors(source))
        # sigma2[t]: number of common neighbours of (source, t) == sigma_st
        # for distance-2 pairs; middles_in_a[t]: how many of them are targets.
        sigma2: Dict[Node, int] = {}
        middles_in_a: Dict[Node, int] = {}
        for middle in graph.neighbors(source):
            is_target_middle = middle in target_set
            for endpoint in graph.neighbors(middle):
                work += 1
                if endpoint == source or endpoint in source_neighbors:
                    continue
                sigma2[endpoint] = sigma2.get(endpoint, 0) + 1
                if is_target_middle:
                    middles_in_a[endpoint] = middles_in_a.get(endpoint, 0) + 1

        if not middles_in_a:
            continue

        # lambda-hat accumulation (one term per ordered pair with >= 1 target
        # middle), and per-target risk accumulation.
        pair_block: Dict[Node, int] = {}
        for endpoint, target_middles in middles_in_a.items():
            block = space.common_block(source, endpoint)
            if block is None:
                continue
            pair_block[endpoint] = block
            reach = reach_tables[block]
            weight = reach[source] * reach[endpoint]
            lambda_units += (target_middles / sigma2[endpoint]) * weight
            num_pairs += 1

        for middle in graph.neighbors(source):
            position = target_index.get(middle)
            if position is None:
                continue
            for endpoint in graph.neighbors(middle):
                if endpoint == source or endpoint in source_neighbors:
                    continue
                block = pair_block.get(endpoint)
                if block is None:
                    continue
                reach = reach_tables[block]
                weight = reach[source] * reach[endpoint]
                risks_units[position] += weight / sigma2[endpoint]

    scale = space.personalized_pair_weight
    if scale <= 0:
        return ExactSubspaceEvaluation(
            lambda_exact=0.0, risks=[0.0] * len(target_list), num_pairs=0, work=work
        )
    risks = [value / scale for value in risks_units]
    lambda_exact = min(1.0, lambda_units / scale)
    return ExactSubspaceEvaluation(
        lambda_exact=lambda_exact, risks=risks, num_pairs=num_pairs, work=work
    )
