"""The (personalized) intra-component shortest path sample space.

Section IV-A of the paper: shortest paths are broken at cutpoints into
pieces living inside one biconnected component.  The resulting *ISP*
distribution weighs an intra-component pair ``(s, t)`` of block ``C_i`` by

    q_st = r_i(s) * r_i(t) / (n (n - 1))

where ``r_i`` is the out-reach (how many original endpoints the piece
stands for).  The *personalized* space keeps only the blocks containing at
least one target node; its total mass relative to the ISP space is ``eta``.

This module wires the :class:`~repro.graphs.block_cut_tree.BlockCutTree`
bookkeeping into the quantities SaPHyRa_bc needs — ``gamma``, ``eta``,
``q_st``, block/source/target sampling tables — and, for small graphs,
exposes an exact enumeration of the space used by the correctness tests.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import GraphError
from repro.graphs.block_cut_tree import BlockCutTree, build_block_cut_tree
from repro.graphs.graph import Graph
from repro.graphs.traversal import shortest_path_dag
from repro.utils.rng import SeedLike, ensure_rng

Node = Hashable


@dataclass
class _BlockTable:
    """Per-block sampling table: nodes, out-reach values and prefix sums."""

    index: int
    nodes: List[Node]
    reach: List[int]
    cumulative_reach: List[int]
    position: Dict[Node, int]
    pair_weight: int


class PersonalizedISP:
    """The PISP sample space ``X_c^(A)`` for a graph and target set ``A``.

    Parameters
    ----------
    graph:
        A connected graph with at least 2 nodes.
    targets:
        The target node set ``A``; ``None`` means the full node set (the
        SaPHyRa_bc-full variant).
    block_cut_tree:
        Optionally a pre-built block-cut tree (to share between runs).
    backend:
        Traversal backend used by the samplers built on this space
        (``"dict"``, ``"csr"`` or ``None`` for the default).

    Attributes
    ----------
    gamma:
        ISP normaliser (Eq. 19).
    eta:
        Fraction of ISP mass kept by the personalization (Eq. 23).
    """

    def __init__(
        self,
        graph: Graph,
        targets: Optional[Sequence[Node]] = None,
        block_cut_tree: Optional[BlockCutTree] = None,
        *,
        backend: Optional[str] = None,
    ) -> None:
        if graph.number_of_nodes() < 2:
            raise GraphError("the ISP sample space needs at least 2 nodes")
        self.graph = graph
        self.backend = backend
        self.bct = block_cut_tree if block_cut_tree is not None else build_block_cut_tree(graph)
        self.n = graph.number_of_nodes()

        if targets is None:
            targets = list(graph.nodes())
        else:
            targets = list(targets)
            missing = [node for node in targets if not graph.has_node(node)]
            if missing:
                raise GraphError(f"target nodes not in graph: {missing[:5]!r}")
            if len(set(targets)) != len(targets):
                raise ValueError("target nodes must be unique")
            if not targets:
                raise ValueError("targets must not be empty")
        self.targets: List[Node] = targets
        self.target_set = set(targets)

        # I(A): blocks containing at least one target node.
        included = []
        for index in range(self.bct.num_blocks):
            if any(node in self.target_set for node in self.bct.block_nodes(index)):
                included.append(index)
        self.included_blocks: List[int] = included

        total_weight = self.bct.pair_weight_total()
        personalized_weight = sum(
            self.bct.block_pair_weight[index] for index in included
        )
        self.total_pair_weight = total_weight
        self.personalized_pair_weight = personalized_weight
        self.gamma = self.bct.gamma
        self.eta = personalized_weight / total_weight if total_weight > 0 else 0.0

        # Sampling tables, one per included block.
        self._tables: List[_BlockTable] = []
        self._block_cumulative: List[int] = []
        running = 0
        for index in included:
            nodes = list(self.bct.block_nodes(index))
            reach = [self.bct.out_reach[index][node] for node in nodes]
            cumulative = []
            acc = 0
            for value in reach:
                acc += value
                cumulative.append(acc)
            table = _BlockTable(
                index=index,
                nodes=nodes,
                reach=reach,
                cumulative_reach=cumulative,
                position={node: pos for pos, node in enumerate(nodes)},
                pair_weight=self.bct.block_pair_weight[index],
            )
            self._tables.append(table)
            running += table.pair_weight
            self._block_cumulative.append(running)

    # ------------------------------------------------------------------
    # Scalars
    # ------------------------------------------------------------------
    @property
    def gamma_eta(self) -> float:
        """``gamma * eta`` — the scale between PISP risks and betweenness."""
        if self.n < 2:
            return 0.0
        return self.personalized_pair_weight / (self.n * (self.n - 1))

    def bc_a(self, node: Node) -> float:
        """Cutpoint correction ``bc_a(node)`` (0 for non-cutpoints)."""
        return self.bct.bc_a.get(node, 0.0)

    def pair_weight(self, block_index: int, source: Node, target: Node) -> float:
        """Return ``q_st * n(n-1) = r_i(s) r_i(t)`` for a same-block pair."""
        reach = self.bct.out_reach[block_index]
        return reach[source] * reach[target]

    def common_block(self, u: Node, v: Node) -> Optional[int]:
        """Return the index of the unique block containing both nodes, if any."""
        blocks_u = self.bct.blocks_of(u)
        blocks_v = self.bct.blocks_of(v)
        if not blocks_u or not blocks_v:
            return None
        if len(blocks_u) > len(blocks_v):
            blocks_u, blocks_v = blocks_v, blocks_u
        other = set(blocks_v)
        for index in blocks_u:
            if index in other:
                return index
        return None

    # ------------------------------------------------------------------
    # Sampling of (block, source, target)
    # ------------------------------------------------------------------
    def sample_pair(self, rng: SeedLike = None) -> Tuple[int, Node, Node]:
        """Sample ``(block index, s, t)`` following the multistage scheme of
        ``Gen_bc`` (Algorithm 2, steps 1-3)."""
        if not self._tables:
            raise GraphError("the personalized sample space is empty")
        rng = ensure_rng(rng)
        threshold = rng.random() * self._block_cumulative[-1]
        table_pos = bisect.bisect_right(self._block_cumulative, threshold)
        table_pos = min(table_pos, len(self._tables) - 1)
        table = self._tables[table_pos]

        source = self._sample_source(table, rng)
        target = self._sample_target(table, source, rng)
        return table.index, source, target

    def _sample_source(self, table: _BlockTable, rng) -> Node:
        """Pick ``s`` with probability ``r_i(s) (n - r_i(s)) / W_i``."""
        # Inverse-CDF over the weights r_i(s)(n - r_i(s)); the prefix sums of
        # those weights are not precomputed (they change with n only), so we
        # compute them lazily once per table.
        if not hasattr(table, "_source_cumulative"):
            weights = [r * (self.n - r) for r in table.reach]
            cumulative = []
            acc = 0
            for value in weights:
                acc += value
                cumulative.append(acc)
            table._source_cumulative = cumulative  # type: ignore[attr-defined]
        cumulative = table._source_cumulative  # type: ignore[attr-defined]
        threshold = rng.random() * cumulative[-1]
        position = bisect.bisect_right(cumulative, threshold)
        position = min(position, len(table.nodes) - 1)
        return table.nodes[position]

    def _sample_target(self, table: _BlockTable, source: Node, rng) -> Node:
        """Pick ``t != s`` with probability ``r_i(t) / (n - r_i(s))``.

        Note the denominator: ``sum_{t in C_i, t != s} r_i(t) = n - r_i(s)``
        by Eq. 18, so this is a proper distribution over ``C_i \\ {s}``.
        """
        source_position = table.position[source]
        source_reach = table.reach[source_position]
        total = table.cumulative_reach[-1]  # equals n by Eq. 18
        threshold = rng.random() * (total - source_reach)
        start_of_source = table.cumulative_reach[source_position] - source_reach
        if threshold >= start_of_source:
            threshold += source_reach
        position = bisect.bisect_right(table.cumulative_reach, threshold)
        position = min(position, len(table.nodes) - 1)
        if position == source_position:
            # Numerical edge: land just past the source segment.
            position = position + 1 if position + 1 < len(table.nodes) else position - 1
        return table.nodes[position]

    # ------------------------------------------------------------------
    # Exact enumeration (small graphs / tests)
    # ------------------------------------------------------------------
    def enumerate_paths(self) -> Iterator[Tuple[List[Node], float]]:
        """Yield every PISP path with its probability under ``D_c^(A)``.

        Exponential in the worst case; intended for graphs with at most a few
        hundred nodes (tests, examples and the enumerated-space ablation).
        """
        scale = self.personalized_pair_weight
        if scale <= 0:
            return
        for table in self._tables:
            block_graph = self.bct.block_subgraph(table.index)
            reach = self.bct.out_reach[table.index]
            for source in table.nodes:
                dag = shortest_path_dag(block_graph, source, backend=self.backend)
                for target in table.nodes:
                    if target == source or target not in dag.distances:
                        continue
                    sigma = dag.sigma[target]
                    probability = reach[source] * reach[target] / (scale * sigma)
                    for path in _enumerate_dag_paths(dag, target):
                        yield path, probability


def _enumerate_dag_paths(dag, target: Node) -> Iterator[List[Node]]:
    """Enumerate all shortest paths ``source -> target`` in a BFS DAG."""
    if target == dag.source:
        yield [dag.source]
        return
    for predecessor in dag.predecessors[target]:
        for prefix in _enumerate_dag_paths(dag, predecessor):
            yield prefix + [target]
