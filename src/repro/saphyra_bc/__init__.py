"""SaPHyRa_bc: ranking node subsets by betweenness centrality (Section IV).

The pipeline is:

1. decompose the graph into biconnected components and build the block-cut
   tree with out-reach sets (:mod:`repro.graphs.block_cut_tree`);
2. build the personalized intra-component shortest path (PISP) sample space
   for the target nodes ``A`` (:mod:`repro.saphyra_bc.isp`);
3. evaluate the exact subspace — every 2-hop shortest path through a target
   node — in closed form (:mod:`repro.saphyra_bc.exact_bc`);
4. sample the approximate subspace with the multistage + rejection sampler
   ``Gen_bc`` (:mod:`repro.saphyra_bc.gen_bc`), bounding the sample budget
   with the personalized VC dimension (:mod:`repro.saphyra_bc.vc_bounds`);
5. combine everything into betweenness estimates with the cutpoint
   correction ``bc_a`` (:mod:`repro.saphyra_bc.algorithm`).
"""

from __future__ import annotations

from repro.saphyra_bc.algorithm import BCRankingResult, SaPHyRaBC
from repro.saphyra_bc.exact_bc import ExactSubspaceEvaluation, exact_two_hop_risks
from repro.saphyra_bc.gen_bc import GenBC
from repro.saphyra_bc.isp import PersonalizedISP
from repro.saphyra_bc.vc_bounds import (
    VCBoundReport,
    personalized_vc_dimension,
    vc_bound_report,
    vc_from_hop_diameter,
)

__all__ = [
    "SaPHyRaBC",
    "BCRankingResult",
    "PersonalizedISP",
    "exact_two_hop_risks",
    "ExactSubspaceEvaluation",
    "GenBC",
    "personalized_vc_dimension",
    "vc_from_hop_diameter",
    "vc_bound_report",
    "VCBoundReport",
]
