"""The SaPHyRa_bc algorithm (Section IV-D of the paper).

``SaPHyRaBC.rank(graph, targets)`` produces an ``(epsilon, delta)``-accurate
betweenness estimate for every target node together with the induced
ranking.  The pieces:

* block-cut tree + out-reach sets (``O(n + m)`` preprocessing);
* personalized ISP sample space with its scale factor ``gamma * eta``;
* ``Exact_bc`` for the 2-hop exact subspace (``O(K)``);
* ``Gen_bc`` + the adaptive empirical-Bernstein sampler with the
  personalized VC cap for the approximate subspace;
* the cutpoint correction ``bc_a`` added back at the end:
  ``bc~(v) = bc_a(v) + gamma * eta * l_v`` (Lemma 16).

Note on the accuracy target: since the framework estimate ``l_v`` is scaled
by ``gamma * eta`` when converted to betweenness, the accuracy requested from
the framework is ``epsilon / (gamma * eta)`` so the final betweenness error
is below ``epsilon`` (Theorem 24).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence

from repro.core.estimation import ExactEvaluation, SaPHyRaResult
from repro.core.ranking import rank_scores
from repro.core.saphyra import SaPHyRa
from repro.errors import GraphError
from repro.graphs.block_cut_tree import BlockCutTree, build_block_cut_tree
from repro.graphs.components import is_connected
from repro.graphs.graph import Graph
from repro.saphyra_bc.exact_bc import ExactSubspaceEvaluation, exact_two_hop_risks
from repro.saphyra_bc.gen_bc import GenBC
from repro.saphyra_bc.isp import PersonalizedISP
from repro.saphyra_bc.vc_bounds import personalized_vc_dimension
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.timing import StageTimings
from repro.utils.validation import check_probability_pair

Node = Hashable


@dataclass
class BCRankingResult:
    """Betweenness estimates and ranking for the target nodes.

    Attributes
    ----------
    targets:
        The target nodes, in input order.
    scores:
        ``{node: estimated betweenness}`` (normalised by ``n(n-1)``).
    ranking:
        Targets sorted by decreasing estimated betweenness (ties by id).
    gamma, eta:
        ISP normaliser and personalization fraction.
    lambda_exact:
        Mass of the 2-hop exact subspace within the PISP space.
    vc_dimension:
        Personalized VC bound used for the sample cap.
    num_samples:
        Samples drawn from the approximate subspace (excluding the pilot).
    num_pilot_samples:
        Pilot samples used for variance estimation.
    converged_by:
        ``"bernstein"``, ``"vc"`` or ``"exact"``.
    epsilon, delta:
        Requested guarantee on the betweenness values.
    wall_time_seconds, stage_seconds:
        Timing breakdown (preprocess / exact / sampling).
    framework:
        The underlying :class:`~repro.core.estimation.SaPHyRaResult`
        (risks in PISP units), or ``None`` for degenerate inputs.
    exact_work:
        Adjacency entries scanned by ``Exact_bc`` (the ``K`` of Lemma 18).
    rejections:
        Rejected samples in ``Gen_bc``.
    """

    targets: List[Node]
    scores: Dict[Node, float]
    ranking: List[Node]
    gamma: float
    eta: float
    lambda_exact: float
    vc_dimension: float
    num_samples: int
    num_pilot_samples: int
    converged_by: str
    epsilon: float
    delta: float
    wall_time_seconds: float = 0.0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    framework: Optional[SaPHyRaResult] = None
    exact_work: int = 0
    rejections: int = 0

    def __len__(self) -> int:
        return len(self.targets)


class _BCProblem:
    """Adapter exposing the PISP machinery as a hypothesis-ranking problem."""

    def __init__(
        self,
        space: PersonalizedISP,
        generator: GenBC,
        exact: ExactSubspaceEvaluation,
        vc_dimension: float,
    ) -> None:
        self._space = space
        self._generator = generator
        self._exact = exact
        self._vc_dimension = vc_dimension

    @property
    def hypothesis_names(self) -> Sequence[Node]:
        return self._space.targets

    def exact_evaluation(self) -> ExactEvaluation:
        return ExactEvaluation(
            lambda_exact=self._exact.lambda_exact, risks=list(self._exact.risks)
        )

    def sample_losses(self, rng: SeedLike = None) -> Mapping[int, float]:
        return self._generator.sample_losses(rng)

    def collect_sample_stats(self):
        """Detach this copy's sampling counters (worker side of the
        stats round-trip the adaptive sampler runs per chunk)."""
        return self._generator.take_stats()

    def merge_sample_stats(self, stats) -> None:
        """Fold a chunk's counters back in (master side)."""
        self._generator.stats.merge(stats)

    def vc_dimension(self) -> float:
        return self._vc_dimension


class SaPHyRaBC:
    """Rank a node subset by betweenness centrality with SaPHyRa_bc.

    Parameters
    ----------
    epsilon:
        Additive accuracy target for the betweenness values (default 0.05,
        the paper's default).
    delta:
        Failure probability (default 0.01).
    seed:
        Seed or RNG for the sampling stage.
    sample_constant:
        Constant ``c`` of the sample-size formulas.
    max_samples_cap:
        Optional hard cap on the number of approximate-subspace samples.
    use_exact_subspace:
        Disable to run the pure-sampling ablation (no 2-hop exact subspace).
    backend:
        Traversal backend (``"dict"``, ``"csr"`` or ``None`` for the
        default); both draw identical samples from identical seeds.
    workers:
        Worker processes for the sampling stage (``None`` resolves via
        ``REPRO_WORKERS``).  Sampling uses per-chunk seeded RNG streams
        folded in chunk order, so any worker count returns bit-identical
        rankings.

    Examples
    --------
    >>> from repro.graphs.generators import barbell_graph
    >>> graph = barbell_graph(5, 3)
    >>> algo = SaPHyRaBC(epsilon=0.1, delta=0.1, seed=3)
    >>> result = algo.rank(graph, targets=list(graph.nodes())[:6])
    >>> len(result.ranking)
    6
    """

    def __init__(
        self,
        epsilon: float = 0.05,
        delta: float = 0.01,
        *,
        seed: SeedLike = None,
        sample_constant: float = 0.5,
        max_samples_cap: Optional[int] = None,
        use_exact_subspace: bool = True,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> None:
        check_probability_pair(epsilon, delta)
        self.epsilon = epsilon
        self.delta = delta
        self.seed = seed
        self.sample_constant = sample_constant
        self.max_samples_cap = max_samples_cap
        self.use_exact_subspace = use_exact_subspace
        self.backend = backend
        self.workers = workers

    # ------------------------------------------------------------------
    def rank(
        self,
        graph: Graph,
        targets: Optional[Sequence[Node]] = None,
        *,
        block_cut_tree: Optional[BlockCutTree] = None,
    ) -> BCRankingResult:
        """Estimate betweenness for ``targets`` and rank them.

        Parameters
        ----------
        graph:
            A connected, undirected graph with at least 3 nodes.
        targets:
            The nodes to rank; ``None`` ranks every node
            (the SaPHyRa_bc-full variant of the paper's experiments).
        block_cut_tree:
            A pre-built block-cut tree, reused across runs on the same graph
            (the experiment harness passes this to avoid repeating the
            ``O(n + m)`` preprocessing for every epsilon value).
        """
        self._validate_graph(graph)
        target_list = list(targets) if targets is not None else list(graph.nodes())
        if not target_list:
            raise ValueError("targets must not be empty")

        rng = ensure_rng(self.seed)
        timings = StageTimings()

        with timings.measure("preprocess"):
            bct = (
                block_cut_tree
                if block_cut_tree is not None
                else build_block_cut_tree(graph)
            )
            space = PersonalizedISP(
                graph, target_list, block_cut_tree=bct, backend=self.backend
            )
            vc_dimension = personalized_vc_dimension(
                bct, target_list, included_blocks=space.included_blocks, seed=rng
            )

        gamma_eta = space.gamma_eta
        if gamma_eta <= 0:
            # No block contains a target (only possible in degenerate graphs);
            # every target's ISP risk is zero and bc reduces to bc_a.
            scores = {node: space.bc_a(node) for node in target_list}
            return BCRankingResult(
                targets=target_list,
                scores=scores,
                ranking=rank_scores(scores),
                gamma=space.gamma,
                eta=space.eta,
                lambda_exact=0.0,
                vc_dimension=0.0,
                num_samples=0,
                num_pilot_samples=0,
                converged_by="exact",
                epsilon=self.epsilon,
                delta=self.delta,
                wall_time_seconds=timings.total(),
                stage_seconds=dict(timings.stages),
            )

        with timings.measure("exact"):
            if self.use_exact_subspace:
                exact = exact_two_hop_risks(space, target_list)
            else:
                exact = ExactSubspaceEvaluation(
                    lambda_exact=0.0,
                    risks=[0.0] * len(target_list),
                    num_pairs=0,
                    work=0,
                )

        # Ablation mode (no exact subspace): nothing is ever rejected.
        generator = GenBC(
            space, target_list, reject_exact_subspace=self.use_exact_subspace
        )
        problem = _BCProblem(space, generator, exact, vc_dimension)

        # The framework estimates risks in PISP units; converting to
        # betweenness multiplies by gamma * eta, so the accuracy requested
        # from the framework is epsilon / (gamma * eta), clamped into (0, 1).
        epsilon_star = min(0.999, self.epsilon / gamma_eta)
        orchestrator = SaPHyRa(
            epsilon_star,
            self.delta,
            seed=rng,
            sample_constant=self.sample_constant,
            max_samples_cap=self.max_samples_cap,
            workers=self.workers,
        )
        with timings.measure("sampling"):
            framework_result = orchestrator.rank(problem)

        scores: Dict[Node, float] = {}
        for node, risk in zip(framework_result.names, framework_result.risks):
            scores[node] = space.bc_a(node) + gamma_eta * risk

        return BCRankingResult(
            targets=target_list,
            scores=scores,
            ranking=rank_scores(scores),
            gamma=space.gamma,
            eta=space.eta,
            lambda_exact=framework_result.lambda_exact,
            vc_dimension=vc_dimension,
            num_samples=framework_result.num_samples,
            num_pilot_samples=framework_result.num_pilot_samples,
            converged_by=framework_result.converged_by,
            epsilon=self.epsilon,
            delta=self.delta,
            wall_time_seconds=timings.total(),
            stage_seconds=dict(timings.stages),
            framework=framework_result,
            exact_work=exact.work,
            rejections=generator.stats.rejections,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _validate_graph(graph: Graph) -> None:
        if graph.number_of_nodes() < 3:
            raise GraphError(
                "SaPHyRa_bc needs at least 3 nodes "
                f"(got {graph.number_of_nodes()})"
            )
        if not is_connected(graph):
            raise GraphError(
                "SaPHyRa_bc requires a connected graph; "
                "extract the largest connected component first"
            )
