"""Personalized VC-dimension bounds (Corollary 22, Lemma 23, Table I).

The sample-size cap of the adaptive sampler is ``c/eps^2 (VC + ln 1/delta)``;
the smaller the VC bound, the fewer samples are ever needed.  The paper
derives three progressively tighter bounds on ``pi_max`` (the maximum number
of target nodes that can be inner nodes of one sampled path):

* the Riondato–Kornaropoulos bound uses the graph diameter ``VD(V)``:
  a shortest path has at most ``VD(V) - 1`` inner nodes;
* bi-component sampling replaces it with the largest *block* diameter
  ``BD(V)``, because a PISP path never leaves its block;
* personalization replaces it with ``BS(A)``, the largest number of target
  nodes on one PISP path, bounded per block by
  ``min(VD(C_i) - 1, VD(A ∩ C_i) + 1, |A ∩ C_i|)``.

All diameters here are hop counts; upper-bound estimates (``2 * ecc``) are
used so the resulting VC values remain valid upper bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence

from repro.graphs.block_cut_tree import BlockCutTree
from repro.graphs.diameter import (
    estimate_diameter,
    estimate_subset_diameter,
    exact_diameter,
    exact_subset_diameter,
)
from repro.graphs.graph import Graph
from repro.stats.vc import pi_max_vc_bound
from repro.utils.rng import SeedLike, ensure_rng

Node = Hashable

#: Blocks with at most this many nodes get their diameter computed exactly.
_EXACT_DIAMETER_THRESHOLD = 300


def vc_from_hop_diameter(hop_diameter: int) -> int:
    """VC bound from a hop diameter: a path of ``d`` hops has ``d - 1`` inner
    nodes, so ``VC <= floor(log2(d - 1)) + 1`` (0 when ``d <= 1``)."""
    return pi_max_vc_bound(max(0, hop_diameter - 1))


def block_diameter_bound(
    bct: BlockCutTree, block_index: int, seed: SeedLike = None
) -> int:
    """Upper bound on the hop diameter of one block."""
    block = bct.block_subgraph(block_index)
    if block.number_of_nodes() <= _EXACT_DIAMETER_THRESHOLD:
        return exact_diameter(block)
    return estimate_diameter(block, seed)


def max_block_diameter(bct: BlockCutTree, seed: SeedLike = None) -> int:
    """``BD(V)``: the largest hop diameter over all blocks (upper bound)."""
    rng = ensure_rng(seed)
    best = 0
    for index in range(bct.num_blocks):
        bound = block_diameter_bound(bct, index, rng)
        if bound > best:
            best = bound
    return best


def bs_bound(
    bct: BlockCutTree,
    targets: Sequence[Node],
    *,
    included_blocks: Optional[Sequence[int]] = None,
    seed: SeedLike = None,
) -> int:
    """Upper bound on ``BS(A)`` — the maximum number of targets that are
    inner nodes of one PISP path (Lemma 23).

    Per block ``C_i`` containing targets::

        BS_i <= min(VD(C_i) - 1, VD(A ∩ C_i) + 1, |A ∩ C_i|)

    and ``BS(A) <= max_i BS_i``.
    """
    rng = ensure_rng(seed)
    target_set = set(targets)
    if included_blocks is None:
        included_blocks = [
            index
            for index in range(bct.num_blocks)
            if any(node in target_set for node in bct.block_nodes(index))
        ]
    best = 0
    for index in included_blocks:
        block_nodes = bct.block_nodes(index)
        members = [node for node in block_nodes if node in target_set]
        if not members:
            continue
        block = bct.block_subgraph(index)
        block_diameter = block_diameter_bound(bct, index, rng)
        if len(members) <= _EXACT_DIAMETER_THRESHOLD:
            subset_diameter = exact_subset_diameter(block, members)
        else:
            subset_diameter = estimate_subset_diameter(block, members, rng)
        candidate = min(block_diameter - 1, subset_diameter + 1, len(members))
        candidate = max(0, candidate)
        if candidate > best:
            best = candidate
    return best


def personalized_vc_dimension(
    bct: BlockCutTree,
    targets: Sequence[Node],
    *,
    included_blocks: Optional[Sequence[int]] = None,
    seed: SeedLike = None,
) -> int:
    """``VC(H_c^(A)) <= floor(log2(BS(A))) + 1`` (Corollary 22)."""
    bound = bs_bound(bct, targets, included_blocks=included_blocks, seed=seed)
    return pi_max_vc_bound(bound)


@dataclass
class VCBoundReport:
    """The Table I comparison for one graph / target subset.

    Attributes
    ----------
    vertex_diameter:
        ``VD(V)`` upper bound (hops).
    max_block_diameter:
        ``BD(V)`` upper bound (hops).
    bs_value:
        ``BS(A)`` upper bound.
    riondato_vc:
        The diameter-based VC bound used by Riondato–Kornaropoulos / ABRA.
    bicomponent_vc:
        The block-diameter VC bound (SaPHyRa_bc on the full network).
    personalized_vc:
        The subset-aware VC bound (SaPHyRa_bc on ``A``).
    """

    vertex_diameter: int
    max_block_diameter: int
    bs_value: int
    riondato_vc: int
    bicomponent_vc: int
    personalized_vc: int

    def as_dict(self) -> Dict[str, int]:
        """Return the report as a plain dictionary (for table rendering)."""
        return {
            "VD(V)": self.vertex_diameter,
            "BD(V)": self.max_block_diameter,
            "BS(A)": self.bs_value,
            "VC Riondato et al.": self.riondato_vc,
            "VC SaPHyRa (full)": self.bicomponent_vc,
            "VC SaPHyRa (subset)": self.personalized_vc,
        }


def vc_bound_report(
    graph: Graph,
    bct: BlockCutTree,
    targets: Sequence[Node],
    seed: SeedLike = None,
) -> VCBoundReport:
    """Compute every column of the Table I comparison for one instance."""
    rng = ensure_rng(seed)
    if graph.number_of_nodes() <= _EXACT_DIAMETER_THRESHOLD:
        vertex_diameter = exact_diameter(graph)
    else:
        vertex_diameter = estimate_diameter(graph, rng)
    block_diameter = max_block_diameter(bct, rng)
    bs_value = bs_bound(bct, targets, seed=rng)
    return VCBoundReport(
        vertex_diameter=vertex_diameter,
        max_block_diameter=block_diameter,
        bs_value=bs_value,
        riondato_vc=vc_from_hop_diameter(vertex_diameter),
        bicomponent_vc=vc_from_hop_diameter(block_diameter),
        personalized_vc=pi_max_vc_bound(bs_value),
    )
