"""``Gen_bc``: sampling shortest paths from the approximate subspace.

Algorithm 2 of the paper — multistage sampling followed by rejection:

1. pick a block ``C_i`` (among the blocks containing a target) with
   probability proportional to its pair weight ``W_i``;
2. pick a source ``s in C_i`` with probability ``r_i(s)(n - r_i(s)) / W_i``;
3. pick a target ``t in C_i \\ {s}`` with probability ``r_i(t)/(n - r_i(s))``;
4. pick a uniformly random shortest ``s``–``t`` path with a balanced
   bidirectional BFS (inside the block, where the path is guaranteed to
   stay);
5. reject and retry if the path lies in the exact subspace (length 2 with a
   target middle node).

The accepted paths are distributed exactly as ``D-tilde_c^(A)`` (Lemma 20).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Set

from repro.errors import SamplingError
from repro.graphs.bidirectional import bidirectional_shortest_paths
from repro.saphyra_bc.isp import PersonalizedISP
from repro.utils.rng import SeedLike, ensure_rng

Node = Hashable


@dataclass
class GenBCStatistics:
    """Counters describing the sampler's behaviour (used by diagnostics)."""

    samples_returned: int = 0
    rejections: int = 0
    pairs_drawn: int = 0
    visited_edges: int = 0
    path_length_histogram: Dict[int, int] = field(default_factory=dict)

    def merge(self, other: "GenBCStatistics") -> None:
        """Fold another statistics snapshot (e.g. from a worker) into this one."""
        self.samples_returned += other.samples_returned
        self.rejections += other.rejections
        self.pairs_drawn += other.pairs_drawn
        self.visited_edges += other.visited_edges
        for length, count in other.path_length_histogram.items():
            self.path_length_histogram[length] = (
                self.path_length_histogram.get(length, 0) + count
            )


class GenBC:
    """Sampler over the approximate PISP subspace.

    Parameters
    ----------
    space:
        The personalized ISP sample space.
    targets:
        The target nodes (defines both the rejection test and the sparse
        losses returned by :meth:`sample_losses`).
    max_rejections:
        Safety valve: the number of consecutive rejections after which
        :class:`~repro.errors.SamplingError` is raised (the exact subspace
        would have to cover essentially the whole space for this to happen).
    backend:
        Traversal backend for the in-block bidirectional searches; defaults
        to the sample space's backend.
    reject_exact_subspace:
        Disable to keep length-2 target-middle paths (the pure-sampling
        ablation of SaPHyRa_bc); a constructor flag rather than a patched
        method so the sampler stays picklable for worker processes.
    """

    def __init__(
        self,
        space: PersonalizedISP,
        targets: Sequence[Node],
        *,
        max_rejections: int = 100_000,
        backend: Optional[str] = None,
        reject_exact_subspace: bool = True,
    ) -> None:
        self.space = space
        self.backend = backend if backend is not None else space.backend
        self.targets = list(targets)
        self.target_set: Set[Node] = set(self.targets)
        self._target_index = {
            node: position for position, node in enumerate(self.targets)
        }
        self.max_rejections = max_rejections
        self.reject_exact_subspace = reject_exact_subspace
        self.stats = GenBCStatistics()

    # ------------------------------------------------------------------
    def sample_path(self, rng: SeedLike = None) -> List[Node]:
        """Draw one shortest path from ``D-tilde_c^(A)``."""
        rng = ensure_rng(rng)
        rejections = 0
        while True:
            block_index, source, target = self.space.sample_pair(rng)
            self.stats.pairs_drawn += 1
            block_graph = self.space.bct.block_subgraph(block_index)
            result = bidirectional_shortest_paths(
                block_graph, source, target, backend=self.backend
            )
            self.stats.visited_edges += result.visited_edges
            if not result.connected:  # pragma: no cover - blocks are connected
                raise SamplingError(
                    f"nodes {source!r} and {target!r} are disconnected inside "
                    f"block {block_index}; the decomposition is inconsistent"
                )
            path = result.sample_path(rng)
            if self._in_exact_subspace(path):
                rejections += 1
                self.stats.rejections += 1
                if rejections > self.max_rejections:
                    raise SamplingError(
                        "rejection sampling exceeded "
                        f"{self.max_rejections} consecutive rejections; "
                        "the approximate subspace is (nearly) empty"
                    )
                continue
            self.stats.samples_returned += 1
            length = len(path) - 1
            self.stats.path_length_histogram[length] = (
                self.stats.path_length_histogram.get(length, 0) + 1
            )
            return path

    def sample_losses(self, rng: SeedLike = None) -> Dict[int, float]:
        """Draw one path and return the sparse losses of the target hypotheses.

        The loss of ``h_v`` is 1 iff ``v`` is an inner node of the path.
        """
        path = self.sample_path(rng)
        losses: Dict[int, float] = {}
        for node in path[1:-1]:
            position = self._target_index.get(node)
            if position is not None:
                losses[position] = 1.0
        return losses

    # ------------------------------------------------------------------
    def _in_exact_subspace(self, path: List[Node]) -> bool:
        """True iff the path has length 2 and its middle node is a target."""
        if not self.reject_exact_subspace:
            return False
        return len(path) == 3 and path[1] in self.target_set

    def acceptance_rate(self) -> Optional[float]:
        """Fraction of drawn pairs that produced an accepted sample."""
        if self.stats.pairs_drawn == 0:
            return None
        return self.stats.samples_returned / self.stats.pairs_drawn

    def take_stats(self) -> GenBCStatistics:
        """Detach and return the counters accumulated since the last call.

        Worker processes snapshot their local copy's counters per chunk this
        way; the master folds the snapshots back with
        :meth:`GenBCStatistics.merge`, so diagnostics match serial runs for
        any worker count.
        """
        stats = self.stats
        self.stats = GenBCStatistics()
        return stats
