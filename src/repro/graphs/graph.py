"""An undirected, unweighted simple graph tuned for sampling algorithms.

Design notes
------------
* Nodes may be any hashable objects; the synthetic generators use ``int``
  node ids ``0..n-1``.
* Adjacency is stored as ``dict[node, dict[node, None]]``: insertion ordered
  (deterministic iteration, which matters for reproducible sampling), with
  O(1) membership tests and O(deg) neighbour iteration.
* The graph is *simple*: self loops and parallel edges are rejected /
  collapsed.  The paper treats all evaluation networks as undirected and
  unweighted, so direction and weights are intentionally unsupported.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.errors import GraphError

Node = Hashable
Edge = Tuple[Node, Node]


class Graph:
    """An undirected, unweighted simple graph.

    Examples
    --------
    >>> g = Graph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
    >>> g.number_of_nodes(), g.number_of_edges()
    (4, 4)
    >>> sorted(g.neighbors(2))
    [0, 1, 3]
    >>> g.degree(2)
    3
    """

    __slots__ = ("_adj", "_num_edges", "_version", "__weakref__")

    def __init__(self) -> None:
        self._adj: Dict[Node, Dict[Node, None]] = {}
        self._num_edges: int = 0
        # Monotonic mutation counter; lets derived representations (the CSR
        # backend cache in :mod:`repro.graphs.csr`) detect staleness cheaply.
        self._version: int = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, edges: Iterable[Edge], nodes: Optional[Iterable[Node]] = None
    ) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` pairs.

        Parameters
        ----------
        edges:
            Edge pairs.  Duplicate edges are collapsed; self loops raise
            :class:`~repro.errors.GraphError`.
        nodes:
            Optional extra nodes to add (possibly isolated).
        """
        graph = cls()
        if nodes is not None:
            for node in nodes:
                graph.add_node(node)
        for u, v in edges:
            graph.add_edge(u, v)
        return graph

    def add_node(self, node: Node) -> None:
        """Add ``node`` if not already present."""
        if node not in self._adj:
            self._adj[node] = {}
            self._version += 1

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed.

        Raises
        ------
        GraphError
            If ``u == v`` (self loops are not allowed in a simple graph).
        """
        if u == v:
            raise GraphError(f"self loops are not allowed (node {u!r})")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adj[u]:
            self._adj[u][v] = None
            self._adj[v][u] = None
            self._num_edges += 1
            self._version += 1

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``{u, v}``.

        Raises
        ------
        GraphError
            If the edge does not exist.
        """
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1
        self._version += 1

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges.

        Raises
        ------
        GraphError
            If the node does not exist.
        """
        if node not in self._adj:
            raise GraphError(f"node {node!r} does not exist")
        for neighbor in list(self._adj[node]):
            del self._adj[neighbor][node]
            self._num_edges -= 1
        del self._adj[node]
        self._version += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def has_node(self, node: Node) -> bool:
        """Return ``True`` if ``node`` is in the graph."""
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return ``True`` if the undirected edge ``{u, v}`` exists."""
        return u in self._adj and v in self._adj[u]

    def neighbors(self, node: Node) -> Iterable[Node]:
        """Return an iterable view over the neighbours of ``node``.

        Raises
        ------
        GraphError
            If the node does not exist.
        """
        try:
            return self._adj[node].keys()
        except KeyError:
            raise GraphError(f"node {node!r} does not exist") from None

    def degree(self, node: Node) -> int:
        """Return the degree of ``node``."""
        try:
            return len(self._adj[node])
        except KeyError:
            raise GraphError(f"node {node!r} does not exist") from None

    def number_of_nodes(self) -> int:
        """Return ``|V|``."""
        return len(self._adj)

    def number_of_edges(self) -> int:
        """Return ``|E|`` (each undirected edge counted once)."""
        return self._num_edges

    def nodes(self) -> Iterator[Node]:
        """Iterate over the nodes in insertion order."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once as ``(u, v)``."""
        seen = set()
        for u, nbrs in self._adj.items():
            seen.add(u)
            for v in nbrs:
                if v not in seen:
                    yield (u, v)

    def adjacency(self) -> Dict[Node, List[Node]]:
        """Return a plain ``dict`` mapping each node to a neighbour list."""
        return {node: list(nbrs) for node, nbrs in self._adj.items()}

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Return a deep copy of the graph structure."""
        clone = Graph()
        for node, nbrs in self._adj.items():
            clone._adj[node] = dict(nbrs)
        clone._num_edges = self._num_edges
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Return the induced subgraph on ``nodes``.

        Nodes not present in the graph are ignored.  The subgraph's nodes are
        created in the iteration order of ``nodes`` (first occurrence wins),
        so callers passing a deterministic sequence get a deterministic,
        insertion-ordered subgraph — which reproducible sampling relies on.
        """
        keep = dict.fromkeys(node for node in nodes if node in self._adj)
        sub = Graph()
        for node in keep:
            sub.add_node(node)
        for node in keep:
            for neighbor in self._adj[node]:
                if neighbor in keep and not sub.has_edge(node, neighbor):
                    sub.add_edge(node, neighbor)
        return sub

    def relabeled(self) -> Tuple["Graph", Dict[Node, int]]:
        """Return a copy with nodes relabeled to ``0..n-1`` and the mapping.

        Useful for exporting to array-based tooling; the mapping preserves
        the original insertion order.
        """
        mapping = {node: index for index, node in enumerate(self._adj)}
        relabeled = Graph()
        for node in self._adj:
            relabeled.add_node(mapping[node])
        for u, v in self.edges():
            relabeled.add_edge(mapping[u], mapping[v])
        return relabeled, mapping

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph(nodes={self.number_of_nodes()}, edges={self.number_of_edges()})"
        )
