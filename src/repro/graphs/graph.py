"""An undirected simple graph tuned for sampling algorithms.

Design notes
------------
* Nodes may be any hashable objects; the synthetic generators use ``int``
  node ids ``0..n-1``.
* Adjacency is stored as ``dict[node, dict[node, weight]]``: insertion
  ordered (deterministic iteration, which matters for reproducible
  sampling), with O(1) membership tests and O(deg) neighbour iteration.
  A *unit-weight* edge stores ``None`` in the value slot, so graphs that
  never pass ``weight=`` keep exactly the historical layout and cost.
* Edges may optionally carry a positive length (``add_edge(u, v, weight=w)``).
  Weights must be strictly positive: a zero-weight undirected edge would
  put both endpoints at the same distance and turn the shortest-path
  "DAG" cyclic, breaking exact path counting.  :attr:`Graph.is_weighted`
  is an O(1) check the traversal layer uses to route between the BFS and
  Dijkstra engines (see :mod:`repro.graphs.sssp`).
* The graph is *simple*: self loops and parallel edges are rejected /
  collapsed.  Direction is intentionally unsupported (the paper treats all
  evaluation networks as undirected).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple, Union

from repro.errors import GraphError
from repro.graphs.delta import (
    STRUCTURAL_DELTA,
    EdgeDelta,
    OP_DELETE,
    OP_INSERT,
    OP_REWEIGHT,
)

Node = Hashable
Edge = Tuple[Node, Node]
Weight = Union[int, float]


def _check_weight(weight: Weight, *, edge: Optional[Tuple[Node, Node]] = None) -> Optional[float]:
    """Validate an edge weight; return the stored form (``None`` = unit).

    Unit weights are stored as ``None`` so unit-weight graphs keep the exact
    pre-weights adjacency layout (and ``is_weighted`` stays ``False``).
    Rejections name the offending edge when the caller knows it, so a bad
    weight deep inside a bulk load points at the edge, not just the value.
    """
    if weight == 1:
        return None
    where = "" if edge is None else f" for edge {edge[0]!r}-{edge[1]!r}"
    if isinstance(weight, bool) or not isinstance(weight, (int, float)):
        raise GraphError(
            f"edge weight must be a positive real number, got {weight!r}{where}"
        )
    if not math.isfinite(weight) or weight <= 0:
        raise GraphError(
            f"edge weight must be positive and finite, got {weight!r}{where} "
            "(zero-weight undirected edges would make the shortest-path "
            "DAG cyclic)"
        )
    return float(weight)


class Graph:
    """An undirected simple graph with optional positive edge weights.

    Examples
    --------
    >>> g = Graph.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])
    >>> g.number_of_nodes(), g.number_of_edges()
    (4, 4)
    >>> sorted(g.neighbors(2))
    [0, 1, 3]
    >>> g.degree(2)
    3
    >>> g.is_weighted
    False
    >>> w = Graph.from_edges([(0, 1, 2.5), (1, 2)])
    >>> w.is_weighted, w.edge_weight(0, 1), w.edge_weight(1, 2)
    (True, 2.5, 1)
    """

    __slots__ = (
        "_adj",
        "_num_edges",
        "_num_weighted",
        "_version",
        "_journal",
        "__weakref__",
    )

    def __init__(self) -> None:
        self._adj: Dict[Node, Dict[Node, Optional[float]]] = {}
        self._num_edges: int = 0
        # Count of edges carrying a non-unit weight; ``is_weighted`` is the
        # O(1) fast path the SSSP dispatch layer checks per traversal.
        self._num_weighted: int = 0
        # Monotonic mutation counter; lets derived representations (the CSR
        # backend cache in :mod:`repro.graphs.csr`) detect staleness cheaply.
        self._version: int = 0
        # Mutation journal (:class:`repro.graphs.delta.MutationJournal`),
        # armed lazily by the caches via :func:`repro.graphs.delta.track`
        # once something snapshots this graph.  ``None`` until then, so
        # bulk construction pays one attribute check per mutation.
        self._journal = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple], nodes: Optional[Iterable[Node]] = None
    ) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` or ``(u, v, weight)``.

        Parameters
        ----------
        edges:
            Edge pairs, optionally with a positive weight as third element.
            Duplicate edges are collapsed (first occurrence wins, weight
            included); self loops raise :class:`~repro.errors.GraphError`.
        nodes:
            Optional extra nodes to add (possibly isolated).
        """
        graph = cls()
        if nodes is not None:
            for node in nodes:
                graph.add_node(node)
        for edge in edges:
            if len(edge) == 2:
                u, v = edge
                graph.add_edge(u, v)
            elif len(edge) == 3:
                u, v, weight = edge
                graph.add_edge(u, v, weight=weight)
            else:
                raise GraphError(
                    f"edges must be (u, v) or (u, v, weight) tuples, got {edge!r}"
                )
        return graph

    def add_node(self, node: Node) -> None:
        """Add ``node`` if not already present."""
        if node not in self._adj:
            self._adj[node] = {}
            self._version += 1
            if self._journal is not None:
                # Node-set changes invalidate the label<->index mapping of
                # every snapshot; journalled as structural so consumers
                # fall back to wholesale eviction for ranges crossing it.
                self._journal.record(self._version, STRUCTURAL_DELTA)

    def add_edge(self, u: Node, v: Node, weight: Weight = 1) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed.

        Parameters
        ----------
        weight:
            Optional positive edge length (default 1).  Adding an edge that
            already exists is a no-op — the stored weight is kept; use
            :meth:`set_edge_weight` to change it.

        Raises
        ------
        GraphError
            If ``u == v`` (self loops are not allowed in a simple graph) or
            the weight is not a positive finite number.
        """
        if u == v:
            raise GraphError(f"self loops are not allowed (node {u!r})")
        stored = _check_weight(weight, edge=(u, v))
        self.add_node(u)
        self.add_node(v)
        if v not in self._adj[u]:
            self._adj[u][v] = stored
            self._adj[v][u] = stored
            self._num_edges += 1
            if stored is not None:
                self._num_weighted += 1
            self._version += 1
            if self._journal is not None:
                self._journal.record(
                    self._version,
                    EdgeDelta(
                        OP_INSERT, u, v, None,
                        1.0 if stored is None else stored,
                    ),
                )

    def set_edge_weight(self, u: Node, v: Node, weight: Weight) -> None:
        """Set the weight of the existing edge ``{u, v}``.

        Raises
        ------
        GraphError
            If the edge does not exist or the weight is invalid.
        """
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
        stored = _check_weight(weight, edge=(u, v))
        previous = self._adj[u][v]
        if previous is stored or previous == (1 if stored is None else stored):
            return
        if previous is not None:
            self._num_weighted -= 1
        if stored is not None:
            self._num_weighted += 1
        self._adj[u][v] = stored
        self._adj[v][u] = stored
        self._version += 1
        if self._journal is not None:
            self._journal.record(
                self._version,
                EdgeDelta(
                    OP_REWEIGHT, u, v,
                    1.0 if previous is None else previous,
                    1.0 if stored is None else stored,
                ),
            )

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the edge ``{u, v}``.

        Raises
        ------
        GraphError
            If the edge does not exist.
        """
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
        stored = self._adj[u][v]
        if stored is not None:
            self._num_weighted -= 1
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1
        self._version += 1
        if self._journal is not None:
            self._journal.record(
                self._version,
                EdgeDelta(
                    OP_DELETE, u, v,
                    1.0 if stored is None else stored, None,
                ),
            )

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges.

        Raises
        ------
        GraphError
            If the node does not exist.
        """
        if node not in self._adj:
            raise GraphError(f"node {node!r} does not exist")
        for neighbor, stored in list(self._adj[node].items()):
            if stored is not None:
                self._num_weighted -= 1
            del self._adj[neighbor][node]
            self._num_edges -= 1
        del self._adj[node]
        self._version += 1
        if self._journal is not None:
            self._journal.record(self._version, STRUCTURAL_DELTA)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def is_weighted(self) -> bool:
        """``True`` when at least one edge carries a non-unit weight.

        O(1): the traversal layer checks this per call to route unit-weight
        graphs through the exact historical BFS paths.
        """
        return self._num_weighted > 0

    def has_node(self, node: Node) -> bool:
        """Return ``True`` if ``node`` is in the graph."""
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return ``True`` if the undirected edge ``{u, v}`` exists."""
        return u in self._adj and v in self._adj[u]

    def neighbors(self, node: Node) -> Iterable[Node]:
        """Return an iterable view over the neighbours of ``node``.

        Raises
        ------
        GraphError
            If the node does not exist.
        """
        try:
            return self._adj[node].keys()
        except KeyError:
            raise GraphError(f"node {node!r} does not exist") from None

    def neighbor_weights(self, node: Node) -> Iterator[Tuple[Node, Weight]]:
        """Iterate ``(neighbour, weight)`` pairs in insertion order.

        Unit-weight edges yield ``1``; this is the edge scan the Dijkstra
        reference kernel drives (same order as :meth:`neighbors`).

        Raises
        ------
        GraphError
            If the node does not exist.
        """
        try:
            items = self._adj[node].items()
        except KeyError:
            raise GraphError(f"node {node!r} does not exist") from None
        return ((nbr, 1 if w is None else w) for nbr, w in items)

    def edge_weight(self, u: Node, v: Node) -> Weight:
        """Return the weight of edge ``{u, v}`` (``1`` for unit edges).

        Raises
        ------
        GraphError
            If the edge does not exist.
        """
        if not self.has_edge(u, v):
            raise GraphError(f"edge ({u!r}, {v!r}) does not exist")
        stored = self._adj[u][v]
        return 1 if stored is None else stored

    def degree(self, node: Node) -> int:
        """Return the degree of ``node``."""
        try:
            return len(self._adj[node])
        except KeyError:
            raise GraphError(f"node {node!r} does not exist") from None

    def number_of_nodes(self) -> int:
        """Return ``|V|``."""
        return len(self._adj)

    def number_of_edges(self) -> int:
        """Return ``|E|`` (each undirected edge counted once)."""
        return self._num_edges

    def nodes(self) -> Iterator[Node]:
        """Iterate over the nodes in insertion order."""
        return iter(self._adj)

    def edges(self) -> Iterator[Edge]:
        """Iterate over each undirected edge exactly once as ``(u, v)``."""
        seen = set()
        for u, nbrs in self._adj.items():
            seen.add(u)
            for v in nbrs:
                if v not in seen:
                    yield (u, v)

    def weighted_edges(self) -> Iterator[Tuple[Node, Node, Weight]]:
        """Iterate each undirected edge once as ``(u, v, weight)``.

        Same edge order as :meth:`edges`; unit edges yield weight ``1``.
        """
        seen = set()
        for u, nbrs in self._adj.items():
            seen.add(u)
            for v, stored in nbrs.items():
                if v not in seen:
                    yield (u, v, 1 if stored is None else stored)

    def adjacency(self) -> Dict[Node, List[Node]]:
        """Return a plain ``dict`` mapping each node to a neighbour list."""
        return {node: list(nbrs) for node, nbrs in self._adj.items()}

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Return a deep copy of the graph structure (weights included)."""
        clone = Graph()
        for node, nbrs in self._adj.items():
            clone._adj[node] = dict(nbrs)
        clone._num_edges = self._num_edges
        clone._num_weighted = self._num_weighted
        return clone

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Return the induced subgraph on ``nodes`` (weights preserved).

        Nodes not present in the graph are ignored.  The subgraph's nodes are
        created in the iteration order of ``nodes`` (first occurrence wins),
        so callers passing a deterministic sequence get a deterministic,
        insertion-ordered subgraph — which reproducible sampling relies on.
        """
        keep = dict.fromkeys(node for node in nodes if node in self._adj)
        sub = Graph()
        for node in keep:
            sub.add_node(node)
        for node in keep:
            for neighbor, stored in self._adj[node].items():
                if neighbor in keep and not sub.has_edge(node, neighbor):
                    sub.add_edge(
                        node, neighbor, 1 if stored is None else stored
                    )
        return sub

    def relabeled(self) -> Tuple["Graph", Dict[Node, int]]:
        """Return a copy with nodes relabeled to ``0..n-1`` and the mapping.

        Useful for exporting to array-based tooling; the mapping preserves
        the original insertion order (weights are preserved too).
        """
        mapping = {node: index for index, node in enumerate(self._adj)}
        relabeled = Graph()
        for node in self._adj:
            relabeled.add_node(mapping[node])
        for u, v, weight in self.weighted_edges():
            relabeled.add_edge(mapping[u], mapping[v], weight)
        return relabeled, mapping

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph(nodes={self.number_of_nodes()}, edges={self.number_of_edges()})"
        )
