"""Connected-component utilities."""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List

from repro.graphs.graph import Graph

Node = Hashable


def connected_components(graph: Graph) -> List[List[Node]]:
    """Return the connected components of ``graph`` as lists of nodes.

    Components are returned in order of discovery (graph insertion order),
    and nodes within a component in BFS order, so the output is deterministic.
    """
    seen: Dict[Node, bool] = {}
    components: List[List[Node]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component: List[Node] = []
        queue = deque([start])
        seen[start] = True
        while queue:
            node = queue.popleft()
            component.append(node)
            for neighbor in graph.neighbors(node):
                if neighbor not in seen:
                    seen[neighbor] = True
                    queue.append(neighbor)
        components.append(component)
    return components


def largest_connected_component(graph: Graph) -> List[Node]:
    """Return the node list of the largest connected component.

    Ties are broken toward the earliest-discovered component so the result is
    deterministic.  Returns an empty list for the empty graph.
    """
    best: List[Node] = []
    for component in connected_components(graph):
        if len(component) > len(best):
            best = component
    return best


def is_connected(graph: Graph) -> bool:
    """Return ``True`` if the graph is non-empty and connected."""
    if graph.number_of_nodes() == 0:
        return False
    return len(largest_connected_component(graph)) == graph.number_of_nodes()
