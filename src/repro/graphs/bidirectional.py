"""Balanced bidirectional BFS with exact shortest-path counting.

This is the sample-generation workhorse used by KADABRA [Borassi & Natale,
ESA 2016] and by SaPHyRa_bc's ``Gen_bc``: growing BFS balls from both
endpoints and always expanding the cheaper frontier makes the expected work
``n^{1/2+o(1)}`` on graphs whose degree distribution has a finite second
moment (Lemma 21 in the paper), instead of ``Theta(m)`` for a full BFS.

Besides the distance we also recover, for a *cut level* ``L``:

* ``sigma_s(w)`` — number of shortest ``s -> w`` paths for every ``w`` with
  ``d_s(w) = L``;
* ``sigma_t(w)`` — number of shortest ``w -> t`` paths;

which is enough to compute ``sigma_st`` exactly and to sample a shortest
path uniformly at random (pick the cut node proportional to
``sigma_s * sigma_t``, then walk predecessor DAGs on both sides).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from repro.errors import GraphError, SamplingError
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng

Node = Hashable


@dataclass
class BidirectionalBFSResult:
    """Outcome of a balanced bidirectional BFS between ``source`` and ``target``.

    Attributes
    ----------
    source, target:
        Endpoints of the query.
    distance:
        Hop distance, or ``None`` if the endpoints are disconnected.
    num_shortest_paths:
        ``sigma_{st}``; 0 when disconnected.
    cut_level:
        The forward distance ``L`` at which paths are counted/stitched.
    cut_nodes:
        Nodes ``w`` with ``d_s(w) = L`` and ``d_t(w) = distance - L`` lying on
        at least one shortest path, with their ``(sigma_s(w), sigma_t(w))``.
    visited_edges:
        Number of adjacency entries scanned — the cost measure used when
        comparing against a full BFS.
    """

    source: Node
    target: Node
    distance: Optional[int]
    num_shortest_paths: int
    cut_level: int = 0
    cut_nodes: Dict[Node, tuple] = field(default_factory=dict)
    visited_edges: int = 0
    _forward: Optional["_SearchSide"] = None
    _backward: Optional["_SearchSide"] = None

    @property
    def connected(self) -> bool:
        """``True`` when a path between the endpoints exists."""
        return self.distance is not None

    def sample_path(self, rng: SeedLike = None) -> List[Node]:
        """Sample a shortest path uniformly at random as ``[source, ..., target]``.

        Raises
        ------
        SamplingError
            If the endpoints are disconnected.
        """
        if not self.connected or self._forward is None or self._backward is None:
            raise SamplingError(
                f"no path between {self.source!r} and {self.target!r}"
            )
        rng = ensure_rng(rng)
        # Pick the cut node proportional to the number of paths through it.
        nodes = list(self.cut_nodes)
        weights = [
            self.cut_nodes[w][0] * self.cut_nodes[w][1] for w in nodes
        ]
        middle = _weighted_choice(nodes, weights, rng)
        first_half = self._forward.sample_path_to(middle, rng)
        second_half = self._backward.sample_path_to(middle, rng)
        second_half.reverse()
        return first_half + second_half[1:]


class _SearchSide:
    """One direction of the bidirectional search (complete BFS levels)."""

    __slots__ = ("root", "dist", "sigma", "preds", "frontier", "level")

    def __init__(self, root: Node) -> None:
        self.root = root
        self.dist: Dict[Node, int] = {root: 0}
        self.sigma: Dict[Node, int] = {root: 1}
        self.preds: Dict[Node, List[Node]] = {root: []}
        self.frontier: List[Node] = [root]
        self.level: int = 0

    def frontier_cost(self, graph: Graph) -> int:
        """Total degree of the frontier — the cost of expanding one level."""
        return sum(graph.degree(node) for node in self.frontier)

    def expand(self, graph: Graph) -> int:
        """Expand one complete BFS level; return the number of scanned entries."""
        next_frontier: List[Node] = []
        next_level = self.level + 1
        scanned = 0
        for node in self.frontier:
            for neighbor in graph.neighbors(node):
                scanned += 1
                known = self.dist.get(neighbor)
                if known is None:
                    self.dist[neighbor] = next_level
                    self.sigma[neighbor] = self.sigma[node]
                    self.preds[neighbor] = [node]
                    next_frontier.append(neighbor)
                elif known == next_level:
                    self.sigma[neighbor] += self.sigma[node]
                    self.preds[neighbor].append(node)
        self.frontier = next_frontier
        self.level = next_level
        return scanned

    def sample_path_to(self, node: Node, rng) -> List[Node]:
        """Sample a shortest path from ``root`` to ``node`` uniformly;
        returned as ``[root, ..., node]``."""
        path = [node]
        current = node
        while current != self.root:
            preds = self.preds[current]
            weights = [self.sigma[p] for p in preds]
            current = _weighted_choice(preds, weights, rng)
            path.append(current)
        path.reverse()
        return path


def bidirectional_shortest_paths(
    graph: Graph, source: Node, target: Node
) -> BidirectionalBFSResult:
    """Run a balanced bidirectional BFS between ``source`` and ``target``.

    Both BFS trees are expanded level-by-level, always growing the side whose
    frontier has the smaller total degree.  The search stops as soon as the
    best meeting distance can no longer be improved, i.e. when
    ``best <= level_s + level_t``.

    Raises
    ------
    GraphError
        If either endpoint does not exist or ``source == target``.
    """
    if not graph.has_node(source):
        raise GraphError(f"source node {source!r} does not exist")
    if not graph.has_node(target):
        raise GraphError(f"target node {target!r} does not exist")
    if source == target:
        raise GraphError("source and target must be distinct")

    forward = _SearchSide(source)
    backward = _SearchSide(target)
    visited_edges = 0
    best = None  # best known meeting distance

    while True:
        level_sum = forward.level + backward.level
        if best is not None and best <= level_sum:
            break
        # Choose the cheaper side that still has a frontier to expand.
        side: Optional[_SearchSide]
        if forward.frontier and backward.frontier:
            if forward.frontier_cost(graph) <= backward.frontier_cost(graph):
                side = forward
            else:
                side = backward
        elif forward.frontier:
            side = forward
        elif backward.frontier:
            side = backward
        else:
            side = None
        if side is None:
            # Both searches exhausted without meeting: disconnected.
            if best is None:
                return BidirectionalBFSResult(
                    source=source,
                    target=target,
                    distance=None,
                    num_shortest_paths=0,
                    visited_edges=visited_edges,
                )
            break
        other = backward if side is forward else forward
        visited_edges += side.expand(graph)
        for node in side.frontier:
            other_dist = other.dist.get(node)
            if other_dist is not None:
                candidate = side.level + other_dist
                if best is None or candidate < best:
                    best = candidate

    distance = best
    if distance is None:  # pragma: no cover - defensive; handled above
        return BidirectionalBFSResult(
            source=source,
            target=target,
            distance=None,
            num_shortest_paths=0,
            visited_edges=visited_edges,
        )

    # Choose a cut level L such that forward levels <= L and backward levels
    # <= distance - L are both fully expanded, then stitch counts at the cut.
    cut_level = max(0, distance - backward.level)
    cut_level = min(cut_level, forward.level)
    cut_nodes: Dict[Node, tuple] = {}
    sigma_total = 0
    for node, d_forward in forward.dist.items():
        if d_forward != cut_level:
            continue
        d_backward = backward.dist.get(node)
        if d_backward is None or d_forward + d_backward != distance:
            continue
        pair = (forward.sigma[node], backward.sigma[node])
        cut_nodes[node] = pair
        sigma_total += pair[0] * pair[1]

    return BidirectionalBFSResult(
        source=source,
        target=target,
        distance=distance,
        num_shortest_paths=sigma_total,
        cut_level=cut_level,
        cut_nodes=cut_nodes,
        visited_edges=visited_edges,
        _forward=forward,
        _backward=backward,
    )


def _weighted_choice(items, weights, rng) -> Node:
    total = sum(weights)
    if total <= 0:
        raise SamplingError("cannot sample from an empty/zero-weight set")
    threshold = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        cumulative += weight
        if threshold < cumulative:
            return item
    return items[-1]
