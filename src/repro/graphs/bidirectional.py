"""Balanced bidirectional BFS with exact shortest-path counting.

This is the sample-generation workhorse used by KADABRA [Borassi & Natale,
ESA 2016] and by SaPHyRa_bc's ``Gen_bc``: growing BFS balls from both
endpoints and always expanding the cheaper frontier makes the expected work
``n^{1/2+o(1)}`` on graphs whose degree distribution has a finite second
moment (Lemma 21 in the paper), instead of ``Theta(m)`` for a full BFS.

Besides the distance we also recover, for a *cut level* ``L``:

* ``sigma_s(w)`` — number of shortest ``s -> w`` paths for every ``w`` with
  ``d_s(w) = L``;
* ``sigma_t(w)`` — number of shortest ``w -> t`` paths;

which is enough to compute ``sigma_st`` exactly and to sample a shortest
path uniformly at random (pick the cut node proportional to
``sigma_s * sigma_t``, then walk predecessor DAGs on both sides).

Two interchangeable backends implement the search (see
:mod:`repro.graphs.csr`): the dict reference over the hash-based adjacency,
and a CSR variant expanding whole levels over integer index arrays.  Both
produce identical results — including identical sampled paths from identical
seeds.

The search is defined on *hop* distances: its balanced level expansion is a
unit-weight optimisation.  Weighted workloads sample shortest paths from
the Dijkstra source DAGs of the unified SSSP engine instead (see
:mod:`repro.graphs.sssp` and the weighted path in
:mod:`repro.baselines.kadabra`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from repro.errors import GraphError, SamplingError
from repro.graphs import csr as _csr
from repro.graphs.csr import sigma_choice as _weighted_choice
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng

if _csr.HAS_NUMPY:
    import numpy as _np

Node = Hashable

#: ``auto`` backend cutoff for the bidirectional search.  One query touches
#: only ~``n^{1/2+o(1)}`` edges but the CSR variant allocates O(n) state
#: arrays per query, so the array kernels need a much larger graph to pay
#: off than a full-graph BFS does.
AUTO_CSR_BIDIRECTIONAL_THRESHOLD = 16384


@dataclass
class BidirectionalBFSResult:
    """Outcome of a balanced bidirectional BFS between ``source`` and ``target``.

    Attributes
    ----------
    source, target:
        Endpoints of the query.
    distance:
        Hop distance, or ``None`` if the endpoints are disconnected.
    num_shortest_paths:
        ``sigma_{st}``; 0 when disconnected.
    cut_level:
        The forward distance ``L`` at which paths are counted/stitched.
    cut_nodes:
        Nodes ``w`` with ``d_s(w) = L`` and ``d_t(w) = distance - L`` lying on
        at least one shortest path, with their ``(sigma_s(w), sigma_t(w))``.
    visited_edges:
        Number of adjacency entries scanned — the cost measure used when
        comparing against a full BFS.
    """

    source: Node
    target: Node
    distance: Optional[int]
    num_shortest_paths: int
    cut_level: int = 0
    cut_nodes: Dict[Node, tuple] = field(default_factory=dict)
    visited_edges: int = 0
    _forward: Optional[object] = None
    _backward: Optional[object] = None

    @property
    def connected(self) -> bool:
        """``True`` when a path between the endpoints exists."""
        return self.distance is not None

    def sample_path(self, rng: SeedLike = None) -> List[Node]:
        """Sample a shortest path uniformly at random as ``[source, ..., target]``.

        Raises
        ------
        SamplingError
            If the endpoints are disconnected.
        """
        if not self.connected or self._forward is None or self._backward is None:
            raise SamplingError(
                f"no path between {self.source!r} and {self.target!r}"
            )
        rng = ensure_rng(rng)
        # Pick the cut node proportional to the number of paths through it.
        nodes = list(self.cut_nodes)
        weights = [
            self.cut_nodes[w][0] * self.cut_nodes[w][1] for w in nodes
        ]
        middle = _weighted_choice(nodes, weights, rng)
        first_half = self._forward.sample_path_to(middle, rng)
        second_half = self._backward.sample_path_to(middle, rng)
        second_half.reverse()
        return first_half + second_half[1:]


class _SearchSide:
    """One direction of the bidirectional search (complete BFS levels)."""

    __slots__ = ("root", "dist", "sigma", "preds", "frontier", "level")

    def __init__(self, root: Node) -> None:
        self.root = root
        self.dist: Dict[Node, int] = {root: 0}
        self.sigma: Dict[Node, int] = {root: 1}
        self.preds: Dict[Node, List[Node]] = {root: []}
        self.frontier: List[Node] = [root]
        self.level: int = 0

    def frontier_cost(self, graph: Graph) -> int:
        """Total degree of the frontier — the cost of expanding one level."""
        return sum(graph.degree(node) for node in self.frontier)

    def expand(self, graph: Graph) -> int:
        """Expand one complete BFS level; return the number of scanned entries."""
        # repro-lint: disable=kernel-ownership — audited: KADABRA's dict-backend balanced search needs per-level predecessor bookkeeping _BatchSweep doesn't expose; equivalence is pinned by test_bidirectional
        next_frontier: List[Node] = []
        next_level = self.level + 1
        scanned = 0
        for node in self.frontier:
            for neighbor in graph.neighbors(node):
                scanned += 1
                known = self.dist.get(neighbor)
                if known is None:
                    self.dist[neighbor] = next_level
                    self.sigma[neighbor] = self.sigma[node]
                    self.preds[neighbor] = [node]
                    next_frontier.append(neighbor)
                elif known == next_level:
                    self.sigma[neighbor] += self.sigma[node]
                    self.preds[neighbor].append(node)
        self.frontier = next_frontier
        self.level = next_level
        return scanned

    def sample_path_to(self, node: Node, rng) -> List[Node]:
        """Sample a shortest path from ``root`` to ``node`` uniformly;
        returned as ``[root, ..., node]``."""
        path = [node]
        current = node
        while current != self.root:
            preds = self.preds[current]
            weights = [self.sigma[p] for p in preds]
            current = _weighted_choice(preds, weights, rng)
            path.append(current)
        path.reverse()
        return path


class _CSRSearchSide:
    """Index-space search side: level-synchronous expansion over CSR arrays.

    The expansion itself is the shared hybrid kernel
    :class:`repro.graphs.csr._BatchSweep` (single-slot), so the
    vectorised/sequential strategy choice and the sigma overflow guard exist
    in exactly one place; this class only adds the bidirectional bookkeeping
    (predecessor reconstruction and path sampling back to the root).
    """

    __slots__ = ("csr", "root", "sweep", "_pred_groups")

    def __init__(self, csr, root: int) -> None:
        self.csr = csr
        self.root = root
        # repro-lint: disable=kernel-ownership — audited: this *is* the sanctioned reuse — a single-slot handle on the shared kernel instead of a private loop
        self.sweep = _csr._BatchSweep(
            csr, (root,), sigma_mode="int", track_edges=True
        )
        # Lazily built per-level ``{head: [tails]}`` groupings, so repeated
        # path sampling pays one scan of a level's edge list, not one per
        # visited node.
        self._pred_groups: Dict[int, Dict[int, List[int]]] = {}

    @property
    def has_frontier(self) -> bool:
        return self.sweep.has_frontier

    @property
    def frontier(self):
        return self.sweep.frontier

    @property
    def level(self) -> int:
        return self.sweep.depth

    @property
    def levels(self):
        return self.sweep.levels

    @property
    def dist(self):
        # The element-indexable container (``array`` buffer or plain list).
        return self.sweep.dist_store

    @property
    def sigma(self):
        return self.sweep.sigma

    def frontier_cost(self) -> int:
        return self.sweep.frontier_cost()

    def expand(self, frontier_cost: Optional[int] = None) -> int:
        """Expand one complete BFS level; return the number of scanned entries.

        ``frontier_cost`` lets the caller pass the total frontier degree it
        already computed for side selection instead of rescanning it here.
        """
        return self.sweep.expand(frontier_cost)

    def preds_of(self, node: int) -> List[int]:
        """Predecessor indices of ``node`` in the dict backend's append order."""
        level = self.sweep.dist_store[node]
        if level <= 0 or level > len(self.sweep.level_edges):
            return []
        edge_u, edge_v = self.sweep.level_edges[level - 1]
        if _csr.HAS_NUMPY:
            # One vectorised scan per query; a path visits each level once.
            return edge_u[edge_v == node].tolist()
        # Pure Python: group the level's edges by head once and reuse, so a
        # query costs O(deg) instead of rescanning the whole level.
        groups = self._pred_groups.get(level)
        if groups is None:
            groups = {}
            for tail, head in zip(edge_u, edge_v):
                groups.setdefault(head, []).append(tail)
            self._pred_groups[level] = groups
        return groups.get(node, [])

    def sample_path_to(self, node_index: int, rng) -> List[int]:
        """Sample a shortest path ``root -> node`` as an index list."""
        path = [node_index]
        current = node_index
        while current != self.root:
            preds = self.preds_of(current)
            weights = [int(self.sigma[p]) for p in preds]
            current = _weighted_choice(preds, weights, rng)
            path.append(current)
        path.reverse()
        return path


class _CSRSideView:
    """Label-facing adapter so ``BidirectionalBFSResult.sample_path`` can walk
    a CSR search side exactly like a dict one."""

    __slots__ = ("side", "csr")

    def __init__(self, side: _CSRSearchSide, csr) -> None:
        self.side = side
        self.csr = csr

    def sample_path_to(self, node: Node, rng) -> List[Node]:
        labels = self.csr.labels
        path = self.side.sample_path_to(self.csr.index[node], rng)
        return [labels[index] for index in path]


def bidirectional_shortest_paths(
    graph: Graph, source: Node, target: Node, *, backend: Optional[str] = None
) -> BidirectionalBFSResult:
    """Run a balanced bidirectional BFS between ``source`` and ``target``.

    Both BFS trees are expanded level-by-level, always growing the side whose
    frontier has the smaller total degree.  The search stops as soon as the
    best meeting distance can no longer be improved, i.e. when
    ``best <= level_s + level_t``.

    Raises
    ------
    GraphError
        If either endpoint does not exist or ``source == target``.
    """
    if not graph.has_node(source):
        raise GraphError(f"source node {source!r} does not exist")
    if not graph.has_node(target):
        raise GraphError(f"target node {target!r} does not exist")
    if source == target:
        raise GraphError("source and target must be distinct")
    choice = _csr.effective_backend(
        graph, backend, auto_threshold=AUTO_CSR_BIDIRECTIONAL_THRESHOLD
    )
    if choice == _csr.CSR_BACKEND:
        return _bidirectional_csr(graph, source, target)
    return _bidirectional_dict(graph, source, target)


def _bidirectional_dict(
    graph: Graph, source: Node, target: Node
) -> BidirectionalBFSResult:
    forward = _SearchSide(source)
    backward = _SearchSide(target)
    visited_edges = 0
    best = None  # best known meeting distance

    while True:
        level_sum = forward.level + backward.level
        if best is not None and best <= level_sum:
            break
        # Choose the cheaper side that still has a frontier to expand.
        side: Optional[_SearchSide]
        if forward.frontier and backward.frontier:
            if forward.frontier_cost(graph) <= backward.frontier_cost(graph):
                side = forward
            else:
                side = backward
        elif forward.frontier:
            side = forward
        elif backward.frontier:
            side = backward
        else:
            side = None
        if side is None:
            # Both searches exhausted without meeting: disconnected.
            if best is None:
                return BidirectionalBFSResult(
                    source=source,
                    target=target,
                    distance=None,
                    num_shortest_paths=0,
                    visited_edges=visited_edges,
                )
            break
        other = backward if side is forward else forward
        visited_edges += side.expand(graph)
        for node in side.frontier:
            other_dist = other.dist.get(node)
            if other_dist is not None:
                candidate = side.level + other_dist
                if best is None or candidate < best:
                    best = candidate

    distance = best
    if distance is None:  # pragma: no cover - defensive; handled above
        return BidirectionalBFSResult(
            source=source,
            target=target,
            distance=None,
            num_shortest_paths=0,
            visited_edges=visited_edges,
        )

    # Choose a cut level L such that forward levels <= L and backward levels
    # <= distance - L are both fully expanded, then stitch counts at the cut.
    cut_level = max(0, distance - backward.level)
    cut_level = min(cut_level, forward.level)
    cut_nodes: Dict[Node, tuple] = {}
    sigma_total = 0
    for node, d_forward in forward.dist.items():
        if d_forward != cut_level:
            continue
        d_backward = backward.dist.get(node)
        if d_backward is None or d_forward + d_backward != distance:
            continue
        pair = (forward.sigma[node], backward.sigma[node])
        cut_nodes[node] = pair
        sigma_total += pair[0] * pair[1]

    return BidirectionalBFSResult(
        source=source,
        target=target,
        distance=distance,
        num_shortest_paths=sigma_total,
        cut_level=cut_level,
        cut_nodes=cut_nodes,
        visited_edges=visited_edges,
        _forward=forward,
        _backward=backward,
    )


def _bidirectional_csr(
    graph: Graph, source: Node, target: Node
) -> BidirectionalBFSResult:
    snapshot = _csr.as_csr(graph)
    forward = _CSRSearchSide(snapshot, snapshot.index[source])
    backward = _CSRSearchSide(snapshot, snapshot.index[target])
    visited_edges = 0
    best = None

    while True:
        level_sum = forward.level + backward.level
        if best is not None and best <= level_sum:
            break
        side: Optional[_CSRSearchSide]
        side_cost: Optional[int] = None
        if forward.has_frontier and backward.has_frontier:
            forward_cost = forward.frontier_cost()
            backward_cost = backward.frontier_cost()
            if forward_cost <= backward_cost:
                side, side_cost = forward, forward_cost
            else:
                side, side_cost = backward, backward_cost
        elif forward.has_frontier:
            side = forward
        elif backward.has_frontier:
            side = backward
        else:
            side = None
        if side is None:
            if best is None:
                return BidirectionalBFSResult(
                    source=source,
                    target=target,
                    distance=None,
                    num_shortest_paths=0,
                    visited_edges=visited_edges,
                )
            break
        other = backward if side is forward else forward
        visited_edges += side.expand(side_cost)
        best = _best_meeting(side, other, best)

    distance = best
    if distance is None:  # pragma: no cover - defensive; handled above
        return BidirectionalBFSResult(
            source=source,
            target=target,
            distance=None,
            num_shortest_paths=0,
            visited_edges=visited_edges,
        )

    cut_level = max(0, distance - backward.level)
    cut_level = min(cut_level, forward.level)
    labels = snapshot.labels
    cut_nodes: Dict[Node, tuple] = {}
    sigma_total = 0
    candidates = (
        forward.levels[cut_level] if cut_level < len(forward.levels) else ()
    )
    for node in candidates:
        d_backward = int(backward.dist[node])
        if d_backward < 0 or cut_level + d_backward != distance:
            continue
        pair = (int(forward.sigma[node]), int(backward.sigma[node]))
        cut_nodes[labels[node]] = pair
        sigma_total += pair[0] * pair[1]

    return BidirectionalBFSResult(
        source=source,
        target=target,
        distance=distance,
        num_shortest_paths=sigma_total,
        cut_level=cut_level,
        cut_nodes=cut_nodes,
        visited_edges=visited_edges,
        _forward=_CSRSideView(forward, snapshot),
        _backward=_CSRSideView(backward, snapshot),
    )


def _best_meeting(side: _CSRSearchSide, other: _CSRSearchSide, best):
    """Update the best meeting distance after ``side`` expanded one level."""
    frontier = side.frontier
    if len(frontier) == 0:
        return best
    if _csr.HAS_NUMPY and len(frontier) >= 64:
        other_dist = other.sweep.dist[_np.asarray(frontier, dtype=_np.int64)]
        reached = other_dist >= 0
        if reached.any():
            candidate = side.level + int(other_dist[reached].min())
            if best is None or candidate < best:
                best = candidate
        return best
    other_distances = other.dist
    for node in frontier:
        other_dist = other_distances[node]
        if other_dist >= 0:
            candidate = side.level + other_dist
            if best is None or candidate < best:
                best = candidate
    return best
