"""Graph substrate: storage, IO, generators, traversal and decompositions.

The paper's algorithms need undirected simple graphs, so the substrate is
specialised for that case and optimised for the access patterns the samplers
use (neighbour iteration, membership tests, BFS frontiers).  Edges may
optionally carry positive weights: the unified SSSP layer (see
:mod:`repro.graphs.sssp`) routes weighted graphs through deterministic
Dijkstra kernels while unit-weight graphs keep the exact BFS hot paths.
"""

from __future__ import annotations

from repro.graphs.biconnected import BiconnectedDecomposition, biconnected_components
from repro.graphs.bidirectional import BidirectionalBFSResult, bidirectional_shortest_paths
from repro.graphs.block_cut_tree import BlockCutTree, build_block_cut_tree
from repro.graphs.csr import (
    BACKENDS,
    CSRGraph,
    as_csr,
    default_backend,
    resolve_backend,
    set_default_backend,
)
from repro.graphs.components import connected_components, largest_connected_component
from repro.graphs.delta import (
    EdgeDelta,
    MutationJournal,
    default_dag_cache_delta,
    deltas_between,
    resolve_dag_cache_delta,
    resolve_delta_journal_size,
    set_default_dag_cache_delta,
    set_default_delta_journal_size,
)
from repro.graphs.diameter import (
    estimate_diameter,
    estimate_subset_diameter,
    two_sweep_lower_bound,
)
from repro.graphs.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    grid_road_graph,
    powerlaw_cluster_graph,
    watts_strogatz_graph,
    weighted_barabasi_albert_graph,
    weighted_grid_road_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.io import (
    iter_dimacs_arcs,
    iter_edge_list,
    read_dimacs_graph,
    read_edge_list,
    write_edge_list,
)
from repro.graphs.properties import GraphSummary, summarize
from repro.graphs.store import (
    SnapshotStore,
    content_digest,
    default_mmap,
    default_snapshot_dir,
    effective_mmap,
    graph_from_snapshot,
    load_snapshot,
    resolve_mmap,
    resolve_snapshot_dir,
    save_snapshot,
    set_default_mmap,
    set_default_snapshot_dir,
)
from repro.graphs.sssp import (
    default_weighted,
    effective_weighted,
    resolve_weighted,
    set_default_weighted,
)
from repro.graphs.traversal import (
    ShortestPathDAG,
    bfs_distances,
    sample_shortest_path,
    shortest_path_dag,
    sssp_distances,
)

__all__ = [
    "Graph",
    "CSRGraph",
    "as_csr",
    "BACKENDS",
    "default_backend",
    "set_default_backend",
    "resolve_backend",
    "read_edge_list",
    "write_edge_list",
    "read_dimacs_graph",
    "iter_edge_list",
    "iter_dimacs_arcs",
    "SnapshotStore",
    "save_snapshot",
    "load_snapshot",
    "content_digest",
    "graph_from_snapshot",
    "default_snapshot_dir",
    "set_default_snapshot_dir",
    "resolve_snapshot_dir",
    "default_mmap",
    "set_default_mmap",
    "resolve_mmap",
    "effective_mmap",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "powerlaw_cluster_graph",
    "grid_road_graph",
    "bfs_distances",
    "sssp_distances",
    "default_weighted",
    "set_default_weighted",
    "resolve_weighted",
    "effective_weighted",
    "weighted_barabasi_albert_graph",
    "weighted_grid_road_graph",
    "shortest_path_dag",
    "sample_shortest_path",
    "ShortestPathDAG",
    "bidirectional_shortest_paths",
    "BidirectionalBFSResult",
    "connected_components",
    "largest_connected_component",
    "biconnected_components",
    "BiconnectedDecomposition",
    "build_block_cut_tree",
    "BlockCutTree",
    "estimate_diameter",
    "estimate_subset_diameter",
    "two_sweep_lower_bound",
    "GraphSummary",
    "summarize",
    "EdgeDelta",
    "MutationJournal",
    "deltas_between",
    "default_dag_cache_delta",
    "resolve_dag_cache_delta",
    "set_default_dag_cache_delta",
    "resolve_delta_journal_size",
    "set_default_delta_journal_size",
]
