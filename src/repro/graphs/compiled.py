"""Optional compiled (numba) kernel tier for the weighted SSSP engine.

The delta-stepping kernel in :mod:`repro.graphs.delta_stepping` spends its
residual time in three scalar loops: the sequential bucket-relaxation inner
loop (thin frontiers), the sigma accumulation over the settle order, and
the weighted Brandes backward pass.  When `numba <https://numba.pydata.org>`_
is importable those loops can run as jitted machine code; when it is not —
numba is an *optional* dependency, never required — the pure-Python loops
run instead, exactly like the no-numpy degradation of the CSR backend.

Determinism: the jitted loops are structurally identical to their Python
sources (same comparisons, same float64 additions in the same order) and
are compiled with ``fastmath`` **disabled**, so no float re-association can
occur — results are bit-identical whether or not numba is present.  In
particular the Brandes backward accumulation
(``delta[u] += sigma[u] / sigma[v] * coefficient``) executes the exact
scalar sequence of the dict reference inside compiled code; the backend
equivalence suite gates this contract.

The tier is controlled by the ``compiled`` knob (``"auto"``/``"on"``/
``"off"``), following the standard protocol: explicit argument >
:func:`set_default_compiled` > the ``REPRO_COMPILED`` environment variable
(mirrored for spawn workers) > ``"auto"``.  ``"auto"`` uses numba iff it is
importable; ``"on"`` raises a clear error when numba is missing (so a
forced configuration never silently degrades); ``"off"`` pins the
pure-Python loops even when numba is installed.
"""

from __future__ import annotations

import importlib.util
import os
from typing import Callable, Dict, Optional

from repro.parallel import EnvMirroredOverride

#: Environment variable overriding the default compiled-tier mode.
COMPILED_ENV_VAR = "REPRO_COMPILED"

COMPILED_AUTO = "auto"
COMPILED_ON = "on"
COMPILED_OFF = "off"

_COMPILED_CHOICES = (COMPILED_AUTO, COMPILED_ON, COMPILED_OFF)

#: Whether numba is importable (checked without importing it — the import
#: itself is deferred until a kernel is actually requested).
HAS_NUMBA = importlib.util.find_spec("numba") is not None

_default_compiled: Optional[str] = None
_env_mirror = EnvMirroredOverride(COMPILED_ENV_VAR)

#: Lazily-jitted kernels by name; ``None`` until the first request.
_kernels: Optional[Dict[str, Callable]] = None
#: Set when jitting failed — the tier then stays pure-Python for the process.
_compile_failed = False


def _check_compiled_name(value: str, *, source: str = "compiled") -> None:
    """Raise a uniform error for an invalid compiled-tier mode name."""
    if value not in _COMPILED_CHOICES:
        raise ValueError(
            f"{source}={value!r} is not a valid compiled mode; choose one of "
            f"{_COMPILED_CHOICES} (the default can also be set via the "
            f"{COMPILED_ENV_VAR} environment variable)"
        )


def _env_compiled() -> Optional[str]:
    """Return the validated ``REPRO_COMPILED`` value, or ``None`` if unset."""
    env = os.environ.get(COMPILED_ENV_VAR, "").strip().lower()
    if not env:
        return None
    _check_compiled_name(env, source=COMPILED_ENV_VAR)
    return env


def default_compiled() -> str:
    """Return the mode used when callers pass ``compiled=None``."""
    if _default_compiled is not None:
        return _default_compiled
    env = _env_compiled()
    if env is not None:
        return env
    return COMPILED_AUTO


def set_default_compiled(compiled: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide default compiled mode.

    Mirrored into ``REPRO_COMPILED`` via
    :class:`repro.parallel.EnvMirroredOverride` so spawn workers resolve the
    same tier; ``None`` restores the environment variable the first
    override displaced.
    """
    global _default_compiled
    if compiled is not None:
        _check_compiled_name(compiled)
    _env_mirror.set(compiled)
    _default_compiled = compiled


def resolve_compiled(compiled: Optional[str] = None) -> str:
    """Map a user-facing ``compiled`` argument to a concrete mode name."""
    env = _env_compiled()
    if compiled is None:
        if _default_compiled is not None:
            return _default_compiled
        return env if env is not None else COMPILED_AUTO
    _check_compiled_name(compiled)
    return compiled


def compiled_enabled(compiled: Optional[str] = None) -> bool:
    """Whether the compiled tier should be used for this process.

    ``"on"`` without numba raises: a forced configuration must not silently
    fall back (the ``"auto"`` default degrades gracefully instead).
    """
    mode = resolve_compiled(compiled)
    if mode == COMPILED_OFF:
        return False
    if mode == COMPILED_ON:
        if not HAS_NUMBA:
            raise ValueError(
                "compiled='on' requires numba, which is not installed; "
                "install numba or use compiled='auto' (the default) to run "
                f"the pure-Python loops (see {COMPILED_ENV_VAR})"
            )
        return not _compile_failed
    return HAS_NUMBA and not _compile_failed


# ---------------------------------------------------------------------------
# Kernel sources.  Plain Python functions — jitted on first use, and kept
# structurally identical to the fallback loops in delta_stepping.py / csr.py
# so the tier can never change results, only speed.
# ---------------------------------------------------------------------------

def _relax_edges_source(indptr, indices, weights, frontier, n, dist, out):
    """Relax every out-edge of ``frontier`` (flat ids) against ``dist``.

    Writes each improved flat target id to ``out`` (duplicates allowed —
    the caller deduplicates) and returns the count.  ``dist`` uses
    ``inf`` = unreachable; the candidate ``dist[u] + w`` is one float64
    addition, the same operation every other kernel performs, so the final
    distance fixpoint is bit-identical regardless of relaxation order.
    """
    count = 0
    for i in range(frontier.shape[0]):
        flat = frontier[i]
        node = flat % n
        base = flat - node
        d = dist[flat]
        for position in range(indptr[node], indptr[node + 1]):
            target = base + indices[position]
            candidate = d + weights[position]
            if candidate < dist[target]:
                dist[target] = candidate
                out[count] = target
                count += 1
    return count


def _sigma_float_source(order, pred_indptr, pred_indices, sigma):
    """Accumulate float sigma over the settle order (source is ``order[0]``).

    Per node the additions run over the predecessor list in append order —
    the dict reference's exact float addition sequence.
    """
    for i in range(1, order.shape[0]):
        node = order[i]
        total = 0.0
        for position in range(pred_indptr[node], pred_indptr[node + 1]):
            total += sigma[pred_indices[position]]
        sigma[node] = total


def _brandes_backward_source(order, pred_indptr, pred_indices, sigma, delta):
    """Weighted Brandes backward pass over the settle order, in place.

    The accumulation ``delta[u] += sigma[u] / sigma[v] * coefficient`` is
    the exact scalar sequence of ``csr_dijkstra_brandes`` — compiled with
    fastmath disabled there is no re-association, so the float results are
    bit-identical to the pure-Python pass.
    """
    for i in range(order.shape[0] - 1, -1, -1):
        node = order[i]
        coefficient = 1.0 + delta[node]
        sigma_node = sigma[node]
        for position in range(pred_indptr[node], pred_indptr[node + 1]):
            predecessor = pred_indices[position]
            delta[predecessor] += sigma[predecessor] / sigma_node * coefficient


_KERNEL_SOURCES = {
    "relax_edges": _relax_edges_source,
    "sigma_float": _sigma_float_source,
    "brandes_backward": _brandes_backward_source,
}


def _compile_kernels() -> Optional[Dict[str, Callable]]:
    """Jit every kernel source once; on any failure disable the tier."""
    global _kernels, _compile_failed
    if _kernels is not None:
        return _kernels
    if _compile_failed:
        return None
    try:
        import numba

        jit = numba.njit(cache=False, fastmath=False)
        _kernels = {name: jit(source) for name, source in _KERNEL_SOURCES.items()}
    except Exception:
        # Any numba breakage (version skew, unsupported platform) downgrades
        # to the pure-Python loops — same results, interpreter speed.
        _compile_failed = True
        _kernels = None
        return None
    return _kernels


def get_kernel(name: str, compiled: Optional[str] = None) -> Optional[Callable]:
    """Return the jitted kernel ``name``, or ``None`` to use the Python loop.

    Resolution is per call so tests can flip the knob; compilation happens
    once per process.  Unknown names raise (a typo would otherwise silently
    disable the tier).
    """
    if name not in _KERNEL_SOURCES:
        raise ValueError(
            f"unknown compiled kernel {name!r}; choose one of "
            f"{tuple(_KERNEL_SOURCES)}"
        )
    if not compiled_enabled(compiled):
        return None
    kernels = _compile_kernels()
    if kernels is None:
        return None
    return kernels[name]
