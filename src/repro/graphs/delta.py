"""Edge-level mutation journal and the delta cache-invalidation knob.

Every derived representation in this reproduction — the CSR snapshot cache
in :mod:`repro.graphs.csr`, the engine's ``SourceDAGCache``, the dataset
layer's ``GroundTruthCache`` — keys on ``Graph._version`` and, before this
module existed, evicted **wholesale** on any mutation: one ``add_edge``
threw away every snapshot and every cached traversal, then rebuilt from
scratch.  For the paper's live setting (rankings served over graphs that
keep changing) that makes each edit cost a full recompute of the world.

This module records *what actually changed* so the caches can do better:

* :class:`MutationJournal` — a bounded record of edge-level deltas
  (insert / delete / reweight) between ``Graph._version`` values, armed
  per graph by :func:`track` the first time a cache snapshots it.  Node
  additions/removals are recorded as *structural* markers: they change the
  label set, so consumers degrade to today's wholesale semantics.  The
  journal is capped (:func:`resolve_delta_journal_size`): overflowing
  drops the oldest entries, after which version ranges reaching past the
  cap are reported as uncovered — again the wholesale fallback, never a
  wrong answer.
* :func:`deltas_between` — the consumer API: the exact delta list covering
  ``old_version -> graph._version``, or ``None`` when the range is
  uncovered (journal disabled, overflowed, or crossed a structural edit).
* :func:`delta_affects_source` — the O(1)-per-edge validity test the
  ``SourceDAGCache`` runs per cached entry: an inserted edge ``(u, v, w)``
  can only change distances from source ``s`` if it *shortens* a path
  (``dist[u] + w < dist[v]`` or the symmetric test); a deletion only if
  the edge lies on a shortest path (``dist[u] + w == dist[v]``); DAG/sigma
  entries additionally evict on *ties* (a new equal-length path changes
  path counts without changing distances).  Unreachable endpoints are
  handled conservatively.  The comparisons replicate the relaxation
  arithmetic of the Dijkstra/BFS kernels exactly (one addition, one
  compare), so retention decisions agree bit-for-bit with what a fresh
  traversal would compute.

Knobs (full protocol, mirroring :mod:`repro.graphs.sssp`):

* ``dag_cache_delta`` = ``auto`` | ``on`` | ``off``
  (``REPRO_DAG_CACHE_DELTA``, :func:`set_default_dag_cache_delta`, the
  CLI's ``--dag-cache-delta``, ``ExperimentConfig.dag_cache_delta``).
  ``off`` disables journaling entirely — byte-for-byte the pre-delta
  wholesale behaviour; ``on`` always validates per entry; ``auto`` (the
  default) validates but falls back to wholesale eviction when the delta
  range exceeds :data:`AUTO_DELTA_VALIDATION_LIMIT` edits, bounding the
  per-entry scan cost.
* ``delta_journal_size`` — the journal cap
  (``REPRO_DELTA_JOURNAL_SIZE``, :func:`set_default_delta_journal_size`,
  ``--delta-journal-size``, ``ExperimentConfig.delta_journal_size``).

Correctness stance: the journal only ever *retains* work that a validity
test proves unaffected; anything uncertain — uncovered ranges, structural
edits, mixed reachability — evicts exactly like before.  The equivalence
suite asserts ``dag_cache_delta=on`` == ``off`` == a freshly built graph,
bit for bit, across the whole knob matrix.
"""

from __future__ import annotations

import os
from collections import deque
from itertools import islice
from typing import Callable, Hashable, List, NamedTuple, Optional

Node = Hashable

#: Environment variable overriding the default delta-invalidation mode.
DAG_CACHE_DELTA_ENV_VAR = "REPRO_DAG_CACHE_DELTA"

#: Environment variable overriding the default journal cap.
DELTA_JOURNAL_SIZE_ENV_VAR = "REPRO_DELTA_JOURNAL_SIZE"

DELTA_AUTO = "auto"
DELTA_ON = "on"
DELTA_OFF = "off"

_DELTA_CHOICES = (DELTA_AUTO, DELTA_ON, DELTA_OFF)

#: Default journal cap: generous for interactive edit streams, small enough
#: that the per-entry validation scan (O(cap) comparisons) stays negligible
#: next to one traversal.
DEFAULT_DELTA_JOURNAL_SIZE = 256

#: In ``auto`` mode a delta range longer than this skips per-entry
#: validation and wholesale-evicts instead: past a few dozen edits the
#: odds that an entry survives every test drop fast, while the scan cost
#: (entries x deltas comparisons) keeps growing.  ``on`` always validates.
AUTO_DELTA_VALIDATION_LIMIT = 64

# Delta op codes (EdgeDelta.op).
OP_INSERT = "insert"
OP_DELETE = "delete"
OP_REWEIGHT = "reweight"
OP_STRUCTURAL = "structural"


class EdgeDelta(NamedTuple):
    """One journalled mutation.

    ``old``/``new`` are *effective* weights (unit edges record ``1.0``):
    ``old`` is the pre-mutation weight (``None`` for inserts), ``new`` the
    post-mutation weight (``None`` for deletions).  Structural entries
    (node add/remove) carry ``None`` everywhere except ``op`` — consumers
    must treat any range containing one as uncovered.
    """

    op: str
    u: Optional[Node]
    v: Optional[Node]
    old: Optional[float]
    new: Optional[float]


#: The shared marker for node-set changes; one object, compared by ``op``.
STRUCTURAL_DELTA = EdgeDelta(OP_STRUCTURAL, None, None, None, None)


class MutationJournal:
    """A bounded, contiguous record of one graph's edge-level mutations.

    Invariant: the journal covers exactly the version range
    ``[base_version, base_version + len(entries)]`` — entry ``i`` is the
    mutation that produced version ``base_version + i + 1``.  ``record``
    repairs any contiguity break (a mutation that slipped past the hooks,
    which should not happen) by restarting coverage at the new version, so
    consumers can never be handed deltas for the wrong range.
    """

    __slots__ = ("base_version", "entries", "cap", "overflows")

    def __init__(self, base_version: int, cap: int) -> None:
        self.base_version = base_version
        self.entries: "deque[EdgeDelta]" = deque()
        self.cap = cap
        self.overflows = 0

    @property
    def version(self) -> int:
        """The newest graph version the journal covers."""
        return self.base_version + len(self.entries)

    def record(self, version: int, delta: EdgeDelta) -> None:
        """Append the delta that produced ``version``."""
        if version != self.base_version + len(self.entries) + 1:
            self.entries.clear()
            self.base_version = version - 1
        self.entries.append(delta)
        while len(self.entries) > self.cap:
            self.entries.popleft()
            self.base_version += 1
            self.overflows += 1

    def slice(self, old_version: int, new_version: int) -> Optional[List[EdgeDelta]]:
        """The deltas covering ``old_version -> new_version``, or ``None``.

        ``None`` means the range is uncovered (overflowed past the cap,
        or the journal is not at ``new_version``) or crosses a structural
        edit; callers fall back to wholesale eviction.
        """
        if (
            old_version < self.base_version
            or old_version > new_version
            or new_version != self.version
        ):
            return None
        deltas = list(islice(self.entries, old_version - self.base_version, None))
        for delta in deltas:
            if delta.op == OP_STRUCTURAL:
                return None
        return deltas


# ---------------------------------------------------------------------------
# The dag_cache_delta knob
# ---------------------------------------------------------------------------
_default_delta: Optional[str] = None
_journal_size_override: Optional[int] = None

# EnvMirroredOverride lives in repro.parallel, which (indirectly) imports
# this module at import time: parallel -> graphs.csr -> graphs.delta.  The
# mirrors are therefore created lazily, on the first setter call.
_delta_env_mirror = None
_journal_size_env_mirror = None


def _mirror(name: str):
    global _delta_env_mirror, _journal_size_env_mirror
    from repro.parallel import EnvMirroredOverride

    if name == DAG_CACHE_DELTA_ENV_VAR:
        if _delta_env_mirror is None:
            _delta_env_mirror = EnvMirroredOverride(DAG_CACHE_DELTA_ENV_VAR)
        return _delta_env_mirror
    if _journal_size_env_mirror is None:
        _journal_size_env_mirror = EnvMirroredOverride(DELTA_JOURNAL_SIZE_ENV_VAR)
    return _journal_size_env_mirror


def _check_delta_name(value: str, *, source: str = "dag_cache_delta") -> None:
    """Raise a uniform error for an invalid delta-mode name."""
    if value not in _DELTA_CHOICES:
        raise ValueError(
            f"{source}={value!r} is not a valid delta-invalidation mode; "
            f"choose one of {_DELTA_CHOICES} (the default can also be set "
            f"via the {DAG_CACHE_DELTA_ENV_VAR} environment variable)"
        )


def _env_delta() -> Optional[str]:
    """Return the validated ``REPRO_DAG_CACHE_DELTA`` value (``None`` = unset)."""
    env = os.environ.get(DAG_CACHE_DELTA_ENV_VAR, "").strip().lower()
    if not env:
        return None
    _check_delta_name(env, source=DAG_CACHE_DELTA_ENV_VAR)
    return env


def default_dag_cache_delta() -> str:
    """Return the mode used when callers pass ``dag_cache_delta=None``.

    Resolution order: :func:`set_default_dag_cache_delta` override, then
    the ``REPRO_DAG_CACHE_DELTA`` environment variable, then ``"auto"``.
    """
    if _default_delta is not None:
        return _default_delta
    env = _env_delta()
    if env is not None:
        return env
    return DELTA_AUTO


def set_default_dag_cache_delta(mode: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide delta-invalidation mode.

    Mirrored into ``REPRO_DAG_CACHE_DELTA`` via the
    :class:`repro.parallel.EnvMirroredOverride` protocol so spawn workers
    resolve the same mode; ``None`` restores the environment variable the
    first override displaced.
    """
    global _default_delta
    if mode is not None:
        _check_delta_name(mode)
    _mirror(DAG_CACHE_DELTA_ENV_VAR).set(mode)
    _default_delta = mode


def resolve_dag_cache_delta(mode: Optional[str] = None) -> str:
    """Map a user-facing ``dag_cache_delta`` argument to a concrete mode.

    An invalid ``REPRO_DAG_CACHE_DELTA`` value is rejected eagerly,
    matching :func:`repro.graphs.sssp.resolve_weighted`.
    """
    env = _env_delta()
    if mode is None:
        if _default_delta is not None:
            return _default_delta
        return env if env is not None else DELTA_AUTO
    _check_delta_name(mode)
    return mode


def _env_journal_size() -> Optional[int]:
    """Return the validated ``REPRO_DELTA_JOURNAL_SIZE`` (``None`` = unset)."""
    env = os.environ.get(DELTA_JOURNAL_SIZE_ENV_VAR, "").strip()
    if not env:
        return None
    try:
        value = int(env)
    except ValueError:
        raise ValueError(
            f"{DELTA_JOURNAL_SIZE_ENV_VAR}={env!r} is not a valid journal "
            "size; expected a positive integer"
        ) from None
    if value < 1:
        raise ValueError(
            f"{DELTA_JOURNAL_SIZE_ENV_VAR} must be >= 1, got {value}"
        )
    return value


def resolve_delta_journal_size() -> int:
    """The cap newly armed journals are built with.

    Resolution order: :func:`set_default_delta_journal_size` override, then
    the ``REPRO_DELTA_JOURNAL_SIZE`` environment variable, then
    :data:`DEFAULT_DELTA_JOURNAL_SIZE`.
    """
    env = _env_journal_size()
    if _journal_size_override is not None:
        return _journal_size_override
    return env if env is not None else DEFAULT_DELTA_JOURNAL_SIZE


def set_default_delta_journal_size(size: Optional[int]) -> None:
    """Set (or with ``None`` clear) the default journal cap.

    Mirrored into ``REPRO_DELTA_JOURNAL_SIZE`` so spawn workers arm their
    journals with the same cap; ``None`` restores the variable the first
    override displaced.  Already-armed journals keep their cap — the knob
    applies to journals armed afterwards.
    """
    global _journal_size_override
    if size is not None:
        if isinstance(size, bool) or not isinstance(size, int):
            raise TypeError(
                f"delta_journal_size must be a positive int, "
                f"got {type(size).__name__}"
            )
        if size < 1:
            raise ValueError(f"delta_journal_size must be >= 1, got {size}")
    _mirror(DELTA_JOURNAL_SIZE_ENV_VAR).set(
        None if size is None else str(size)
    )
    _journal_size_override = size


# ---------------------------------------------------------------------------
# Per-graph journal plumbing
# ---------------------------------------------------------------------------
def track(graph) -> Optional[MutationJournal]:
    """Arm the mutation journal of ``graph`` (no-op when the knob is off).

    Caches call this when they snapshot a graph, so subsequent mutations
    are journalled and the snapshot can be patched / validated instead of
    rebuilt.  With ``dag_cache_delta=off`` nothing is armed and mutation
    hooks stay single-``None``-check cheap — byte-for-byte the pre-delta
    behaviour.
    """
    if resolve_dag_cache_delta() == DELTA_OFF:
        return None
    journal = getattr(graph, "_journal", None)
    if journal is None:
        journal = MutationJournal(graph._version, resolve_delta_journal_size())
        try:
            graph._journal = journal
        except AttributeError:
            # Frozen snapshots (CSRGraph payloads) have no journal slot —
            # they never mutate, so there is nothing to track.
            return None
    return journal


def deltas_between(graph, old_version: int) -> Optional[List[EdgeDelta]]:
    """Edge deltas covering ``old_version -> graph._version``, or ``None``.

    ``None`` — the wholesale fallback — when delta invalidation is off,
    the graph has no journal, the range is uncovered (overflow), or it
    crosses a structural (node-set) change.
    """
    if resolve_dag_cache_delta() == DELTA_OFF:
        return None
    journal = getattr(graph, "_journal", None)
    if journal is None:
        return None
    return journal.slice(old_version, graph._version)


def journal_overflows(graph) -> int:
    """How many journal entries ``graph`` has dropped past the cap."""
    journal = getattr(graph, "_journal", None)
    return 0 if journal is None else journal.overflows


# ---------------------------------------------------------------------------
# The per-source validity test
# ---------------------------------------------------------------------------
def delta_affects_source(
    delta: EdgeDelta,
    dist_of: Callable[[Node], Optional[float]],
    *,
    weighted: bool,
    tie_sensitive: bool,
) -> bool:
    """Whether one journalled edit can change a cached traversal.

    ``dist_of`` maps a node label to its cached distance from the entry's
    source (``None`` = unreachable).  ``weighted`` selects the entry's
    metric: hop entries see every edge at weight 1 and are immune to
    reweights; weighted entries use the journalled weights.
    ``tie_sensitive`` is set for DAG/sigma entries, which must also evict
    when an edit creates or destroys an *equal-length* path (path counts
    change even though distances do not).

    The arithmetic deliberately replicates the kernels' relaxation step —
    one addition, one comparison on the cached float distances — so the
    verdict matches what a fresh traversal would do, bit for bit.  Any
    uncertain case (an edit touching exactly one reachable endpoint, an
    unknown op) reports "affected": retention is only ever claimed when
    provably safe.
    """
    if delta.op == OP_STRUCTURAL:
        return True
    du = dist_of(delta.u)
    dv = dist_of(delta.v)
    if du is None and dv is None:
        # Both endpoints unreachable from the source: the edit lives in a
        # component the traversal never saw.  A pure edge edit cannot
        # connect it (that would need an endpoint on the reachable side).
        return False
    if du is None or dv is None:
        # One endpoint reachable: an insert bridges components, a delete
        # here means the cached entry disagrees with the journal.  Evict.
        return True
    if delta.op == OP_INSERT:
        w = delta.new if weighted else 1
        if du + w < dv or dv + w < du:
            return True
        return tie_sensitive and (du + w == dv or dv + w == du)
    if delta.op == OP_DELETE:
        w = delta.old if weighted else 1
        # The edge matters iff it lies on some shortest path from the
        # source — exactly the relaxation equality.  (Equality may keep
        # distances intact via an alternative path, but proving that
        # needs more than O(1); evict conservatively.)
        return du + w == dv or dv + w == du
    if delta.op == OP_REWEIGHT:
        if not weighted:
            return False  # hop metric: weights are invisible
        if delta.new < delta.old:
            # A decrease behaves like inserting the cheaper edge.
            if du + delta.new < dv or dv + delta.new < du:
                return True
            return tie_sensitive and (
                du + delta.new == dv or dv + delta.new == du
            )
        # An increase behaves like deleting the old edge: it only matters
        # if the edge was on a shortest path at its old weight.
        return du + delta.old == dv or dv + delta.old == du
    return True
