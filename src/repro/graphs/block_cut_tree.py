"""Block-cut tree, out-reach sets and the cutpoint betweenness correction.

These are the quantities Section IV-A of the paper derives for the
intra-component shortest path (ISP) sample space:

* the **block-cut tree** ``GT`` with one node per block and per cutpoint;
* the **out-reach set** size ``r_i(v)`` — how many nodes can be reached from
  ``v`` without entering block ``C_i`` (Claim 9 / Eq. 18);
* the **branch size** ``|T_i(v)| = n - r_i(v)``;
* the per-block pair weight ``W_i = n^2 - sum_{s in C_i} r_i(s)^2`` which
  equals ``sum_{s != t in C_i} r_i(s) r_i(t)`` and drives ``gamma`` (Eq. 19),
  ``eta`` (Eq. 23) and the multistage sampler ``Gen_bc``;
* the cutpoint correction ``bc_a(v)`` — the probability that a random
  shortest path *breaks* at ``v`` (Lemma 14 / Eq. 21).

All of these assume a connected graph, matching the paper's benchmark
networks; :class:`BlockCutTree` raises :class:`~repro.errors.GraphError`
otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.errors import GraphError
from repro.graphs.biconnected import BiconnectedDecomposition, biconnected_components
from repro.graphs.components import is_connected
from repro.graphs.graph import Graph

Node = Hashable
TreeNode = Tuple[str, object]  # ("block", index) or ("cut", node)


@dataclass
class BlockCutTree:
    """Block-cut tree of a connected graph plus the ISP bookkeeping.

    Use :func:`build_block_cut_tree` to construct one.

    Attributes
    ----------
    graph:
        The underlying connected graph.
    decomposition:
        The biconnected decomposition (blocks + cutpoints).
    tree_adjacency:
        Adjacency of the block-cut tree over ``("block", i)`` and
        ``("cut", v)`` nodes.
    out_reach:
        ``out_reach[i][v] = r_i(v)`` for every block ``i`` and node
        ``v in C_i``.
    branch_sizes:
        ``branch_sizes[v][i] = |T_i(v)| = n - r_i(v)`` for every cutpoint
        ``v`` and block ``i`` containing it.
    block_pair_weight:
        ``W_i = n^2 - sum_{s in C_i} r_i(s)^2``.
    bc_a:
        ``bc_a[v]`` for every node (0 for non-cutpoints).
    gamma:
        Normalizer ``gamma`` of the ISP distribution (Eq. 19).
    """

    graph: Graph
    decomposition: BiconnectedDecomposition
    tree_adjacency: Dict[TreeNode, List[TreeNode]]
    out_reach: List[Dict[Node, int]]
    branch_sizes: Dict[Node, Dict[int, int]]
    block_pair_weight: List[int]
    bc_a: Dict[Node, float]
    gamma: float
    _block_subgraphs: Dict[int, Graph] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        """Number of biconnected components."""
        return len(self.decomposition.components)

    def block_nodes(self, index: int) -> List[Node]:
        """Return the node list of block ``index``."""
        return self.decomposition.components[index]

    def blocks_of(self, node: Node) -> List[int]:
        """Return the indices of blocks containing ``node``."""
        return self.decomposition.components_of(node)

    def out_reach_of(self, block_index: int, node: Node) -> int:
        """Return ``r_{block_index}(node)``.

        Raises
        ------
        GraphError
            If ``node`` is not part of the block.
        """
        try:
            return self.out_reach[block_index][node]
        except (IndexError, KeyError):
            raise GraphError(
                f"node {node!r} is not in block {block_index}"
            ) from None

    def block_subgraph(self, index: int) -> Graph:
        """Return (and cache) the induced subgraph of block ``index``.

        Because any edge joining two nodes of a block belongs to that block,
        the induced subgraph equals the block itself.
        """
        if index not in self._block_subgraphs:
            self._block_subgraphs[index] = self.graph.subgraph(
                self.decomposition.components[index]
            )
        return self._block_subgraphs[index]

    def pair_weight_total(self) -> int:
        """Return ``sum_i W_i = n(n-1) * gamma``."""
        return sum(self.block_pair_weight)


def build_block_cut_tree(
    graph: Graph, decomposition: Optional[BiconnectedDecomposition] = None
) -> BlockCutTree:
    """Build the :class:`BlockCutTree` of a connected graph.

    Parameters
    ----------
    graph:
        A connected graph with at least two nodes.
    decomposition:
        Optionally a pre-computed biconnected decomposition (to avoid doing
        the DFS twice).

    Raises
    ------
    GraphError
        If the graph is empty, has a single node, or is disconnected.
    """
    n = graph.number_of_nodes()
    if n < 2:
        raise GraphError(f"block-cut tree needs at least 2 nodes, got {n}")
    if not is_connected(graph):
        raise GraphError(
            "block-cut tree requires a connected graph; "
            "extract the largest connected component first"
        )
    if decomposition is None:
        decomposition = biconnected_components(graph)
    blocks = decomposition.components
    cutpoints = decomposition.cutpoints

    # ------------------------------------------------------------------
    # Block-cut tree adjacency.
    # ------------------------------------------------------------------
    tree_adjacency: Dict[TreeNode, List[TreeNode]] = {}
    for index in range(len(blocks)):
        tree_adjacency[("block", index)] = []
    for cutpoint in cutpoints:
        tree_adjacency[("cut", cutpoint)] = []
    for index, nodes in enumerate(blocks):
        for node in nodes:
            if node in cutpoints:
                tree_adjacency[("block", index)].append(("cut", node))
                tree_adjacency[("cut", node)].append(("block", index))

    # ------------------------------------------------------------------
    # Subtree sizes in the rooted block-cut tree.
    # Each graph node contributes to exactly one tree node: cutpoints to
    # their ("cut", v) node, all other nodes to their unique block.
    # ------------------------------------------------------------------
    contribution: Dict[TreeNode, int] = {}
    for index, nodes in enumerate(blocks):
        contribution[("block", index)] = sum(
            1 for node in nodes if node not in cutpoints
        )
    for cutpoint in cutpoints:
        contribution[("cut", cutpoint)] = 1

    root: TreeNode = ("block", 0)
    parent: Dict[TreeNode, Optional[TreeNode]] = {root: None}
    order: List[TreeNode] = []
    stack = [root]
    while stack:
        tree_node = stack.pop()
        order.append(tree_node)
        for child in tree_adjacency[tree_node]:
            if child not in parent:
                parent[child] = tree_node
                stack.append(child)
    subtree: Dict[TreeNode, int] = {node: contribution[node] for node in order}
    for tree_node in reversed(order):
        parent_node = parent[tree_node]
        if parent_node is not None:
            subtree[parent_node] += subtree[tree_node]

    # ------------------------------------------------------------------
    # Branch sizes f(v, C_i) = |T_i(v)| for every cutpoint v and block
    # C_i containing v, derived from the rooted subtree sizes.
    # ------------------------------------------------------------------
    branch_sizes: Dict[Node, Dict[int, int]] = {}
    for cutpoint in cutpoints:
        cut_tree_node: TreeNode = ("cut", cutpoint)
        branches: Dict[int, int] = {}
        for adjacent in tree_adjacency[cut_tree_node]:
            block_index = adjacent[1]
            if parent[adjacent] == cut_tree_node:
                branches[block_index] = subtree[adjacent]
            else:
                branches[block_index] = n - subtree[cut_tree_node]
        branch_sizes[cutpoint] = branches

    # ------------------------------------------------------------------
    # Out-reach sets r_i(v): 1 for non-cutpoints, n - |T_i(v)| for cutpoints.
    # ------------------------------------------------------------------
    out_reach: List[Dict[Node, int]] = []
    for index, nodes in enumerate(blocks):
        reach: Dict[Node, int] = {}
        for node in nodes:
            if node in cutpoints:
                reach[node] = n - branch_sizes[node][index]
            else:
                reach[node] = 1
        out_reach.append(reach)

    # ------------------------------------------------------------------
    # Per-block pair weight W_i = n^2 - sum r_i(s)^2 and gamma.
    # ------------------------------------------------------------------
    block_pair_weight: List[int] = []
    for index, reach in enumerate(out_reach):
        sum_sq = sum(value * value for value in reach.values())
        block_pair_weight.append(n * n - sum_sq)
    gamma = sum(block_pair_weight) / (n * (n - 1))

    # ------------------------------------------------------------------
    # Cutpoint correction bc_a(v): probability that a uniformly random
    # shortest path breaks at v, i.e. its endpoints fall in two different
    # branches around v.
    # ------------------------------------------------------------------
    bc_a: Dict[Node, float] = {node: 0.0 for node in graph.nodes()}
    for cutpoint, branches in branch_sizes.items():
        total = sum(branches.values())  # equals n - 1
        sum_sq = sum(value * value for value in branches.values())
        bc_a[cutpoint] = (total * total - sum_sq) / (n * (n - 1))

    return BlockCutTree(
        graph=graph,
        decomposition=decomposition,
        tree_adjacency=tree_adjacency,
        out_reach=out_reach,
        branch_sizes=branch_sizes,
        block_pair_weight=block_pair_weight,
        bc_a=bc_a,
        gamma=gamma,
    )
