"""Graph readers and writers.

Supported formats:

* **edge list** — one ``u v`` pair (optionally ``u v weight``) per line;
  ``#`` and ``%`` comment lines are skipped.  This is the format the SNAP
  datasets used in the paper (Flickr, LiveJournal, Orkut) ship in, so real
  data can be dropped in directly; weighted edge lists round-trip through
  :func:`write_edge_list`.
* **DIMACS** — the ``c`` / ``p sp n m`` / ``a u v w`` format of the 9th DIMACS
  shortest-path challenge used for the USA-road networks.  Arc weights (road
  lengths) are kept when ``weighted=True`` and dropped otherwise, matching
  the paper's hop-distance evaluation while letting the weighted SSSP engine
  run real road lengths.

Every reader **streams**: lines are parsed one at a time straight off the
file handle, so parse memory is O(1) in the file size — a 24M-node USA-road
``.gr`` file never exists in memory as anything but the graph being built.
The parse layer is also exposed directly as the lazy generators
:func:`iter_edge_list` and :func:`iter_dimacs_arcs`, for callers that want
the edge stream without materialising a :class:`Graph` at all (e.g. piping
straight into an external partitioner, or counting/filtering edges of files
bigger than RAM).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Tuple, Union

from repro.errors import GraphError
from repro.graphs.graph import Graph

PathLike = Union[str, Path]

#: One streamed edge: ``(u, v, weight)`` with ``weight=None`` for unit edges.
EdgeRecord = Tuple[object, object, Optional[float]]


def _parse_weight(token: str, path: PathLike, line_number: int) -> float:
    """Parse one weight token, attributing malformed values to their line."""
    try:
        weight = float(token)
    except ValueError:
        raise GraphError(
            f"{path}:{line_number}: malformed edge weight {token!r}"
        ) from None
    return weight


# ----------------------------------------------------------------------
# Edge lists
# ----------------------------------------------------------------------
def _iter_edge_records(
    path: PathLike, node_type: Callable, comments: Iterable[str]
) -> Iterator[Tuple[int, object, object, Optional[float]]]:
    """Stream ``(line_number, u, v, weight)`` records off an edge-list file.

    The shared parse layer of :func:`iter_edge_list` and
    :func:`read_edge_list`: one line in memory at a time, full per-line
    validation, self loops dropped (SNAP files occasionally contain them).
    """
    prefixes = tuple(comments)
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith(prefixes):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(
                    f"{path}:{line_number}: expected 'u v' or 'u v weight', "
                    f"got {line!r}"
                )
            u, v = node_type(parts[0]), node_type(parts[1])
            if u == v:
                continue
            weight = None
            if len(parts) >= 3:
                weight = _parse_weight(parts[2], path, line_number)
            yield line_number, u, v, weight


def iter_edge_list(
    path: PathLike,
    *,
    node_type: Callable = int,
    comments: Iterable[str] = ("#", "%"),
) -> Iterator[EdgeRecord]:
    """Lazily stream ``(u, v, weight)`` edges from an edge-list file.

    ``weight`` is ``None`` for two-column (unit) lines.  Parsing is fully
    lazy — each line is read, validated and yielded before the next is
    touched, so memory stays O(1) in file size and a partially-consumed
    iterator never reads (or validates) the rest of the file.  Self loops
    are dropped, comment lines skipped; malformed lines raise
    :class:`GraphError` with the path and line number when (and only when)
    the stream reaches them.
    """
    for _line_number, u, v, weight in _iter_edge_records(path, node_type, comments):
        yield u, v, weight


def read_edge_list(
    path: PathLike,
    *,
    node_type: Callable = int,
    comments: Iterable[str] = ("#", "%"),
    directed_as_undirected: bool = True,
) -> Graph:
    """Read a whitespace-separated edge list into a :class:`Graph`.

    Each non-comment line is ``u v`` or ``u v weight``; the optional third
    column is a positive edge length (lines without it default to unit
    weight, so mixed files work).  The file is streamed line by line
    (O(1) parse memory); use :func:`iter_edge_list` for the raw edge
    stream without building a graph.

    Parameters
    ----------
    path:
        File to read.
    node_type:
        Callable applied to each token to build the node id (default ``int``).
    comments:
        Line prefixes to skip.
    directed_as_undirected:
        The SNAP social graphs list each arc once per direction; duplicates
        are collapsed by the simple-graph invariant (first occurrence wins,
        weight included), so this flag only documents intent.

    Raises
    ------
    GraphError
        If a non-comment line does not contain at least two tokens, a weight
        token is malformed or non-positive (with the line number), or a
        self-loop is encountered.
    """
    del directed_as_undirected  # duplicates/reverse arcs collapse naturally
    graph = Graph()
    for line_number, u, v, weight in _iter_edge_records(path, node_type, comments):
        if weight is not None:
            try:
                graph.add_edge(u, v, weight=weight)
            except GraphError as error:
                raise GraphError(f"{path}:{line_number}: {error}") from None
        else:
            graph.add_edge(u, v)
    return graph


def write_edge_list(graph: Graph, path: PathLike, *, header: Optional[str] = None) -> None:
    """Write ``graph`` as an edge list (one undirected edge per line).

    Weighted graphs are written as ``u v weight`` (``repr`` of the float, so
    weights round-trip through :func:`read_edge_list` exactly); unit-weight
    graphs keep the historical two-column ``u v`` format.
    """
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes: {graph.number_of_nodes()} edges: {graph.number_of_edges()}\n")
        if graph.is_weighted:
            for u, v, weight in graph.weighted_edges():
                handle.write(f"{u} {v} {weight!r}\n")
        else:
            for u, v in graph.edges():
                handle.write(f"{u} {v}\n")


# ----------------------------------------------------------------------
# DIMACS
# ----------------------------------------------------------------------
def _iter_dimacs_records(
    path: PathLike, weighted: bool
) -> Iterator[Tuple[str, int, object, object, Optional[float]]]:
    """Stream DIMACS records: ``("p", line, declared_nodes, None, None)`` or
    ``("a", line, u, v, weight)``.

    The shared parse layer of :func:`iter_dimacs_arcs` and
    :func:`read_dimacs_graph` — one line in memory at a time.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) < 4:
                    raise GraphError(f"{path}:{line_number}: malformed problem line {line!r}")
                yield "p", line_number, int(parts[2]), None, None
            elif parts[0] == "a":
                if len(parts) < 3:
                    raise GraphError(f"{path}:{line_number}: malformed arc line {line!r}")
                u, v = int(parts[1]), int(parts[2])
                if u == v:
                    continue
                weight = None
                if weighted:
                    if len(parts) < 4:
                        raise GraphError(
                            f"{path}:{line_number}: arc line has no weight: {line!r}"
                        )
                    weight = _parse_weight(parts[3], path, line_number)
                yield "a", line_number, u, v, weight
            else:
                raise GraphError(f"{path}:{line_number}: unrecognised line {line!r}")


def iter_dimacs_arcs(
    path: PathLike, *, weighted: bool = False
) -> Iterator[EdgeRecord]:
    """Lazily stream ``(u, v, weight)`` arcs from a DIMACS ``.gr`` file.

    Comment and problem (``p``) lines are validated and skipped; with
    ``weighted=False`` (the paper's hop-distance setting) ``weight`` is
    ``None``, with ``weighted=True`` it is the parsed arc length.  Fully
    lazy — O(1) memory in file size, and a partially-consumed iterator
    never reads the rest of the file.  Self loops are dropped; malformed
    lines raise :class:`GraphError` naming the path and line number when
    the stream reaches them.
    """
    for kind, _line_number, u, v, weight in _iter_dimacs_records(path, weighted):
        if kind == "a":
            yield u, v, weight


def read_dimacs_graph(path: PathLike, *, weighted: bool = False) -> Graph:
    """Read a DIMACS shortest-path challenge ``.gr`` file.

    The format is::

        c comment
        p sp <num_nodes> <num_arcs>
        a <u> <v> <weight>

    Both arc directions collapse into one undirected edge (first occurrence
    wins).  With ``weighted=False`` (the default, the paper's hop-distance
    setting) arc weights are dropped; with ``weighted=True`` they are kept
    as edge lengths for the weighted SSSP engine.  Node ids in DIMACS are
    1-based and are kept as-is.  The file is streamed line by line (O(1)
    parse memory); use :func:`iter_dimacs_arcs` for the raw arc stream.
    """
    graph = Graph()
    declared_nodes: Optional[int] = None
    for kind, line_number, u, v, weight in _iter_dimacs_records(path, weighted):
        if kind == "p":
            declared_nodes = u
        elif weight is not None:
            try:
                graph.add_edge(u, v, weight=weight)
            except GraphError as error:
                raise GraphError(f"{path}:{line_number}: {error}") from None
        else:
            graph.add_edge(u, v)
    if declared_nodes is not None:
        # DIMACS nodes are 1..n even if isolated; make sure they all exist.
        for node in range(1, declared_nodes + 1):
            graph.add_node(node)
    return graph


def read_coordinates(path: PathLike) -> dict:
    """Read a DIMACS ``.co`` coordinate file into ``{node: (x, y)}``.

    The format is ``v <node> <x> <y>``.  Used by the USA-road case study to
    carve geographic sub-areas (Table III / Fig. 7).
    """
    coords = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith(("c", "p")):
                continue
            parts = line.split()
            if parts[0] != "v" or len(parts) < 4:
                raise GraphError(f"{path}:{line_number}: malformed coordinate line {line!r}")
            coords[int(parts[1])] = (int(parts[2]), int(parts[3]))
    return coords
