"""Graph readers and writers.

Supported formats:

* **edge list** — one ``u v`` pair (optionally ``u v weight``) per line;
  ``#`` and ``%`` comment lines are skipped.  This is the format the SNAP
  datasets used in the paper (Flickr, LiveJournal, Orkut) ship in, so real
  data can be dropped in directly; weighted edge lists round-trip through
  :func:`write_edge_list`.
* **DIMACS** — the ``c`` / ``p sp n m`` / ``a u v w`` format of the 9th DIMACS
  shortest-path challenge used for the USA-road networks.  Arc weights (road
  lengths) are kept when ``weighted=True`` and dropped otherwise, matching
  the paper's hop-distance evaluation while letting the weighted SSSP engine
  run real road lengths.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, Optional, Union

from repro.errors import GraphError
from repro.graphs.graph import Graph

PathLike = Union[str, Path]


def _parse_weight(token: str, path: PathLike, line_number: int) -> float:
    """Parse one weight token, attributing malformed values to their line."""
    try:
        weight = float(token)
    except ValueError:
        raise GraphError(
            f"{path}:{line_number}: malformed edge weight {token!r}"
        ) from None
    return weight


def read_edge_list(
    path: PathLike,
    *,
    node_type: Callable = int,
    comments: Iterable[str] = ("#", "%"),
    directed_as_undirected: bool = True,
) -> Graph:
    """Read a whitespace-separated edge list into a :class:`Graph`.

    Each non-comment line is ``u v`` or ``u v weight``; the optional third
    column is a positive edge length (lines without it default to unit
    weight, so mixed files work).

    Parameters
    ----------
    path:
        File to read.
    node_type:
        Callable applied to each token to build the node id (default ``int``).
    comments:
        Line prefixes to skip.
    directed_as_undirected:
        The SNAP social graphs list each arc once per direction; duplicates
        are collapsed by the simple-graph invariant (first occurrence wins,
        weight included), so this flag only documents intent.

    Raises
    ------
    GraphError
        If a non-comment line does not contain at least two tokens, a weight
        token is malformed or non-positive (with the line number), or a
        self-loop is encountered.
    """
    del directed_as_undirected  # duplicates/reverse arcs collapse naturally
    graph = Graph()
    prefixes = tuple(comments)
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith(prefixes):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphError(
                    f"{path}:{line_number}: expected 'u v' or 'u v weight', "
                    f"got {line!r}"
                )
            u, v = node_type(parts[0]), node_type(parts[1])
            if u == v:
                continue  # SNAP files occasionally contain self loops; drop them
            if len(parts) >= 3:
                weight = _parse_weight(parts[2], path, line_number)
                try:
                    graph.add_edge(u, v, weight=weight)
                except GraphError as error:
                    raise GraphError(f"{path}:{line_number}: {error}") from None
            else:
                graph.add_edge(u, v)
    return graph


def write_edge_list(graph: Graph, path: PathLike, *, header: Optional[str] = None) -> None:
    """Write ``graph`` as an edge list (one undirected edge per line).

    Weighted graphs are written as ``u v weight`` (``repr`` of the float, so
    weights round-trip through :func:`read_edge_list` exactly); unit-weight
    graphs keep the historical two-column ``u v`` format.
    """
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# nodes: {graph.number_of_nodes()} edges: {graph.number_of_edges()}\n")
        if graph.is_weighted:
            for u, v, weight in graph.weighted_edges():
                handle.write(f"{u} {v} {weight!r}\n")
        else:
            for u, v in graph.edges():
                handle.write(f"{u} {v}\n")


def read_dimacs_graph(path: PathLike, *, weighted: bool = False) -> Graph:
    """Read a DIMACS shortest-path challenge ``.gr`` file.

    The format is::

        c comment
        p sp <num_nodes> <num_arcs>
        a <u> <v> <weight>

    Both arc directions collapse into one undirected edge (first occurrence
    wins).  With ``weighted=False`` (the default, the paper's hop-distance
    setting) arc weights are dropped; with ``weighted=True`` they are kept
    as edge lengths for the weighted SSSP engine.  Node ids in DIMACS are
    1-based and are kept as-is.
    """
    graph = Graph()
    declared_nodes: Optional[int] = None
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) < 4:
                    raise GraphError(f"{path}:{line_number}: malformed problem line {line!r}")
                declared_nodes = int(parts[2])
            elif parts[0] == "a":
                if len(parts) < 3:
                    raise GraphError(f"{path}:{line_number}: malformed arc line {line!r}")
                u, v = int(parts[1]), int(parts[2])
                if u == v:
                    continue
                if weighted:
                    if len(parts) < 4:
                        raise GraphError(
                            f"{path}:{line_number}: arc line has no weight: {line!r}"
                        )
                    weight = _parse_weight(parts[3], path, line_number)
                    try:
                        graph.add_edge(u, v, weight=weight)
                    except GraphError as error:
                        raise GraphError(f"{path}:{line_number}: {error}") from None
                else:
                    graph.add_edge(u, v)
            else:
                raise GraphError(f"{path}:{line_number}: unrecognised line {line!r}")
    if declared_nodes is not None:
        # DIMACS nodes are 1..n even if isolated; make sure they all exist.
        for node in range(1, declared_nodes + 1):
            graph.add_node(node)
    return graph


def read_coordinates(path: PathLike) -> dict:
    """Read a DIMACS ``.co`` coordinate file into ``{node: (x, y)}``.

    The format is ``v <node> <x> <y>``.  Used by the USA-road case study to
    carve geographic sub-areas (Table III / Fig. 7).
    """
    coords = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith(("c", "p")):
                continue
            parts = line.split()
            if parts[0] != "v" or len(parts) < 4:
                raise GraphError(f"{path}:{line_number}: malformed coordinate line {line!r}")
            coords[int(parts[1])] = (int(parts[2]), int(parts[3]))
    return coords
