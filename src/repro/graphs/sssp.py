"""The weighted/unweighted SSSP dispatch knob.

The traversal stack has ONE single-source shortest-path abstraction with two
engines behind it:

* **BFS** (`repro.graphs.csr._BatchSweep` and the dict reference loops) —
  the unit-weight case: integer hop distances, level-synchronous expansion,
  batched multi-source sweeps, direction optimisation.
* **Dijkstra** (`repro.graphs.csr.csr_dijkstra_dag` and the dict reference
  in :mod:`repro.graphs.traversal`) — the weighted case: float distances
  over the ``weights`` array of the CSR snapshot, exact shortest-path
  counts, deterministic heap tie-breaking so both backends settle nodes in
  the same order and return bit-identical results.

This module owns the *routing decision*: a user-facing ``weighted``
argument (``None``/``"auto"``/``"on"``/``"off"``), the ``REPRO_WEIGHTED``
environment variable and :func:`set_default_weighted` resolve — mirroring
the backend/workers knob machinery — to a concrete boolean per graph:

* ``"auto"`` (the default): use the weighted engine iff the graph carries
  non-unit edge weights (:attr:`Graph.is_weighted`, an O(1) check).
  Unit-weight graphs therefore take **exactly** the historical BFS code
  paths, bit for bit.
* ``"on"``: force the Dijkstra engine, treating absent weights as ``1.0``
  (the unit-weight A/B used by the equivalence tests and benchmarks).
* ``"off"``: ignore weights and run hop-distance BFS even on weighted
  graphs.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.parallel import EnvMirroredOverride

#: Environment variable overriding the default weighted-routing mode.
WEIGHTED_ENV_VAR = "REPRO_WEIGHTED"

WEIGHTED_AUTO = "auto"
WEIGHTED_ON = "on"
WEIGHTED_OFF = "off"

_WEIGHTED_CHOICES = (WEIGHTED_AUTO, WEIGHTED_ON, WEIGHTED_OFF)

_default_weighted: Optional[str] = None
_env_mirror = EnvMirroredOverride(WEIGHTED_ENV_VAR)


def _check_weighted_name(value: str, *, source: str = "weighted") -> None:
    """Raise a uniform error for an invalid weighted-mode name."""
    if value not in _WEIGHTED_CHOICES:
        raise ValueError(
            f"{source}={value!r} is not a valid weighted mode; choose one of "
            f"{_WEIGHTED_CHOICES} (the default can also be set via the "
            f"{WEIGHTED_ENV_VAR} environment variable)"
        )


def _env_weighted() -> Optional[str]:
    """Return the validated ``REPRO_WEIGHTED`` value, or ``None`` if unset."""
    env = os.environ.get(WEIGHTED_ENV_VAR, "").strip().lower()
    if not env:
        return None
    _check_weighted_name(env, source=WEIGHTED_ENV_VAR)
    return env


def default_weighted() -> str:
    """Return the mode used when callers pass ``weighted=None``.

    Resolution order: :func:`set_default_weighted` override, then the
    ``REPRO_WEIGHTED`` environment variable, then ``"auto"`` (route per
    graph on :attr:`Graph.is_weighted`).
    """
    if _default_weighted is not None:
        return _default_weighted
    env = _env_weighted()
    if env is not None:
        return env
    return WEIGHTED_AUTO


def set_default_weighted(weighted: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide default weighted mode.

    The choice is mirrored into ``REPRO_WEIGHTED`` so worker processes
    resolve the same default under every multiprocessing start method
    (the :class:`repro.parallel.EnvMirroredOverride` protocol shared with
    the workers/shared-memory/DAG-cache knobs); ``None`` restores the
    environment variable the first override displaced.
    """
    global _default_weighted
    if weighted is not None:
        _check_weighted_name(weighted)
    _env_mirror.set(weighted)
    _default_weighted = weighted


def resolve_weighted(weighted: Optional[str] = None) -> str:
    """Map a user-facing ``weighted`` argument to a concrete mode name.

    An invalid ``REPRO_WEIGHTED`` value is rejected here as well (not only
    when it is actually consulted), matching the eager ``REPRO_BACKEND``
    validation in :func:`repro.graphs.csr.resolve_backend`.
    """
    env = _env_weighted()
    if weighted is None:
        if _default_weighted is not None:
            return _default_weighted
        return env if env is not None else WEIGHTED_AUTO
    _check_weighted_name(weighted)
    return weighted


def effective_weighted(graph, weighted: Optional[str] = None) -> bool:
    """Whether one operation on ``graph`` should run the weighted engine.

    ``graph`` may be a :class:`~repro.graphs.graph.Graph` or a bare
    :class:`~repro.graphs.csr.CSRGraph` snapshot (the shared-memory worker
    handoff); both expose the O(1) ``is_weighted`` check the ``"auto"``
    mode routes on.
    """
    mode = resolve_weighted(weighted)
    if mode == WEIGHTED_ON:
        return True
    if mode == WEIGHTED_OFF:
        return False
    return bool(getattr(graph, "is_weighted", False))
