"""The weighted/unweighted SSSP dispatch knob.

The traversal stack has ONE single-source shortest-path abstraction with two
engines behind it:

* **BFS** (`repro.graphs.csr._BatchSweep` and the dict reference loops) —
  the unit-weight case: integer hop distances, level-synchronous expansion,
  batched multi-source sweeps, direction optimisation.
* **Dijkstra** (`repro.graphs.csr.csr_dijkstra_dag` and the dict reference
  in :mod:`repro.graphs.traversal`) — the weighted case: float distances
  over the ``weights`` array of the CSR snapshot, exact shortest-path
  counts, deterministic heap tie-breaking so both backends settle nodes in
  the same order and return bit-identical results.

This module owns the *routing decision*: a user-facing ``weighted``
argument (``None``/``"auto"``/``"on"``/``"off"``), the ``REPRO_WEIGHTED``
environment variable and :func:`set_default_weighted` resolve — mirroring
the backend/workers knob machinery — to a concrete boolean per graph:

* ``"auto"`` (the default): use the weighted engine iff the graph carries
  non-unit edge weights (:attr:`Graph.is_weighted`, an O(1) check).
  Unit-weight graphs therefore take **exactly** the historical BFS code
  paths, bit for bit.
* ``"on"``: force the Dijkstra engine, treating absent weights as ``1.0``
  (the unit-weight A/B used by the equivalence tests and benchmarks).
* ``"off"``: ignore weights and run hop-distance BFS even on weighted
  graphs.

This module also owns the **weighted kernel knob**: once the weighted
engine is selected, ``sssp_kernel`` (``"auto"``/``"dijkstra"``/``"delta"``,
the ``REPRO_SSSP_KERNEL`` environment variable and
:func:`set_default_sssp_kernel`) picks the *execution strategy* — the
per-source binary-heap Dijkstra of PR 5, or the bucket-synchronous
delta-stepping kernel of :mod:`repro.graphs.delta_stepping`.  The two
kernels are **bit-identical** (distances, exact sigma, predecessor append
order, settle order, sampled paths — the delta kernel re-pins Dijkstra's
exact ``(distance, push counter)`` settle order from the final
distances), so like the ``backend`` and ``direction`` knobs this choice
affects speed only.  The dict backend always runs the reference Dijkstra
— it *is* the reference both kernels are pinned to.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.parallel import EnvMirroredOverride

#: Environment variable overriding the default weighted-routing mode.
WEIGHTED_ENV_VAR = "REPRO_WEIGHTED"

WEIGHTED_AUTO = "auto"
WEIGHTED_ON = "on"
WEIGHTED_OFF = "off"

_WEIGHTED_CHOICES = (WEIGHTED_AUTO, WEIGHTED_ON, WEIGHTED_OFF)

_default_weighted: Optional[str] = None
_env_mirror = EnvMirroredOverride(WEIGHTED_ENV_VAR)


def _check_weighted_name(value: str, *, source: str = "weighted") -> None:
    """Raise a uniform error for an invalid weighted-mode name."""
    if value not in _WEIGHTED_CHOICES:
        raise ValueError(
            f"{source}={value!r} is not a valid weighted mode; choose one of "
            f"{_WEIGHTED_CHOICES} (the default can also be set via the "
            f"{WEIGHTED_ENV_VAR} environment variable)"
        )


def _env_weighted() -> Optional[str]:
    """Return the validated ``REPRO_WEIGHTED`` value, or ``None`` if unset."""
    env = os.environ.get(WEIGHTED_ENV_VAR, "").strip().lower()
    if not env:
        return None
    _check_weighted_name(env, source=WEIGHTED_ENV_VAR)
    return env


def default_weighted() -> str:
    """Return the mode used when callers pass ``weighted=None``.

    Resolution order: :func:`set_default_weighted` override, then the
    ``REPRO_WEIGHTED`` environment variable, then ``"auto"`` (route per
    graph on :attr:`Graph.is_weighted`).
    """
    if _default_weighted is not None:
        return _default_weighted
    env = _env_weighted()
    if env is not None:
        return env
    return WEIGHTED_AUTO


def set_default_weighted(weighted: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide default weighted mode.

    The choice is mirrored into ``REPRO_WEIGHTED`` so worker processes
    resolve the same default under every multiprocessing start method
    (the :class:`repro.parallel.EnvMirroredOverride` protocol shared with
    the workers/shared-memory/DAG-cache knobs); ``None`` restores the
    environment variable the first override displaced.
    """
    global _default_weighted
    if weighted is not None:
        _check_weighted_name(weighted)
    _env_mirror.set(weighted)
    _default_weighted = weighted


def resolve_weighted(weighted: Optional[str] = None) -> str:
    """Map a user-facing ``weighted`` argument to a concrete mode name.

    An invalid ``REPRO_WEIGHTED`` value is rejected here as well (not only
    when it is actually consulted), matching the eager ``REPRO_BACKEND``
    validation in :func:`repro.graphs.csr.resolve_backend`.
    """
    env = _env_weighted()
    if weighted is None:
        if _default_weighted is not None:
            return _default_weighted
        return env if env is not None else WEIGHTED_AUTO
    _check_weighted_name(weighted)
    return weighted


def effective_weighted(graph, weighted: Optional[str] = None) -> bool:
    """Whether one operation on ``graph`` should run the weighted engine.

    ``graph`` may be a :class:`~repro.graphs.graph.Graph` or a bare
    :class:`~repro.graphs.csr.CSRGraph` snapshot (the shared-memory worker
    handoff); both expose the O(1) ``is_weighted`` check the ``"auto"``
    mode routes on.
    """
    mode = resolve_weighted(weighted)
    if mode == WEIGHTED_ON:
        return True
    if mode == WEIGHTED_OFF:
        return False
    return bool(getattr(graph, "is_weighted", False))


# ---------------------------------------------------------------------------
# Weighted kernel selection (Dijkstra vs delta-stepping)
# ---------------------------------------------------------------------------

#: Environment variable overriding the default weighted SSSP kernel.
SSSP_KERNEL_ENV_VAR = "REPRO_SSSP_KERNEL"

KERNEL_AUTO = "auto"
KERNEL_DIJKSTRA = "dijkstra"
KERNEL_DELTA = "delta"

_KERNEL_CHOICES = (KERNEL_AUTO, KERNEL_DIJKSTRA, KERNEL_DELTA)

_default_sssp_kernel: Optional[str] = None
_kernel_env_mirror = EnvMirroredOverride(SSSP_KERNEL_ENV_VAR)


def _check_kernel_name(value: str, *, source: str = "sssp_kernel") -> None:
    """Raise a uniform error for an invalid weighted-kernel name."""
    if value not in _KERNEL_CHOICES:
        raise ValueError(
            f"{source}={value!r} is not a valid SSSP kernel; choose one of "
            f"{_KERNEL_CHOICES} (the default can also be set via the "
            f"{SSSP_KERNEL_ENV_VAR} environment variable)"
        )


def _env_sssp_kernel() -> Optional[str]:
    """Return the validated ``REPRO_SSSP_KERNEL`` value, or ``None`` if unset."""
    env = os.environ.get(SSSP_KERNEL_ENV_VAR, "").strip().lower()
    if not env:
        return None
    _check_kernel_name(env, source=SSSP_KERNEL_ENV_VAR)
    return env


def default_sssp_kernel() -> str:
    """Return the kernel used when callers pass ``sssp_kernel=None``.

    Resolution order: :func:`set_default_sssp_kernel` override, then the
    ``REPRO_SSSP_KERNEL`` environment variable, then ``"auto"``.
    """
    if _default_sssp_kernel is not None:
        return _default_sssp_kernel
    env = _env_sssp_kernel()
    if env is not None:
        return env
    return KERNEL_AUTO


def set_default_sssp_kernel(kernel: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide default weighted kernel.

    Mirrored into ``REPRO_SSSP_KERNEL`` via the
    :class:`repro.parallel.EnvMirroredOverride` protocol so spawn workers
    resolve the same kernel; ``None`` restores the environment variable the
    first override displaced.
    """
    global _default_sssp_kernel
    if kernel is not None:
        _check_kernel_name(kernel)
    _kernel_env_mirror.set(kernel)
    _default_sssp_kernel = kernel


def resolve_sssp_kernel(kernel: Optional[str] = None) -> str:
    """Map a user-facing ``sssp_kernel`` argument to a concrete mode name.

    An invalid ``REPRO_SSSP_KERNEL`` value is rejected eagerly, matching
    :func:`resolve_weighted`.
    """
    env = _env_sssp_kernel()
    if kernel is None:
        if _default_sssp_kernel is not None:
            return _default_sssp_kernel
        return env if env is not None else KERNEL_AUTO
    _check_kernel_name(kernel)
    return kernel


def effective_sssp_kernel(
    kernel: Optional[str] = None, *, batched: bool = False
) -> str:
    """Resolve ``sssp_kernel`` to a concrete kernel for one weighted run.

    ``"auto"`` picks delta-stepping for *batched* multi-source sweeps when
    numpy is available — fat stacked frontiers are where the bucket kernel
    beats the per-source heap — and stays on Dijkstra for single-source
    calls (sampler DAG construction), whose thin frontiers favour the
    heap.  Forcing ``"delta"`` routes every weighted call through the
    bucket kernel; without numpy the pure-python bucket loop runs (same
    results, interpreter speed), mirroring the no-numpy CSR degradation.

    The dict backend ignores the knob: it *is* the Dijkstra reference both
    CSR kernels are pinned bit-identical to, so routing it would change
    nothing but indirection.
    """
    mode = resolve_sssp_kernel(kernel)
    if mode != KERNEL_AUTO:
        return mode
    from repro.graphs.csr import HAS_NUMPY

    if batched and HAS_NUMPY:
        return KERNEL_DELTA
    return KERNEL_DIJKSTRA
