"""Compressed-sparse-row graph engine and the pluggable traversal backends.

Every traversal hot path in this reproduction (plain BFS, shortest-path DAG
construction, Brandes dependency accumulation, bidirectional search, the
samplers built on top of them) was originally written against the
``dict[node, dict[node, None]]`` adjacency of :class:`~repro.graphs.graph.Graph`.
That representation is flexible — nodes are arbitrary hashables — but every
edge scan pays Python-level hashing.  This module provides the array-based
alternative:

* :class:`CSRGraph` — a frozen compressed-sparse-row snapshot of a
  :class:`Graph`: ``indptr``/``indices`` arrays over integer node indices
  ``0..n-1`` plus the label↔index mapping (labels keep the graph's insertion
  order, exactly like :meth:`Graph.relabeled`).
* :func:`as_csr` — build-and-cache: snapshots are cached per graph object and
  invalidated automatically when the graph mutates (via ``Graph._version``).
* Integer-index kernels — ``csr_bfs``, ``csr_shortest_path_dag``,
  ``csr_brandes`` — vectorised with numpy when it is importable and falling
  back to pure-Python loops over the same flat arrays otherwise.
* Backend selection — :func:`resolve_backend` maps a user-facing
  ``backend=`` argument (``None``/``"auto"``/``"dict"``/``"csr"``) to a
  concrete backend, honouring the ``REPRO_BACKEND`` environment variable.

Determinism contract
--------------------
The CSR kernels are written to be *bit-identical* to the dict reference
implementations, not merely statistically equivalent: neighbour order equals
dict insertion order, BFS settles nodes in the same order, sigma counts and
Brandes dependencies accumulate in the same order (so even float rounding
matches), and path sampling consumes the RNG identically.  The backend
equivalence property tests assert this.

Shortest-path counts (``sigma``) are exact.  They start in fast ``int64``
arrays; before expanding a level whose counts could overflow (conservative
guard: ``max sigma * max degree >= 2**63``), the kernel switches to
arbitrary-precision Python ints for the remaining levels.  This matters in
practice: on road-style grids ``sigma`` grows like a binomial coefficient
and exceeds ``2**63`` at hop distances around 70.
"""

from __future__ import annotations

import os
from array import array
from collections import deque
from typing import Dict, Hashable, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

from repro.errors import GraphError
from repro.graphs.graph import Graph

try:  # numpy is optional: the CSR backend degrades to pure-Python loops.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

HAS_NUMPY = _np is not None

Node = Hashable

#: Backend names accepted by every ``backend=`` parameter.
DICT_BACKEND = "dict"
CSR_BACKEND = "csr"
AUTO_BACKEND = "auto"
BACKENDS = (DICT_BACKEND, CSR_BACKEND)

#: Environment variable overriding the default backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"

_default_backend: Optional[str] = None

#: Below this many nodes + edges the ``auto`` choice stays on the dict
#: backend: snapshot construction and per-level array overhead only pay off
#: once a graph has a few hundred adjacency entries.
AUTO_CSR_THRESHOLD = 512


_BACKEND_CHOICES = BACKENDS + (AUTO_BACKEND,)


def default_backend() -> str:
    """Return the backend used when callers pass ``backend=None``.

    Resolution order: :func:`set_default_backend` override, then the
    ``REPRO_BACKEND`` environment variable, then ``"auto"`` (pick per graph).
    """
    if _default_backend is not None:
        return _default_backend
    env = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
    if env:
        if env not in _BACKEND_CHOICES:
            raise ValueError(
                f"{BACKEND_ENV_VAR}={env!r} is not a valid backend; "
                f"choose one of {_BACKEND_CHOICES}"
            )
        return env
    return AUTO_BACKEND


def set_default_backend(backend: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide default backend.

    ``"auto"`` is a valid setting: it restores per-graph selection,
    overriding any ``REPRO_BACKEND`` environment variable.
    """
    global _default_backend
    if backend is not None and backend not in _BACKEND_CHOICES:
        raise ValueError(
            f"unknown backend {backend!r}; choose one of {_BACKEND_CHOICES}"
        )
    _default_backend = backend


def resolve_backend(backend: Optional[str] = None) -> str:
    """Map a user-facing ``backend`` argument to a backend name.

    May return ``"auto"``, meaning "decide per graph" — dispatch sites pass
    the graph through :func:`effective_backend` instead when they can.
    """
    if backend is None:
        backend = default_backend()
    if backend not in BACKENDS and backend != AUTO_BACKEND:
        raise ValueError(f"unknown backend {backend!r}; choose one of {BACKENDS}")
    return backend


def effective_backend(
    graph: Graph,
    backend: Optional[str] = None,
    *,
    auto_threshold: Optional[int] = None,
) -> str:
    """Choose the concrete backend for one operation on ``graph``.

    Explicit choices (argument, :func:`set_default_backend`, or the
    ``REPRO_BACKEND`` variable) are always honoured.  The remaining ``auto``
    case picks CSR when numpy is available and the graph is large enough for
    the array kernels to win (or already has a cached snapshot), and the dict
    reference otherwise.  Both backends return identical results, so the
    heuristic affects speed only.

    Parameters
    ----------
    auto_threshold:
        Override the ``n + m`` size cutoff for the ``auto`` case; kernels
        whose CSR variant has a higher per-call fixed cost (the bidirectional
        search allocates per-query state arrays) pass a larger cutoff.
    """
    resolved = resolve_backend(backend)
    if resolved != AUTO_BACKEND:
        return resolved
    if not HAS_NUMPY:
        return DICT_BACKEND
    threshold = AUTO_CSR_THRESHOLD if auto_threshold is None else auto_threshold
    if graph.number_of_nodes() + graph.number_of_edges() >= threshold:
        return CSR_BACKEND
    if auto_threshold is None and graph in _csr_cache:
        return CSR_BACKEND
    return DICT_BACKEND


# ----------------------------------------------------------------------
# The CSR snapshot
# ----------------------------------------------------------------------
class CSRGraph:
    """A frozen compressed-sparse-row view of an undirected graph.

    Attributes
    ----------
    n, m:
        Node and (undirected) edge counts.
    indptr:
        Length ``n + 1`` array; the neighbours of node ``i`` occupy
        ``indices[indptr[i]:indptr[i + 1]]``.
    indices:
        Length ``2 m`` array of neighbour indices, ordered exactly like the
        source graph's (insertion-ordered) adjacency.
    labels:
        ``labels[i]`` is the original node label of index ``i`` (graph
        insertion order, the same mapping :meth:`Graph.relabeled` produces).
    index:
        Inverse mapping ``{label: i}``.
    max_degree:
        Largest degree in the snapshot (drives the sigma overflow guard).

    Examples
    --------
    >>> from repro.graphs.graph import Graph
    >>> graph = Graph.from_edges([("a", "b"), ("b", "c")])
    >>> csr = CSRGraph.from_graph(graph)
    >>> csr.n, csr.m
    (3, 2)
    >>> [csr.labels[j] for j in csr.neighbors(csr.index["b"])]
    ['a', 'c']
    """

    __slots__ = (
        "n",
        "m",
        "indptr",
        "indices",
        "labels",
        "index",
        "identity_labels",
        "max_degree",
        "_indptr_list",
        "_indices_list",
    )

    def __init__(self, indptr, indices, labels: List[Node]) -> None:
        self.indptr = indptr
        self.indices = indices
        self.labels = labels
        self.index: Dict[Node, int] = {label: i for i, label in enumerate(labels)}
        self.n = len(labels)
        self.m = len(indices) // 2
        # When labels are already 0..n-1 the label<->index translation is the
        # identity, which lets hot paths skip the dict lookups entirely.
        self.identity_labels = all(
            isinstance(label, int) and label == i for i, label in enumerate(labels)
        )
        if self.n == 0:
            self.max_degree = 0
        elif HAS_NUMPY and not isinstance(indptr, array):
            self.max_degree = int((indptr[1:] - indptr[:-1]).max())
        else:
            self.max_degree = max(
                indptr[i + 1] - indptr[i] for i in range(self.n)
            )
        self._indptr_list: Optional[List[int]] = None
        self._indices_list: Optional[List[int]] = None

    def adjacency_lists(self) -> Tuple[List[int], List[int]]:
        """Return ``(indptr, indices)`` as cached Python lists.

        The sequential small-frontier fast path indexes these instead of the
        numpy arrays: plain-list subscription is several times faster than
        boxing one numpy scalar per edge.
        """
        if self._indptr_list is None:
            if HAS_NUMPY:
                self._indptr_list = self.indptr.tolist()
                self._indices_list = self.indices.tolist()
            else:
                self._indptr_list = list(self.indptr)
                self._indices_list = list(self.indices)
        return self._indptr_list, self._indices_list

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Snapshot ``graph`` preserving its insertion-ordered adjacency."""
        labels = list(graph.nodes())
        index = {label: i for i, label in enumerate(labels)}
        flat: List[int] = []
        indptr_list = [0]
        for label in labels:
            for neighbor in graph.neighbors(label):
                flat.append(index[neighbor])
            indptr_list.append(len(flat))
        if HAS_NUMPY:
            indptr = _np.asarray(indptr_list, dtype=_np.int64)
            indices = _np.asarray(flat, dtype=_np.int64)
        else:
            indptr = array("q", indptr_list)
            indices = array("q", flat)
        return cls(indptr, indices, labels)

    # ------------------------------------------------------------------
    def degree(self, node_index: int) -> int:
        """Degree of the node at ``node_index``."""
        return int(self.indptr[node_index + 1] - self.indptr[node_index])

    def neighbors(self, node_index: int):
        """Neighbour indices of ``node_index`` (a zero-copy array slice)."""
        return self.indices[self.indptr[node_index] : self.indptr[node_index + 1]]

    def index_of(self, label: Node) -> int:
        """Translate a node label to its CSR index.

        Raises
        ------
        GraphError
            If the label is not part of the snapshot.
        """
        try:
            return self.index[label]
        except KeyError:
            raise GraphError(f"node {label!r} does not exist") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(n={self.n}, m={self.m})"


_csr_cache: "WeakKeyDictionary[Graph, Tuple[int, CSRGraph]]" = WeakKeyDictionary()


def as_csr(graph: Graph) -> CSRGraph:
    """Return the (cached) CSR snapshot of ``graph``.

    The snapshot is rebuilt automatically if the graph has mutated since the
    cached version was taken; repeated calls on an unchanged graph are O(1).
    """
    version = graph._version
    cached = _csr_cache.get(graph)
    if cached is not None and cached[0] == version:
        return cached[1]
    csr = CSRGraph.from_graph(graph)
    _csr_cache[graph] = (version, csr)
    return csr


# ----------------------------------------------------------------------
# Index-space kernels
# ----------------------------------------------------------------------
class CSRShortestPathDAG:
    """Index-space shortest-path DAG (the CSR analogue of ``ShortestPathDAG``).

    Attributes
    ----------
    csr:
        The snapshot the DAG was computed on.
    source:
        Source node *index*.
    dist:
        Length-``n`` distance array, ``-1`` for unreachable nodes.
    sigma:
        Length-``n`` shortest-path counts: an ``int64``-backed buffer (or
        float64 for the Brandes variant), or a list of Python ints if the
        overflow guard switched representations mid-BFS.  Always exact.
    order:
        Settled node indices in BFS order.
    pred_indptr, pred_indices:
        CSR layout of the predecessor lists: the predecessors of node ``v``
        (in the same append order as the dict backend) occupy
        ``pred_indices[pred_indptr[v]:pred_indptr[v + 1]]``.
    levels, level_edges:
        Per-BFS-level settled nodes and DAG edge arrays ``(u, v)`` in scan
        order — consumed by the backward passes.
    """

    __slots__ = (
        "csr",
        "source",
        "dist",
        "sigma",
        "order",
        "levels",
        "level_edges",
        "_pred_indptr",
        "_pred_indices",
    )

    def __init__(self, csr, source, dist, sigma, order, levels, level_edges,
                 pred_indptr=None, pred_indices=None) -> None:
        self.csr = csr
        self.source = source
        self.dist = dist
        self.sigma = sigma
        self.order = order
        self.levels = levels
        self.level_edges = level_edges
        self._pred_indptr = pred_indptr
        self._pred_indices = pred_indices

    @property
    def pred_indptr(self):
        if self._pred_indptr is None:
            self._build_predecessors()
        return self._pred_indptr

    @property
    def pred_indices(self):
        if self._pred_indices is None:
            self._build_predecessors()
        return self._pred_indices

    def _build_predecessors(self) -> None:
        """Assemble the predecessor CSR lazily (only path sampling needs it).

        A stable grouping of the per-level DAG edges by head node keeps each
        predecessor list in the exact order the dict backend appended it.
        """
        n = self.csr.n
        if self.level_edges:
            all_u = _np.concatenate([edges[0] for edges in self.level_edges])
            all_v = _np.concatenate([edges[1] for edges in self.level_edges])
        else:
            all_u = _np.empty(0, dtype=_np.int64)
            all_v = _np.empty(0, dtype=_np.int64)
        pred_counts = _np.bincount(all_v, minlength=n)
        pred_indptr = _np.zeros(n + 1, dtype=_np.int64)
        _np.cumsum(pred_counts, out=pred_indptr[1:])
        self._pred_indptr = pred_indptr
        self._pred_indices = all_u[_np.argsort(all_v, kind="stable")]

    def predecessors(self, node_index: int):
        """Predecessor indices of ``node_index`` in append order."""
        return self.pred_indices[
            self.pred_indptr[node_index] : self.pred_indptr[node_index + 1]
        ]

    def sample_path_indices(self, target_index: int, rng) -> List[int]:
        """Sample a uniform shortest path as an index list (source..target).

        Consumes the RNG exactly like ``ShortestPathDAG.sample_path`` so both
        backends draw identical paths from identical seeds.
        """
        from repro.errors import SamplingError

        if self.dist[target_index] < 0:
            raise SamplingError(
                f"target {self.csr.labels[target_index]!r} is unreachable "
                f"from source {self.csr.labels[self.source]!r}"
            )
        path = [target_index]
        current = target_index
        sigma = self.sigma
        while current != self.source:
            preds = self.predecessors(current)
            preds = preds.tolist() if HAS_NUMPY else list(preds)
            weights = [int(sigma[p]) for p in preds]
            current = weighted_choice(preds, weights, rng)
            path.append(current)
        path.reverse()
        return path


def weighted_choice(items: Sequence, weights: Sequence[int], rng):
    """Pick one of ``items`` with probability proportional to ``weights``.

    The threshold is drawn with ``rng.randrange(total)`` over the *integer*
    total, so the choice is exact — no float accumulation bias even when the
    weights (shortest-path counts) exceed ``2**53``.
    """
    from repro.errors import SamplingError

    total = 0
    for weight in weights:
        total += weight
    if total <= 0:
        raise SamplingError("cannot sample from an empty/zero-weight set")
    threshold = rng.randrange(total)
    cumulative = 0
    for item, weight in zip(items, weights):
        cumulative += weight
        if threshold < cumulative:
            return item
    return items[-1]


# -------------------------- numpy kernels -----------------------------
#
# The numpy kernels are *hybrid*: each BFS level is expanded either with
# vectorised array operations (large frontiers — social networks collapse to
# a handful of huge levels) or with a sequential Python loop over cached
# adjacency lists (small frontiers — road networks have hundreds of thin
# levels where per-call numpy overhead would dominate).  Both expansion
# strategies visit edges in exactly the same order, so the choice never
# affects results, only speed.  Traversal state lives in ``array`` buffers
# shared with numpy views (``np.frombuffer``), giving the sequential path
# fast C-array subscription and the vectorised path zero-copy arrays.

#: Frontiers whose total degree falls below this are expanded sequentially.
_SEQUENTIAL_EDGE_THRESHOLD = 192

#: ``int64`` ceiling for shortest-path counts.  A level expansion adds at
#: most ``max_degree`` predecessor counts per node, so once the largest
#: frontier count reaches ``2**63 / max_degree`` the kernels switch sigma to
#: arbitrary-precision Python ints *before* the first wrap can happen.
_SIGMA_INT64_LIMIT = 2**63


def _sigma_may_overflow(frontier_max_sigma: int, max_degree: int) -> bool:
    """True when the next level's counts could exceed the int64 range."""
    return frontier_max_sigma * max_degree >= _SIGMA_INT64_LIMIT


def _shared_state(n: int, typecode: str):
    """Return ``(buffer, numpy view)`` over the same ``n``-element memory."""
    store = array(typecode, bytes(8 * n))
    view = _np.frombuffer(store, dtype=_np.int64 if typecode == "q" else _np.float64)
    return store, view


def _np_gather_neighbors(indptr, indices, frontier, with_sources: bool = True):
    """Return ``(neighbors, sources)`` of ``frontier`` in scan order.

    ``neighbors[k]`` is scanned while expanding ``sources[k]``; concatenating
    the per-node adjacency slices in frontier order reproduces exactly the
    edge scan order of the sequential dict BFS.  ``with_sources=False`` skips
    materialising the source array (plain BFS does not need it).
    """
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = _np.empty(0, dtype=_np.int64)
        return empty, empty
    row_offsets = _np.cumsum(counts)
    row_offsets -= counts
    positions = _np.arange(total, dtype=_np.int64)
    positions += _np.repeat(starts - row_offsets, counts)
    neighbors = indices[positions]
    if not with_sources:
        return neighbors, None
    return neighbors, _np.repeat(frontier, counts)


def _np_first_occurrence(values, scratch):
    """Deduplicate ``values`` keeping the first occurrence of each element.

    O(k): writing positions back-to-front makes the *first* occurrence the
    last (surviving) write into ``scratch``, identifying it without a sort.
    """
    size = values.size
    if size <= 1:
        return values
    positions = _np.arange(size, dtype=_np.int64)
    scratch[values[::-1]] = positions[::-1]
    return values[scratch[values] == positions]


def _frontier_edge_count(csr: CSRGraph, frontier) -> int:
    """Total degree of ``frontier`` (a list or an int64 array)."""
    if isinstance(frontier, list):
        indptr_list, _ = csr.adjacency_lists()
        return sum(indptr_list[node + 1] - indptr_list[node] for node in frontier)
    indptr = csr.indptr
    return int((indptr[frontier + 1] - indptr[frontier]).sum())


def _np_bfs(csr: CSRGraph, source: int, max_depth: Optional[int]):
    """Level-synchronous hybrid BFS; returns ``(dist, levels)``.

    ``levels[k]`` holds the indices discovered at depth ``k`` in discovery
    order (int64 arrays).
    """
    indptr, indices = csr.indptr, csr.indices
    dist_store, dist = _shared_state(csr.n, "q")
    dist.fill(-1)
    dist[source] = 0
    scratch = _np.empty(csr.n, dtype=_np.int64)
    frontier: object = [source]
    levels = [_np.array([source], dtype=_np.int64)]
    depth = 0
    while (max_depth is None or depth < max_depth):
        if _frontier_edge_count(csr, frontier) < _SEQUENTIAL_EDGE_THRESHOLD:
            indptr_list, indices_list = csr.adjacency_lists()
            if not isinstance(frontier, list):
                frontier = frontier.tolist()
            fresh_list: List[int] = []
            next_depth = depth + 1
            for node in frontier:
                for position in range(indptr_list[node], indptr_list[node + 1]):
                    neighbor = indices_list[position]
                    if dist_store[neighbor] < 0:
                        dist_store[neighbor] = next_depth
                        fresh_list.append(neighbor)
            if not fresh_list:
                break
            depth = next_depth
            levels.append(_np.asarray(fresh_list, dtype=_np.int64))
            frontier = fresh_list
        else:
            if isinstance(frontier, list):
                frontier = _np.asarray(frontier, dtype=_np.int64)
            nbrs, _ = _np_gather_neighbors(
                indptr, indices, frontier, with_sources=False
            )
            fresh = _np_first_occurrence(nbrs[dist[nbrs] < 0], scratch)
            if fresh.size == 0:
                break
            depth += 1
            dist[fresh] = depth
            levels.append(fresh)
            frontier = fresh
    return dist, levels


def _np_shortest_path_dag(
    csr: CSRGraph, source: int, max_depth: Optional[int], float_sigma: bool
) -> CSRShortestPathDAG:
    indptr, indices = csr.indptr, csr.indices
    n = csr.n
    dist_store, dist = _shared_state(n, "q")
    dist.fill(-1)
    dist[source] = 0
    sigma_store, sigma_view = _shared_state(n, "d" if float_sigma else "q")
    sigma_view[source] = 1
    # ``sigma`` is what gets indexed element-wise: the shared buffer while
    # counts fit in int64, a plain list of Python ints after the overflow
    # guard trips (float sigma — the Brandes case — never overflows).
    sigma: object = sigma_store
    frontier_max_sigma = 1
    scratch = _np.empty(n, dtype=_np.int64)
    frontier: object = [source]
    levels = [_np.array([source], dtype=_np.int64)]
    level_edges: List[Tuple[object, object]] = []
    depth = 0
    while (max_depth is None or depth < max_depth):
        if (
            not float_sigma
            and sigma_view is not None
            and _sigma_may_overflow(frontier_max_sigma, csr.max_degree)
        ):
            sigma = sigma_view.tolist()
            sigma_view = None
        if _frontier_edge_count(csr, frontier) < _SEQUENTIAL_EDGE_THRESHOLD:
            indptr_list, indices_list = csr.adjacency_lists()
            if not isinstance(frontier, list):
                frontier = frontier.tolist()
            fresh_list: List[int] = []
            edge_u_list: List[int] = []
            edge_v_list: List[int] = []
            next_depth = depth + 1
            for node in frontier:
                sigma_node = sigma[node]
                for position in range(indptr_list[node], indptr_list[node + 1]):
                    neighbor = indices_list[position]
                    known = dist_store[neighbor]
                    if known < 0:
                        dist_store[neighbor] = next_depth
                        fresh_list.append(neighbor)
                        known = next_depth
                    if known == next_depth:
                        sigma[neighbor] += sigma_node
                        edge_u_list.append(node)
                        edge_v_list.append(neighbor)
            if not fresh_list:
                break
            depth = next_depth
            level_edges.append(
                (
                    _np.asarray(edge_u_list, dtype=_np.int64),
                    _np.asarray(edge_v_list, dtype=_np.int64),
                )
            )
            levels.append(_np.asarray(fresh_list, dtype=_np.int64))
            if not float_sigma:
                frontier_max_sigma = max(sigma[node] for node in fresh_list)
            frontier = fresh_list
        else:
            if isinstance(frontier, list):
                frontier = _np.asarray(frontier, dtype=_np.int64)
            nbrs, srcs = _np_gather_neighbors(indptr, indices, frontier)
            # In a level-synchronous BFS every neighbour that was undiscovered
            # when the level started sits at the next depth, so the unseen
            # mask doubles as the DAG-edge mask (in dict scan order).
            unseen = dist[nbrs] < 0
            edge_v = nbrs[unseen]
            fresh = _np_first_occurrence(edge_v, scratch)
            if fresh.size == 0:
                break
            depth += 1
            dist[fresh] = depth
            edge_u = srcs[unseen]
            if sigma_view is not None:
                _accumulate_level(sigma_view, edge_v, sigma_view[edge_u],
                                  float_sigma, n)
                if not float_sigma and fresh.size:
                    frontier_max_sigma = int(sigma_view[fresh].max())
            else:
                for tail, head in zip(edge_u.tolist(), edge_v.tolist()):
                    sigma[head] += sigma[tail]
                frontier_max_sigma = max(sigma[node] for node in fresh.tolist())
            level_edges.append((edge_u, edge_v))
            levels.append(fresh)
            frontier = fresh
    order = _np.concatenate(levels) if len(levels) > 1 else levels[0]
    if float_sigma:
        sigma = sigma_view
    return CSRShortestPathDAG(csr, source, dist, sigma, order, levels, level_edges)


def _accumulate_level(totals, heads, values, as_float: bool, n: int) -> None:
    """Scatter-add ``values`` into ``totals[heads]`` preserving input order.

    Every head receives its first contribution in this very call (its total
    is still zero), so ``bincount`` — which sums each bin sequentially in
    input order — reproduces the dict backend's float rounding exactly while
    being far faster than ``np.add.at``.  Integer totals keep ``np.add.at``
    (bincount would go through float64 and lose exactness past ``2**53``).
    """
    if not as_float:
        _np.add.at(totals, heads, values)
    elif heads.size:
        totals += _np.bincount(heads, weights=values, minlength=n)


def _np_brandes(csr: CSRGraph, source: int):
    """Forward + backward Brandes pass; returns ``(delta, order, dist)``.

    Bit-identical to the dict implementation: the backward edge sequence is
    re-ordered per level so contributions hit ``delta`` in exactly the order
    the sequential ``for node in reversed(order)`` loop produces, and each
    tail's contributions land while its ``delta`` entry is still zero (its
    own additions happen one level earlier), so per-level ``bincount``
    accumulation preserves the rounding order too.
    """
    dag = _np_shortest_path_dag(csr, source, None, float_sigma=True)
    n = csr.n
    sigma = dag.sigma
    delta_store, delta = _shared_state(n, "d")
    scratch = _np.empty(n, dtype=_np.int64)
    for level in range(len(dag.levels) - 1, 0, -1):
        edge_u, edge_v = dag.level_edges[level - 1]
        size = edge_u.size
        if size == 0:
            continue
        if size < _SEQUENTIAL_EDGE_THRESHOLD:
            # Sequential: group predecessor edges per head, walk heads in
            # reverse discovery order — the dict backend's exact sequence.
            per_head: Dict[int, List[int]] = {}
            for tail, head in zip(edge_u.tolist(), edge_v.tolist()):
                per_head.setdefault(head, []).append(tail)
            for head in reversed(dag.levels[level].tolist()):
                tails = per_head.get(head)
                if not tails:
                    continue
                coefficient = 1.0 + delta_store[head]
                sigma_head = sigma[head]
                for tail in tails:
                    delta_store[tail] += sigma[tail] / sigma_head * coefficient
        else:
            nodes = dag.levels[level]
            scratch[nodes] = _np.arange(nodes.size)
            reorder = _np.argsort(nodes.size - 1 - scratch[edge_v], kind="stable")
            heads = edge_v[reorder]
            tails = edge_u[reorder]
            contributions = sigma[tails] / sigma[heads] * (1.0 + delta[heads])
            delta += _np.bincount(tails, weights=contributions, minlength=n)
    return delta, dag.order, dag.dist


# ----------------------- pure-Python kernels --------------------------
def _py_bfs(csr: CSRGraph, source: int, max_depth: Optional[int]):
    indptr, indices = csr.indptr, csr.indices
    dist = [-1] * csr.n
    dist[source] = 0
    order = [source]
    queue = deque([source])
    while queue:
        node = queue.popleft()
        depth = dist[node]
        if max_depth is not None and depth >= max_depth:
            continue
        for position in range(indptr[node], indptr[node + 1]):
            neighbor = indices[position]
            if dist[neighbor] < 0:
                dist[neighbor] = depth + 1
                order.append(neighbor)
                queue.append(neighbor)
    return dist, order


def _py_shortest_path_dag(
    csr: CSRGraph, source: int, max_depth: Optional[int], float_sigma: bool
) -> CSRShortestPathDAG:
    indptr, indices = csr.indptr, csr.indices
    n = csr.n
    dist = [-1] * n
    dist[source] = 0
    sigma: List = [0.0 if float_sigma else 0] * n
    sigma[source] = 1.0 if float_sigma else 1
    preds: List[List[int]] = [[] for _ in range(n)]
    order = [source]
    queue = deque([source])
    while queue:
        node = queue.popleft()
        depth = dist[node]
        if max_depth is not None and depth >= max_depth:
            continue
        for position in range(indptr[node], indptr[node + 1]):
            neighbor = indices[position]
            if dist[neighbor] < 0:
                dist[neighbor] = depth + 1
                order.append(neighbor)
                queue.append(neighbor)
            if dist[neighbor] == depth + 1:
                sigma[neighbor] += sigma[node]
                preds[neighbor].append(node)
    pred_indptr = [0] * (n + 1)
    pred_indices: List[int] = []
    for node in range(n):
        pred_indices.extend(preds[node])
        pred_indptr[node + 1] = len(pred_indices)
    levels: List[List[int]] = []
    for node in order:
        if dist[node] == len(levels):
            levels.append([])
        levels[dist[node]].append(node)
    return CSRShortestPathDAG(
        csr, source, dist, sigma, order, levels, None,
        pred_indptr=pred_indptr, pred_indices=pred_indices,
    )


def _py_brandes(csr: CSRGraph, source: int):
    dag = _py_shortest_path_dag(csr, source, None, float_sigma=True)
    sigma = dag.sigma
    delta = [0.0] * csr.n
    pred_indptr, pred_indices = dag.pred_indptr, dag.pred_indices
    for node in reversed(dag.order):
        coefficient = 1.0 + delta[node]
        sigma_node = sigma[node]
        for position in range(pred_indptr[node], pred_indptr[node + 1]):
            predecessor = pred_indices[position]
            delta[predecessor] += sigma[predecessor] / sigma_node * coefficient
    return delta, dag.order, dag.dist


# ------------------------- public kernels -----------------------------
def csr_bfs(csr: CSRGraph, source: int, *, max_depth: Optional[int] = None):
    """BFS from index ``source``; returns ``(dist, order)``.

    ``dist`` holds ``-1`` for unreachable nodes; ``order`` lists the settled
    indices in discovery order (the dict backend's result-dict key order).
    """
    if HAS_NUMPY:
        dist, levels = _np_bfs(csr, source, max_depth)
        order = _np.concatenate(levels) if len(levels) > 1 else levels[0]
        return dist, order
    return _py_bfs(csr, source, max_depth)


def csr_shortest_path_dag(
    csr: CSRGraph,
    source: int,
    *,
    max_depth: Optional[int] = None,
    float_sigma: bool = False,
) -> CSRShortestPathDAG:
    """Build the shortest-path DAG rooted at index ``source``."""
    if HAS_NUMPY:
        return _np_shortest_path_dag(csr, source, max_depth, float_sigma)
    return _py_shortest_path_dag(csr, source, max_depth, float_sigma)


def csr_brandes(csr: CSRGraph, source: int):
    """Brandes single-source dependencies from index ``source``.

    Returns ``(delta, order, dist)`` where ``delta[v]`` is the dependency of
    the source on ``v`` (``delta[source]`` carries a partial sum the caller
    must ignore, mirroring the dict implementation's ``pop``).
    """
    if HAS_NUMPY:
        return _np_brandes(csr, source)
    return _py_brandes(csr, source)


def csr_distance_stats(csr: CSRGraph, source: int) -> Tuple[int, int]:
    """Return ``(reachable node count, total hop distance)`` from ``source``.

    The closeness kernel: one BFS without materialising a per-node dict.
    """
    dist, order = csr_bfs(csr, source)
    if HAS_NUMPY:
        reached = dist >= 0
        return int(reached.sum()), int(dist[reached].sum())
    reachable = 0
    total = 0
    for value in dist:
        if value >= 0:
            reachable += 1
            total += value
    return reachable, total
