"""Compressed-sparse-row graph engine and the pluggable traversal backends.

Every traversal hot path in this reproduction (plain BFS, shortest-path DAG
construction, Brandes dependency accumulation, bidirectional search, the
samplers built on top of them) was originally written against the
``dict[node, dict[node, None]]`` adjacency of :class:`~repro.graphs.graph.Graph`.
That representation is flexible — nodes are arbitrary hashables — but every
edge scan pays Python-level hashing.  This module provides the array-based
alternative:

* :class:`CSRGraph` — a frozen compressed-sparse-row snapshot of a
  :class:`Graph`: ``indptr``/``indices`` arrays over integer node indices
  ``0..n-1`` plus the label↔index mapping (labels keep the graph's insertion
  order, exactly like :meth:`Graph.relabeled`).
* :func:`as_csr` — build-and-cache: snapshots are cached per graph object and
  invalidated automatically when the graph mutates (via ``Graph._version``).
* Integer-index kernels — ``csr_bfs``, ``csr_shortest_path_dag``,
  ``csr_brandes`` — vectorised with numpy when it is importable and falling
  back to pure-Python loops over the same flat arrays otherwise.  All of
  them (and the bidirectional search in
  :mod:`repro.graphs.bidirectional`) drive the one shared expand-one-level
  kernel, :class:`_BatchSweep`.
* Batched sweeps — :func:`multi_source_sweep` runs K sources per call over
  stacked ``(K, n)`` state arrays, merging the thin per-source frontiers of
  high-diameter (road-style) graphs into fat vectorised ones, with results
  bit-identical to the per-source kernels.
* Weighted SSSP — snapshots of weighted graphs carry a float64 ``weights``
  array aligned with ``indices``; :func:`csr_sssp_dag` is the one SSSP
  entry point routing between the BFS kernels (unit weights) and the
  deterministic Dijkstra kernels (``csr_dijkstra_dag`` /
  ``csr_dijkstra_distances`` / ``csr_dijkstra_brandes``).  Routing policy
  lives in :mod:`repro.graphs.sssp`.
* Backend selection — :func:`resolve_backend` maps a user-facing
  ``backend=`` argument (``None``/``"auto"``/``"dict"``/``"csr"``) to a
  concrete backend, honouring the ``REPRO_BACKEND`` environment variable.

Determinism contract
--------------------
The CSR kernels are written to be *bit-identical* to the dict reference
implementations, not merely statistically equivalent: neighbour order equals
dict insertion order, BFS settles nodes in the same order, sigma counts and
Brandes dependencies accumulate in the same order (so even float rounding
matches), and path sampling consumes the RNG identically.  The backend
equivalence property tests assert this.

Shortest-path counts (``sigma``) are exact.  They start in fast ``int64``
arrays; before expanding a level whose counts could overflow (conservative
guard: ``max sigma * max degree >= 2**63``), the kernel switches to
arbitrary-precision Python ints for the remaining levels.  This matters in
practice: on road-style grids ``sigma`` grows like a binomial coefficient
and exceeds ``2**63`` at hop distances around 70.
"""

from __future__ import annotations

import os
from array import array
from collections import deque
from heapq import heappop, heappush
from typing import Dict, Hashable, List, Optional, Sequence, Tuple
from weakref import WeakKeyDictionary

from repro.errors import GraphError
from repro.graphs import delta as _delta
from repro.graphs.graph import Graph

try:  # numpy is optional: the CSR backend degrades to pure-Python loops.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

HAS_NUMPY = _np is not None

Node = Hashable

#: Backend names accepted by every ``backend=`` parameter.
DICT_BACKEND = "dict"
CSR_BACKEND = "csr"
AUTO_BACKEND = "auto"
BACKENDS = (DICT_BACKEND, CSR_BACKEND)

#: Environment variable overriding the default backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"

_default_backend: Optional[str] = None

#: Below this many nodes + edges the ``auto`` choice stays on the dict
#: backend: snapshot construction and per-level array overhead only pay off
#: once a graph has a few hundred adjacency entries.
AUTO_CSR_THRESHOLD = 512


_BACKEND_CHOICES = BACKENDS + (AUTO_BACKEND,)


def _check_backend_name(value: str, *, source: str = "backend") -> None:
    """Raise a uniform error for an invalid backend name.

    ``source`` names where the value came from (the ``backend=`` argument or
    the ``REPRO_BACKEND`` environment variable) so a typo'd setting is
    attributable no matter how deep in the call stack it surfaces.
    """
    if value not in _BACKEND_CHOICES:
        raise ValueError(
            f"{source}={value!r} is not a valid backend; choose one of "
            f"{_BACKEND_CHOICES} (the default can also be set via the "
            f"{BACKEND_ENV_VAR} environment variable)"
        )


def _env_backend() -> Optional[str]:
    """Return the validated ``REPRO_BACKEND`` value, or ``None`` if unset."""
    env = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
    if not env:
        return None
    _check_backend_name(env, source=BACKEND_ENV_VAR)
    return env


def default_backend() -> str:
    """Return the backend used when callers pass ``backend=None``.

    Resolution order: :func:`set_default_backend` override, then the
    ``REPRO_BACKEND`` environment variable, then ``"auto"`` (pick per graph).
    """
    if _default_backend is not None:
        return _default_backend
    env = _env_backend()
    if env is not None:
        return env
    return AUTO_BACKEND


def set_default_backend(backend: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide default backend.

    ``"auto"`` is a valid setting: it restores per-graph selection,
    overriding any ``REPRO_BACKEND`` environment variable.
    """
    global _default_backend
    if backend is not None:
        _check_backend_name(backend)
    _default_backend = backend


def resolve_backend(backend: Optional[str] = None) -> str:
    """Map a user-facing ``backend`` argument to a backend name.

    May return ``"auto"``, meaning "decide per graph" — dispatch sites pass
    the graph through :func:`effective_backend` instead when they can.

    An invalid ``REPRO_BACKEND`` value is rejected here as well (not only
    when it is actually consulted), so a typo'd variable exported mid-run
    surfaces as one clear error naming the variable instead of a confusing
    deep-stack failure on some later dispatch.
    """
    env = _env_backend()
    if backend is None:
        if _default_backend is not None:
            return _default_backend
        return env if env is not None else AUTO_BACKEND
    _check_backend_name(backend)
    return backend


def effective_backend(
    graph: Graph,
    backend: Optional[str] = None,
    *,
    auto_threshold: Optional[int] = None,
) -> str:
    """Choose the concrete backend for one operation on ``graph``.

    Explicit choices (argument, :func:`set_default_backend`, or the
    ``REPRO_BACKEND`` variable) are always honoured.  The remaining ``auto``
    case picks CSR when numpy is available and the graph is large enough for
    the array kernels to win (or already has a cached snapshot), and the dict
    reference otherwise.  Both backends return identical results, so the
    heuristic affects speed only.

    Parameters
    ----------
    auto_threshold:
        Override the ``n + m`` size cutoff for the ``auto`` case; kernels
        whose CSR variant has a higher per-call fixed cost (the bidirectional
        search allocates per-query state arrays) pass a larger cutoff.
    """
    if isinstance(graph, CSRGraph):
        # A frozen snapshot (e.g. a zero-copy shared-memory handoff from
        # repro.parallel) can only run the array kernels; there is no dict
        # adjacency to fall back to.
        return CSR_BACKEND
    resolved = resolve_backend(backend)
    if resolved != AUTO_BACKEND:
        return resolved
    if not HAS_NUMPY:
        return DICT_BACKEND
    threshold = AUTO_CSR_THRESHOLD if auto_threshold is None else auto_threshold
    if graph.number_of_nodes() + graph.number_of_edges() >= threshold:
        return CSR_BACKEND
    if auto_threshold is None:
        cached = _csr_cache.get(graph)
        if cached is not None:
            if cached[0] == graph._version:
                # A current snapshot exists, so the array kernels are free to
                # use even though the graph is small.
                return CSR_BACKEND
            if _delta.deltas_between(graph, cached[0]) is not None:
                # The mutation journal covers the gap: the stale snapshot is
                # one cheap incremental patch away (see ``as_csr``), so keep
                # it and stay on the array kernels.
                return CSR_BACKEND
            # The graph mutated past journal coverage: routing a small
            # graph to CSR now would force a pointless re-freeze, and keeping
            # the stale snapshot alive would let the cache hold arbitrarily
            # large dead arrays under mutate/query cycles.  Evict and fall
            # through to the dict reference.
            del _csr_cache[graph]
    return DICT_BACKEND


# ----------------------------------------------------------------------
# The CSR snapshot
# ----------------------------------------------------------------------
class CSRGraph:
    """A frozen compressed-sparse-row view of an undirected graph.

    Attributes
    ----------
    n, m:
        Node and (undirected) edge counts.
    indptr:
        Length ``n + 1`` array; the neighbours of node ``i`` occupy
        ``indices[indptr[i]:indptr[i + 1]]``.
    indices:
        Length ``2 m`` array of neighbour indices, ordered exactly like the
        source graph's (insertion-ordered) adjacency.
    labels:
        ``labels[i]`` is the original node label of index ``i`` (graph
        insertion order, the same mapping :meth:`Graph.relabeled` produces).
    index:
        Inverse mapping ``{label: i}``.
    max_degree:
        Largest degree in the snapshot (drives the sigma overflow guard).

    Examples
    --------
    >>> from repro.graphs.graph import Graph
    >>> graph = Graph.from_edges([("a", "b"), ("b", "c")])
    >>> csr = CSRGraph.from_graph(graph)
    >>> csr.n, csr.m
    (3, 2)
    >>> [csr.labels[j] for j in csr.neighbors(csr.index["b"])]
    ['a', 'c']
    """

    __slots__ = (
        "n",
        "m",
        "indptr",
        "indices",
        "weights",
        "labels",
        "index",
        "identity_labels",
        "max_degree",
        "source_path",
        "_indptr_list",
        "_indices_list",
        "_weights_list",
        "__weakref__",
    )

    #: Snapshots are frozen, so their "version" never changes.  Exposing the
    #: :class:`Graph` version attribute (plus the weakref slot above and the
    #: count/lookup methods below) lets version-keyed caches — the CSR
    #: snapshot cache, the engine's ``SourceDAGCache`` — and backend dispatch
    #: treat a bare snapshot exactly like a graph.  Worker processes receive
    #: bare snapshots through the shared-memory handoff in
    #: :mod:`repro.parallel`.
    _version = 0

    def __init__(self, indptr, indices, labels: List[Node], weights=None) -> None:
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.labels = labels
        self.index: Dict[Node, int] = {label: i for i, label in enumerate(labels)}
        self.n = len(labels)
        self.m = len(indices) // 2
        # When labels are already 0..n-1 the label<->index translation is the
        # identity, which lets hot paths skip the dict lookups entirely.
        self.identity_labels = all(
            isinstance(label, int) and label == i for i, label in enumerate(labels)
        )
        if self.n == 0:
            self.max_degree = 0
        elif HAS_NUMPY and not isinstance(indptr, array):
            self.max_degree = int((indptr[1:] - indptr[:-1]).max())
        else:
            self.max_degree = max(
                indptr[i + 1] - indptr[i] for i in range(self.n)
            )
        # Set by repro.graphs.store when the snapshot is backed by an
        # on-disk file (saved or loaded, possibly as read-only np.memmap
        # views).  repro.parallel uses it to hand workers a path + header
        # instead of re-exporting the arrays to shared memory.  Patched
        # snapshots (_patched_snapshot) construct fresh arrays and so drop
        # the backing file — copy-on-write, the mapped file is never
        # written through.
        self.source_path: Optional[str] = None
        self._indptr_list: Optional[List[int]] = None
        self._indices_list: Optional[List[int]] = None
        self._weights_list: Optional[List[float]] = None

    @property
    def is_weighted(self) -> bool:
        """Whether the snapshot carries an edge-weight array (O(1))."""
        return self.weights is not None

    def weight_list(self) -> Optional[List[float]]:
        """``weights`` as a cached Python list (``None`` when unweighted).

        The sequential Dijkstra kernel indexes this alongside
        :meth:`adjacency_lists` — plain-list subscription avoids boxing one
        numpy scalar per relaxed edge.
        """
        if self.weights is None:
            return None
        if self._weights_list is None:
            if HAS_NUMPY and not isinstance(self.weights, array):
                self._weights_list = self.weights.tolist()
            else:
                self._weights_list = list(self.weights)
        return self._weights_list

    def adjacency_lists(self) -> Tuple[List[int], List[int]]:
        """Return ``(indptr, indices)`` as cached Python lists.

        The sequential small-frontier fast path indexes these instead of the
        numpy arrays: plain-list subscription is several times faster than
        boxing one numpy scalar per edge.
        """
        if self._indptr_list is None:
            if HAS_NUMPY:
                self._indptr_list = self.indptr.tolist()
                self._indices_list = self.indices.tolist()
            else:
                self._indptr_list = list(self.indptr)
                self._indices_list = list(self.indices)
        return self._indptr_list, self._indices_list

    def save(self, path):
        """Persist the snapshot to ``path`` (see :mod:`repro.graphs.store`).

        The written file is versioned and checksummed; on success
        ``self.source_path`` points at it, arming the zero-copy worker
        handoff in :mod:`repro.parallel`.  Returns the written path.
        """
        from repro.graphs.store import save_snapshot

        return save_snapshot(self, path)

    @classmethod
    def load(cls, path, mmap=None, *, verify: bool = False) -> "CSRGraph":
        """Load a snapshot written by :meth:`save`.

        With ``mmap`` unset the ``mmap`` knob decides (``REPRO_MMAP``,
        default ``auto``): when numpy is importable the arrays come back
        as read-only ``np.memmap`` views — an O(1) attach regardless of
        graph size — otherwise they are read into RAM.  Both forms are
        byte-identical.  Corrupt, truncated, stale-version or
        foreign-endianness files raise :class:`~repro.errors.GraphError`
        naming the path and the mismatch.
        """
        from repro.graphs.store import load_snapshot

        return load_snapshot(path, mmap=mmap, verify=verify)

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Snapshot ``graph`` preserving its insertion-ordered adjacency.

        Weighted graphs additionally get a float64 ``weights`` array aligned
        with ``indices`` (one entry per directed adjacency slot); unit-weight
        graphs keep ``weights is None`` and the exact historical snapshot.
        """
        labels = list(graph.nodes())
        index = {label: i for i, label in enumerate(labels)}
        flat: List[int] = []
        indptr_list = [0]
        weighted = graph.is_weighted
        flat_weights: List[float] = [] if weighted else None
        for label in labels:
            if weighted:
                for neighbor, weight in graph.neighbor_weights(label):
                    flat.append(index[neighbor])
                    flat_weights.append(float(weight))
            else:
                for neighbor in graph.neighbors(label):
                    flat.append(index[neighbor])
            indptr_list.append(len(flat))
        if HAS_NUMPY:
            indptr = _np.asarray(indptr_list, dtype=_np.int64)
            indices = _np.asarray(flat, dtype=_np.int64)
            weights = (
                _np.asarray(flat_weights, dtype=_np.float64) if weighted else None
            )
        else:
            indptr = array("q", indptr_list)
            indices = array("q", flat)
            weights = array("d", flat_weights) if weighted else None
        return cls(indptr, indices, labels, weights)

    # ------------------------------------------------------------------
    def number_of_nodes(self) -> int:
        """Node count (the :class:`Graph` interface name for ``n``)."""
        return self.n

    def number_of_edges(self) -> int:
        """Undirected edge count (the :class:`Graph` interface name for ``m``)."""
        return self.m

    def has_node(self, label: Node) -> bool:
        """Whether ``label`` is part of the snapshot."""
        return label in self.index

    def degree(self, node_index: int) -> int:
        """Degree of the node at ``node_index``."""
        return int(self.indptr[node_index + 1] - self.indptr[node_index])

    def neighbors(self, node_index: int):
        """Neighbour indices of ``node_index`` (a zero-copy array slice)."""
        return self.indices[self.indptr[node_index] : self.indptr[node_index + 1]]

    def index_of(self, label: Node) -> int:
        """Translate a node label to its CSR index.

        Raises
        ------
        GraphError
            If the label is not part of the snapshot.
        """
        try:
            return self.index[label]
        except KeyError:
            raise GraphError(f"node {label!r} does not exist") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(n={self.n}, m={self.m})"


_csr_cache: "WeakKeyDictionary[Graph, Tuple[int, CSRGraph]]" = WeakKeyDictionary()


def _patched_snapshot(
    graph: Graph, old: CSRGraph, old_version: int
) -> Optional[CSRGraph]:
    """Patch a stale snapshot through the mutation journal, or ``None``.

    Replays the journalled edge deltas against the frozen
    ``indptr``/``indices``/``weights`` arrays: only the adjacency segments
    of nodes an edit touched are rebuilt (in Python, they are tiny);
    everything else is block-copied.  The replay mirrors the dict
    adjacency's semantics exactly — an insert appends at the end of both
    endpoints' segments, a delete closes the gap preserving order, a
    reweight edits in place — so the result is **byte-identical** to
    :meth:`CSRGraph.from_graph` on the mutated graph (asserted by the
    equivalence tests).  Returns ``None`` when the journal does not cover
    the gap (overflow, structural change, delta invalidation off) or any
    sanity check fails; the caller falls back to a full rebuild.
    """
    deltas = _delta.deltas_between(graph, old_version)
    if not deltas:  # None (uncovered) or [] (nothing to replay: rebuild path)
        return None
    if old.n != graph.number_of_nodes():
        return None  # node set changed without a structural marker: rebuild
    index = old.index
    old_weighted = old.weights is not None
    # Materialise the adjacency segment of each touched node once, as a
    # plain list; weights ride along (unit edges expand to 1.0 so a graph
    # turning weighted mid-journal patches cleanly).
    segments: Dict[int, List[int]] = {}
    weight_segments: Dict[int, List[float]] = {}

    def segment(a: int) -> List[int]:
        seg = segments.get(a)
        if seg is None:
            start = int(old.indptr[a])
            end = int(old.indptr[a + 1])
            chunk = old.indices[start:end]
            seg = chunk.tolist() if HAS_NUMPY and not isinstance(
                chunk, array
            ) else list(chunk)
            segments[a] = seg
            if old_weighted:
                wchunk = old.weights[start:end]
                weight_segments[a] = (
                    wchunk.tolist()
                    if HAS_NUMPY and not isinstance(wchunk, array)
                    else list(wchunk)
                )
            else:
                weight_segments[a] = [1.0] * len(seg)
        return seg

    try:
        for d in deltas:
            iu = index[d.u]
            iv = index[d.v]
            for a, b in ((iu, iv), (iv, iu)):
                seg = segment(a)
                wseg = weight_segments[a]
                if d.op == _delta.OP_INSERT:
                    seg.append(b)
                    wseg.append(d.new)
                elif d.op == _delta.OP_DELETE:
                    pos = seg.index(b)
                    del seg[pos]
                    del wseg[pos]
                elif d.op == _delta.OP_REWEIGHT:
                    wseg[seg.index(b)] = d.new
                else:
                    return None
    except (KeyError, ValueError):
        # The journal disagrees with the snapshot (an endpoint or edge it
        # names is missing): never patch on faith, rebuild from scratch.
        return None

    new_weighted = graph.is_weighted
    n = old.n
    total = 2 * graph.number_of_edges()
    affected = sorted(segments)
    if HAS_NUMPY and not isinstance(old.indptr, array):
        counts = (old.indptr[1:] - old.indptr[:-1]).copy()
        for a in affected:
            counts[a] = len(segments[a])
        indptr = _np.empty(n + 1, dtype=_np.int64)
        indptr[0] = 0
        _np.cumsum(counts, out=indptr[1:])
        if int(indptr[n]) != total:
            return None
        indices = _np.empty(total, dtype=_np.int64)
        weights = _np.empty(total, dtype=_np.float64) if new_weighted else None
        src = 0  # read cursor into the old arrays
        dst = 0  # write cursor into the new arrays

        def copy_run(src: int, end: int, dst: int) -> int:
            length = end - src
            if length:
                indices[dst : dst + length] = old.indices[src:end]
                if weights is not None:
                    if old_weighted:
                        weights[dst : dst + length] = old.weights[src:end]
                    else:
                        weights[dst : dst + length] = 1.0
            return dst + length

        for a in affected:
            dst = copy_run(src, int(old.indptr[a]), dst)
            src = int(old.indptr[a + 1])
            seg = segments[a]
            if seg:
                indices[dst : dst + len(seg)] = seg
                if weights is not None:
                    weights[dst : dst + len(seg)] = weight_segments[a]
            dst += len(seg)
        dst = copy_run(src, int(old.indptr[n]), dst)
        if dst != total:
            return None
    else:
        indices = array("q")
        weights = array("d") if new_weighted else None
        indptr_list = [0]
        src = 0
        affected_set = set(affected)
        for a in range(n):
            if a in affected_set:
                seg = segments[a]
                indices.extend(seg)
                if weights is not None:
                    weights.extend(weight_segments[a])
            else:
                start = int(old.indptr[a])
                end = int(old.indptr[a + 1])
                indices.extend(old.indices[start:end])
                if weights is not None:
                    if old_weighted:
                        weights.extend(old.weights[start:end])
                    else:
                        weights.extend([1.0] * (end - start))
            indptr_list.append(len(indices))
        if len(indices) != total:
            return None
        indptr = array("q", indptr_list)
    return CSRGraph(indptr, indices, old.labels, weights)


def as_csr(graph: Graph) -> CSRGraph:
    """Return the (cached) CSR snapshot of ``graph``.

    The snapshot is rebuilt automatically if the graph has mutated since the
    cached version was taken — *incrementally*, when the mutation journal
    (see :mod:`repro.graphs.delta`) covers the gap: the frozen arrays are
    patched in O(|Δ| + copy) instead of re-walking the whole adjacency,
    byte-identical to a from-scratch build.  Repeated calls on an unchanged
    graph are O(1).  A :class:`CSRGraph` passes through unchanged, so code
    holding either a graph or a bare snapshot (a shared-memory worker
    payload, or a memory-mapped on-disk snapshot from
    :mod:`repro.graphs.store` — whose arrays stay read-only; patching a
    *mutated* graph always materialises fresh in-RAM arrays, i.e.
    copy-on-write) can normalise with one call.
    """
    if isinstance(graph, CSRGraph):
        return graph
    version = graph._version
    cached = _csr_cache.get(graph)
    if cached is not None and cached[0] == version:
        return cached[1]
    csr = None
    if cached is not None:
        csr = _patched_snapshot(graph, cached[1], cached[0])
    if csr is None:
        csr = CSRGraph.from_graph(graph)
    _csr_cache[graph] = (version, csr)
    # Arm the journal so the *next* mutation round can patch this snapshot.
    _delta.track(graph)
    return csr


def adopt_snapshot(graph: Graph, snapshot: CSRGraph) -> None:
    """Seed the CSR cache of ``graph`` with an existing ``snapshot``.

    Used by the datasets registry when it rebuilds a dict graph from an
    on-disk snapshot (:func:`repro.graphs.store.graph_from_snapshot`): the
    file-backed snapshot *is* the graph's CSR form, so adopting it makes
    ``as_csr(graph)`` return it directly — keeping the arrays memory-mapped
    and the zero-copy file handoff to workers armed — instead of
    rebuilding identical arrays in RAM.

    The caller warrants that ``snapshot`` is byte-identical to
    ``CSRGraph.from_graph(graph)`` (``graph_from_snapshot`` reconstructs
    per-node adjacency order exactly, so its output qualifies); the cheap
    invariants are still checked here.  Later mutations behave as always:
    the journal patches *fresh* in-RAM arrays (copy-on-write), never the
    adopted snapshot.
    """
    if (
        snapshot.n != graph.number_of_nodes()
        or snapshot.m != graph.number_of_edges()
        or snapshot.labels != list(graph.nodes())
    ):
        raise GraphError(
            "adopt_snapshot: snapshot does not describe this graph "
            f"(snapshot n={snapshot.n}, m={snapshot.m}; graph "
            f"n={graph.number_of_nodes()}, m={graph.number_of_edges()})"
        )
    _csr_cache[graph] = (graph._version, snapshot)
    _delta.track(graph)


# ----------------------------------------------------------------------
# Index-space kernels
# ----------------------------------------------------------------------
class CSRShortestPathDAG:
    """Index-space shortest-path DAG (the CSR analogue of ``ShortestPathDAG``).

    Attributes
    ----------
    csr:
        The snapshot the DAG was computed on.
    source:
        Source node *index*.
    dist:
        Length-``n`` distance array, ``-1`` for unreachable nodes.  Hop
        counts (int64) for BFS-built DAGs; float64 path lengths for
        weighted (Dijkstra-built) DAGs, see :attr:`weighted`.
    sigma:
        Length-``n`` shortest-path counts: an ``int64``-backed buffer (or
        float64 for the Brandes variant), or a list of Python ints if the
        overflow guard switched representations mid-BFS.  Always exact.
    order:
        Settled node indices in BFS order.
    pred_indptr, pred_indices:
        CSR layout of the predecessor lists: the predecessors of node ``v``
        (in the same append order as the dict backend) occupy
        ``pred_indices[pred_indptr[v]:pred_indptr[v + 1]]``.
    levels, level_edges:
        Per-BFS-level settled nodes and DAG edge arrays ``(u, v)`` in scan
        order — consumed by the backward passes.
    """

    __slots__ = (
        "csr",
        "source",
        "dist",
        "sigma",
        "order",
        "levels",
        "level_edges",
        "weighted",
        "_pred_indptr",
        "_pred_indices",
    )

    def __init__(self, csr, source, dist, sigma, order, levels, level_edges,
                 pred_indptr=None, pred_indices=None, weighted=False) -> None:
        self.csr = csr
        self.source = source
        self.dist = dist
        self.sigma = sigma
        self.order = order
        self.levels = levels
        self.level_edges = level_edges
        self.weighted = weighted
        self._pred_indptr = pred_indptr
        self._pred_indices = pred_indices

    @property
    def pred_indptr(self):
        if self._pred_indptr is None:
            self._build_predecessors()
        return self._pred_indptr

    @property
    def pred_indices(self):
        if self._pred_indices is None:
            self._build_predecessors()
        return self._pred_indices

    def _build_predecessors(self) -> None:
        """Assemble the predecessor CSR lazily (only path sampling needs it).

        A stable grouping of the per-level DAG edges by head node keeps each
        predecessor list in the exact order the dict backend appended it.
        """
        n = self.csr.n
        if self.level_edges:
            all_u = _np.concatenate([edges[0] for edges in self.level_edges])
            all_v = _np.concatenate([edges[1] for edges in self.level_edges])
        else:
            all_u = _np.empty(0, dtype=_np.int64)
            all_v = _np.empty(0, dtype=_np.int64)
        pred_counts = _np.bincount(all_v, minlength=n)
        pred_indptr = _np.zeros(n + 1, dtype=_np.int64)
        _np.cumsum(pred_counts, out=pred_indptr[1:])
        self._pred_indptr = pred_indptr
        self._pred_indices = all_u[_np.argsort(all_v, kind="stable")]

    def predecessors(self, node_index: int):
        """Predecessor indices of ``node_index`` in append order."""
        return self.pred_indices[
            self.pred_indptr[node_index] : self.pred_indptr[node_index + 1]
        ]

    def path_counts_to(self, target_index: int) -> Dict[int, float]:
        """Shortest-path counts *to* ``target_index`` inside the DAG.

        The backward "beta" pass of ABRA's pair estimator: walking the DAG
        from the target along predecessor lists yields, for every node ``w``
        with ``d(w) <= d(target)`` lying on at least one shortest
        source→target path, the number of shortest ``w → target`` paths.
        The accumulation replays the dict backend's exact order, so the
        float sums are bit-identical to the label-space reference
        (:meth:`ShortestPathDAG.path_counts_to`).  BFS-built DAGs walk
        level by level; weighted (Dijkstra-built) DAGs propagate in
        reverse settle order instead — there are no levels, and a node can
        be a predecessor of targets at several hop depths, so the level
        walk would propagate counts before they are complete.
        """
        if self.weighted:
            members = {target_index}
            stack = [target_index]
            while stack:
                preds = self.predecessors(stack.pop())
                if not isinstance(preds, list):
                    preds = preds.tolist()
                for predecessor in preds:
                    if predecessor not in members:
                        members.add(predecessor)
                        stack.append(predecessor)
            beta: Dict[int, float] = {target_index: 1.0}
            order = self.order.tolist() if HAS_NUMPY else self.order
            for node in reversed(order):
                if node not in members:
                    continue
                value = beta[node]
                preds = self.predecessors(node)
                if not isinstance(preds, list):
                    preds = preds.tolist()
                for predecessor in preds:
                    beta[predecessor] = beta.get(predecessor, 0.0) + value
            return beta
        beta = {target_index: 1.0}
        frontier = [target_index]
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                preds = self.predecessors(node)
                if not isinstance(preds, list):
                    preds = preds.tolist()
                for predecessor in preds:
                    if predecessor not in beta:
                        beta[predecessor] = 0.0
                        next_frontier.append(predecessor)
                    beta[predecessor] += beta[node]
            frontier = next_frontier
        return beta

    def sample_path_indices(self, target_index: int, rng) -> List[int]:
        """Sample a uniform shortest path as an index list (source..target).

        Consumes the RNG exactly like ``ShortestPathDAG.sample_path`` so both
        backends draw identical paths from identical seeds.
        """
        from repro.errors import SamplingError

        if self.dist[target_index] < 0:
            raise SamplingError(
                f"target {self.csr.labels[target_index]!r} is unreachable "
                f"from source {self.csr.labels[self.source]!r}"
            )
        path = [target_index]
        current = target_index
        sigma = self.sigma
        while current != self.source:
            preds = self.predecessors(current)
            preds = preds.tolist() if HAS_NUMPY else list(preds)
            weights = [int(sigma[p]) for p in preds]
            current = sigma_choice(preds, weights, rng)
            path.append(current)
        path.reverse()
        return path


def sigma_choice(items: Sequence, weights: Sequence[int], rng):
    """Pick one of ``items`` with probability proportional to sigma counts.

    The threshold is drawn with ``rng.randrange(total)`` over the *integer*
    total, so the choice is exact — no float accumulation bias even when the
    sigma counts (shortest-path counts) exceed ``2**53``.  Named
    ``sigma_choice`` so "weighted" unambiguously refers to *edge weights*
    across the codebase; the probability weights here are path counts.

    Raises
    ------
    SamplingError
        If the lengths differ (a silent ``zip`` truncation would otherwise
        return an arbitrary item), or if the total weight is not positive.
    """
    from repro.errors import SamplingError

    if len(items) != len(weights):
        raise SamplingError(
            f"sigma_choice needs one weight per item, got {len(items)} "
            f"items but {len(weights)} weights"
        )
    total = 0
    for weight in weights:
        total += weight
    if total <= 0:
        raise SamplingError("cannot sample from an empty/zero-weight set")
    threshold = rng.randrange(total)
    cumulative = 0
    for item, weight in zip(items, weights):
        cumulative += weight
        if threshold < cumulative:
            return item
    return items[-1]


def weighted_choice(items: Sequence, weights: Sequence[int], rng):
    """Deprecated alias of :func:`sigma_choice`.

    "weighted" refers to *edge weights* throughout the codebase since the
    weighted SSSP engine landed; the sampling-weight helper is
    ``sigma_choice``.  This wrapper warns once per call site and will be
    removed in a future release.
    """
    import warnings

    warnings.warn(
        "weighted_choice is deprecated; use sigma_choice (the probability "
        "weights here are shortest-path counts, not edge weights)",
        DeprecationWarning,
        stacklevel=2,
    )
    return sigma_choice(items, weights, rng)


# ---------------------- the level-expansion kernel --------------------
#
# The expansion kernel is *hybrid*: each BFS level is expanded either with
# vectorised array operations (large frontiers — social networks collapse to
# a handful of huge levels) or with a sequential Python loop over cached
# adjacency lists (small frontiers — road networks have hundreds of thin
# levels where per-call numpy overhead would dominate).  Both expansion
# strategies visit edges in exactly the same order, so the choice never
# affects results, only speed.  Traversal state lives in ``array`` buffers
# shared with numpy views (``np.frombuffer``), giving the sequential path
# fast C-array subscription and the vectorised path zero-copy arrays.
#
# :class:`_BatchSweep` below is the ONLY copy of this hybrid expansion and
# of the int64→Python-int sigma overflow guard.  Every level-synchronous
# consumer — ``_np_bfs``, ``_np_shortest_path_dag`` (and through it
# ``csr_brandes``), the bidirectional ``_CSRSearchSide``, and the batched
# :func:`multi_source_sweep` — drives the same kernel, so the expansion
# logic cannot silently diverge between call sites again.

#: Frontiers whose total degree falls below this are expanded sequentially.
_SEQUENTIAL_EDGE_THRESHOLD = 192

#: ``direction`` values accepted by order-insensitive sweeps.
TOP_DOWN = "top-down"
DIRECTION_AUTO = "auto"
_DIRECTIONS = (TOP_DOWN, DIRECTION_AUTO)

#: Direction-optimisation switch (Beamer-style): a level goes bottom-up when
#: the unexplored edge cost is at most this multiple of the frontier's edge
#: cost.  Our bottom-up step has no per-vertex early exit (it is a single
#: vectorised gather), so the classic alpha=14 would switch far too early;
#: the break-even is roughly "one unexplored gather costs what one frontier
#: gather plus dedup/scatter costs".
_BOTTOM_UP_ALPHA = 2

#: ``int64`` ceiling for shortest-path counts.  A level expansion adds at
#: most ``max_degree`` predecessor counts per node, so once the largest
#: frontier count reaches ``2**63 / max_degree`` the kernels switch sigma to
#: arbitrary-precision Python ints *before* the first wrap can happen.
_SIGMA_INT64_LIMIT = 2**63


def _sigma_may_overflow(frontier_max_sigma: int, max_degree: int) -> bool:
    """True when the next level's counts could exceed the int64 range."""
    return frontier_max_sigma * max_degree >= _SIGMA_INT64_LIMIT


def _shared_state(n: int, typecode: str):
    """Return ``(buffer, numpy view)`` over the same ``n``-element memory."""
    store = array(typecode, bytes(8 * n))
    view = _np.frombuffer(store, dtype=_np.int64 if typecode == "q" else _np.float64)
    return store, view


def _np_first_occurrence(values, scratch):
    """Deduplicate ``values`` keeping the first occurrence of each element.

    O(k): writing positions back-to-front makes the *first* occurrence the
    last (surviving) write into ``scratch``, identifying it without a sort.
    """
    size = values.size
    if size <= 1:
        return values
    positions = _np.arange(size, dtype=_np.int64)
    scratch[values[::-1]] = positions[::-1]
    return values[scratch[values] == positions]


class _BatchSweep:
    """Level-synchronous sweep state over ``B`` stacked sources.

    This class is the single copy of the hybrid vectorised/sequential
    expand-one-level kernel *and* of the int64→Python-int sigma overflow
    guard (see the module comment above).  It runs ``B`` independent
    single-source searches over one flattened state space of size ``B * n``:
    source slot ``k`` owns the flat ids ``k * n .. k * n + n - 1`` and a
    node ``v`` in slot ``k`` is the flat id ``k * n + v``.  With ``B == 1``
    flat ids equal node ids and the sweep *is* the single-source kernel; with
    ``B > 1`` the per-slot thin frontiers merge into one fat frontier, which
    is what makes high-diameter (road-style) graphs vectorise.

    Per-slot determinism: the flattened frontier keeps every slot's nodes in
    that slot's discovery order, so the edge stream restricted to one slot is
    exactly the edge stream the single-source kernel scans.  All per-node
    accumulations (integer and float sigma, Brandes dependencies) therefore
    see the same additions in the same order, and batched results are
    bit-identical to per-source results.

    Parameters
    ----------
    csr:
        The snapshot to sweep over.
    roots:
        One source node index per slot.
    sigma_mode:
        ``None`` (distances only), ``"int"`` (exact shortest-path counts with
        the overflow guard) or ``"float"`` (Brandes-style float counts).
    track_edges:
        Record the per-level DAG edge arrays ``(u, v)`` in scan order (needed
        by predecessor reconstruction and the Brandes backward pass).
    """

    __slots__ = ("csr", "batch", "n", "size", "float_sigma", "track_edges",
                 "dist_store", "dist", "sigma", "sigma_view", "frontier",
                 "depth", "levels", "level_edges", "frontier_max_sigma",
                 "scratch", "direction", "bottom_up_levels",
                 "_explored_cost", "_unvisited")

    def __init__(self, csr: CSRGraph, roots, *, sigma_mode: Optional[str] = None,
                 track_edges: bool = False, direction: str = TOP_DOWN) -> None:
        if track_edges and sigma_mode is None:
            # Only the sigma-tracking loops record DAG edges; allowing the
            # combination would let the two expansion strategies disagree on
            # level_edges content, breaking the strategy-never-affects-
            # results invariant.
            raise ValueError("track_edges requires a sigma_mode")
        if direction not in _DIRECTIONS:
            raise ValueError(
                f"direction={direction!r} is not valid; choose one of {_DIRECTIONS}"
            )
        if direction == DIRECTION_AUTO and (sigma_mode is not None or track_edges):
            # Bottom-up discovery settles a level in node-index order, not in
            # edge-scan order; only sweeps whose results are pure functions
            # of the distance labels (no sigma, no recorded DAG edges, no
            # consumed ``levels`` ordering) may opt in.
            raise ValueError(
                "direction='auto' requires an order-insensitive sweep "
                "(no sigma_mode, no track_edges)"
            )
        self.csr = csr
        self.batch = len(roots)
        self.n = csr.n
        self.size = self.batch * csr.n
        self.float_sigma = sigma_mode == "float"
        self.track_edges = track_edges
        n = csr.n
        flat_roots = (
            list(roots) if self.batch == 1
            else [slot * n + root for slot, root in enumerate(roots)]
        )
        if HAS_NUMPY:
            self.dist_store, self.dist = _shared_state(self.size, "q")
            self.dist.fill(-1)
            self.scratch = _np.empty(self.size, dtype=_np.int64)
        else:
            self.dist_store = [-1] * self.size
            self.dist = self.dist_store
            self.scratch = None
        if sigma_mode is None:
            self.sigma = None
            self.sigma_view = None
        elif HAS_NUMPY:
            # ``sigma`` is what gets indexed element-wise: the shared buffer
            # while counts fit in int64, a plain list of Python ints after
            # the overflow guard trips (float sigma — the Brandes case —
            # never overflows).
            self.sigma, self.sigma_view = _shared_state(
                self.size, "d" if self.float_sigma else "q"
            )
        else:
            self.sigma = [0.0 if self.float_sigma else 0] * self.size
            self.sigma_view = None
        for flat in flat_roots:
            self.dist_store[flat] = 0
            if self.sigma is not None:
                self.sigma[flat] = 1.0 if self.float_sigma else 1
        self.frontier: object = flat_roots
        self.depth = 0
        self.levels: List[object] = [
            _np.asarray(flat_roots, dtype=_np.int64) if HAS_NUMPY else flat_roots
        ]
        self.level_edges: List[Tuple[object, object]] = []
        self.frontier_max_sigma = 1
        self.direction = direction if HAS_NUMPY else TOP_DOWN
        self.bottom_up_levels = 0
        self._unvisited = None
        # Cumulative degree of every already-*expanded* frontier.  Each node
        # enters exactly one frontier, so the degree of the undiscovered
        # nodes — what one bottom-up step would scan — is always
        # ``batch * 2m - explored - current frontier cost``, with no extra
        # per-level scans (the frontier cost is computed by every expansion
        # anyway).
        self._explored_cost = 0

    # ------------------------------------------------------------------
    @property
    def has_frontier(self) -> bool:
        return len(self.frontier) > 0

    def frontier_cost(self) -> int:
        """Total degree of the current frontier (the cost of one expansion)."""
        frontier = self.frontier
        if len(frontier) == 0:
            return 0
        if isinstance(frontier, list):
            indptr, _ = self.csr.adjacency_lists()
            if self.batch == 1:
                return int(sum(indptr[node + 1] - indptr[node] for node in frontier))
            n = self.n
            total = 0
            for flat in frontier:
                node = flat % n
                total += indptr[node + 1] - indptr[node]
            return total
        indptr = self.csr.indptr
        nodes = frontier if self.batch == 1 else frontier % self.n
        return int((indptr[nodes + 1] - indptr[nodes]).sum())

    def expand(self, frontier_cost: Optional[int] = None) -> int:
        """Expand one complete BFS level; return the number of scanned entries.

        ``frontier_cost`` lets a caller that already computed the frontier
        degree (for side selection in the bidirectional search) pass it in
        instead of rescanning.  The level is always recorded — possibly empty
        when the sweep is exhausted — so ``levels``/``level_edges`` stay
        aligned with ``depth``; drivers that want no trailing empty level
        call :meth:`trim` once the loop ends.
        """
        if frontier_cost is None:
            frontier_cost = self.frontier_cost()
        # Shortest-path counts grow multiplicatively per level (binomially on
        # grids); leave the int64 buffer for exact Python ints before the
        # next expansion could wrap.  Float sigma never overflows.
        if (
            self.sigma_view is not None
            and not self.float_sigma
            and _sigma_may_overflow(self.frontier_max_sigma, self.csr.max_degree)
        ):
            self.sigma = self.sigma_view.tolist()
            self.sigma_view = None
        if (
            self.direction == DIRECTION_AUTO
            and frontier_cost >= _SEQUENTIAL_EDGE_THRESHOLD
            and self.batch * 2 * self.csr.m - self._explored_cost
            <= frontier_cost * (_BOTTOM_UP_ALPHA + 1)
        ):
            scanned = self._expand_bottom_up()
        elif HAS_NUMPY and frontier_cost >= _SEQUENTIAL_EDGE_THRESHOLD:
            scanned = self._expand_vectorised()
            self._unvisited = None
        else:
            scanned = self._expand_sequential()
            self._unvisited = None
        self._explored_cost += frontier_cost
        self.depth += 1
        return scanned

    def trim(self) -> None:
        """Drop a trailing empty level recorded by the final expansion."""
        if len(self.levels) > 1 and len(self.levels[-1]) == 0:
            self.levels.pop()
            if self.track_edges and self.level_edges:
                self.level_edges.pop()

    # ------------------------------------------------------------------
    def _expand_sequential(self) -> int:
        """Expand via a Python loop over cached adjacency lists."""
        indptr, indices = self.csr.adjacency_lists()
        frontier = self.frontier
        if not isinstance(frontier, list):
            frontier = frontier.tolist()
        n = self.n
        single = self.batch == 1
        next_depth = self.depth + 1
        dist = self.dist_store
        sigma = self.sigma
        track_edges = self.track_edges
        fresh: List[int] = []
        edge_u: List[int] = []
        edge_v: List[int] = []
        scanned = 0
        if sigma is None:
            for flat in frontier:
                node = flat if single else flat % n
                base = flat - node
                start = indptr[node]
                stop = indptr[node + 1]
                scanned += stop - start
                for position in range(start, stop):
                    neighbor = base + indices[position]
                    if dist[neighbor] < 0:
                        dist[neighbor] = next_depth
                        fresh.append(neighbor)
        else:
            for flat in frontier:
                node = flat if single else flat % n
                base = flat - node
                sigma_flat = sigma[flat]
                for position in range(indptr[node], indptr[node + 1]):
                    neighbor = base + indices[position]
                    scanned += 1
                    known = dist[neighbor]
                    if known < 0:
                        dist[neighbor] = next_depth
                        fresh.append(neighbor)
                        known = next_depth
                    if known == next_depth:
                        sigma[neighbor] += sigma_flat
                        if track_edges:
                            edge_u.append(flat)
                            edge_v.append(neighbor)
            if fresh and not self.float_sigma and self.sigma_view is not None:
                self.frontier_max_sigma = max(sigma[flat] for flat in fresh)
        if HAS_NUMPY:
            self.levels.append(_np.asarray(fresh, dtype=_np.int64))
            if track_edges:
                self.level_edges.append(
                    (
                        _np.asarray(edge_u, dtype=_np.int64),
                        _np.asarray(edge_v, dtype=_np.int64),
                    )
                )
        else:
            self.levels.append(fresh)
            if track_edges:
                self.level_edges.append((edge_u, edge_v))
        self.frontier = fresh
        return scanned

    def _expand_vectorised(self) -> int:
        """Expand via numpy gather/scatter over the whole frontier at once."""
        indptr, indices = self.csr.indptr, self.csr.indices
        frontier = self.frontier
        if isinstance(frontier, list):
            frontier = _np.asarray(frontier, dtype=_np.int64)
        nodes = frontier if self.batch == 1 else frontier % self.n
        starts = indptr[nodes]
        counts = indptr[nodes + 1] - starts
        total = int(counts.sum())
        empty = _np.empty(0, dtype=_np.int64)
        if total == 0:
            self.levels.append(empty)
            if self.track_edges:
                self.level_edges.append((empty, empty))
            self.frontier = empty
            return 0
        # Concatenating the per-node adjacency slices in frontier order
        # reproduces exactly the edge scan order of the sequential dict BFS.
        row_offsets = _np.cumsum(counts)
        row_offsets -= counts
        positions = _np.arange(total, dtype=_np.int64)
        positions += _np.repeat(starts - row_offsets, counts)
        nbrs = indices[positions]
        if self.batch > 1:
            nbrs = nbrs + _np.repeat(frontier - nodes, counts)
        srcs = _np.repeat(frontier, counts) if self.sigma is not None else None
        next_depth = self.depth + 1
        dist = self.dist
        # In a level-synchronous BFS every neighbour that was undiscovered
        # when the level started sits at the next depth, so the unseen mask
        # doubles as the DAG-edge mask (in dict scan order).
        unseen = dist[nbrs] < 0
        edge_v = nbrs[unseen]
        fresh = _np_first_occurrence(edge_v, self.scratch)
        dist[fresh] = next_depth
        if self.sigma is not None:
            edge_u = srcs[unseen]
            if self.sigma_view is not None:
                _accumulate_level(
                    self.sigma_view, edge_v, self.sigma_view[edge_u],
                    self.float_sigma, self.size,
                )
                if not self.float_sigma and fresh.size:
                    self.frontier_max_sigma = int(self.sigma_view[fresh].max())
            else:
                sigma = self.sigma
                for tail, head in zip(edge_u.tolist(), edge_v.tolist()):
                    sigma[head] += sigma[tail]
            if self.track_edges:
                self.level_edges.append((edge_u, edge_v))
        self.levels.append(fresh)
        self.frontier = fresh
        return total


    def _expand_bottom_up(self) -> int:
        """Expand one level bottom-up: scan *undiscovered* nodes for frontier
        parents instead of scattering from the frontier.

        On very fat levels — social graphs collapse most of the graph into
        two or three levels, and batched road sweeps merge dozens of thin
        frontiers into one fat one — the set of still-undiscovered nodes is
        smaller (in edge cost) than the frontier, so one gather over the
        candidates beats the top-down gather + dedup + scatter.  The level's
        distance labels are identical to top-down's; only the order in which
        the fresh nodes are recorded differs (node-index order), which is
        why this strategy is restricted to order-insensitive sweeps.
        """
        indptr, indices = self.csr.indptr, self.csr.indices
        n = self.n
        cand = self._unvisited
        if cand is None:
            cand = _np.nonzero(self.dist < 0)[0]
            nodes = cand if self.batch == 1 else cand % n
            # Isolated nodes can never be discovered; dropping them keeps
            # every reduceat segment non-empty.
            cand = cand[indptr[nodes + 1] - indptr[nodes] > 0]
        empty = _np.empty(0, dtype=_np.int64)
        self.bottom_up_levels += 1
        if cand.size == 0:
            self.levels.append(empty)
            self.frontier = empty
            self._unvisited = cand
            return 0
        nodes = cand if self.batch == 1 else cand % n
        starts = indptr[nodes]
        counts = indptr[nodes + 1] - starts
        total = int(counts.sum())
        row_offsets = _np.cumsum(counts)
        row_offsets -= counts
        positions = _np.arange(total, dtype=_np.int64)
        positions += _np.repeat(starts - row_offsets, counts)
        nbrs = indices[positions]
        if self.batch > 1:
            nbrs = nbrs + _np.repeat(cand - nodes, counts)
        # A candidate joins the level iff any neighbour sits on the current
        # frontier (distance == depth); maximum.reduceat over the boolean
        # per-edge hits is a segmented logical OR.
        at_frontier = self.dist[nbrs] == self.depth
        hit = _np.maximum.reduceat(at_frontier, row_offsets)
        fresh = cand[hit]
        self.dist[fresh] = self.depth + 1
        self.levels.append(fresh)
        self.frontier = fresh
        self._unvisited = cand[~hit]
        return total


def _accumulate_level(totals, heads, values, as_float: bool, size: int) -> None:
    """Scatter-add ``values`` into ``totals[heads]`` preserving input order.

    Every head receives *all* of its contributions within this one call while
    its total is still zero, so per-bin summation in input order reproduces
    the dict backend's float rounding exactly.  Both float strategies have
    that property — ``bincount`` sums each bin sequentially in input order,
    ``np.add.at`` applies the additions one by one — so the choice between
    them (bincount allocates ``size`` floats per call, add.at pays a high
    per-element cost) affects speed only.  Integer totals always use
    ``np.add.at`` (bincount would go through float64 and lose exactness past
    ``2**53``).
    """
    if not as_float:
        _np.add.at(totals, heads, values)
    elif heads.size:
        if 8 * heads.size >= size:
            totals += _np.bincount(heads, weights=values, minlength=size)
        else:
            _np.add.at(totals, heads, values)


def _backward_dependencies(levels, level_edges, sigma, size, scratch):
    """Brandes' backward accumulation over a (possibly batched) sweep.

    Bit-identical to the dict implementation: the edge sequence of each level
    is re-ordered so contributions hit ``delta`` in exactly the order the
    sequential ``for node in reversed(order)`` loop produces (per slot, for
    batched sweeps — flat ids never collide across slots), and each tail's
    contributions land while its ``delta`` entry is still zero (its own
    additions happen one level earlier), so per-level scatter-adds preserve
    the rounding order too.  Returns the flat ``delta`` array.
    """
    delta_store, delta = _shared_state(size, "d")
    for level in range(len(levels) - 1, 0, -1):
        edge_u, edge_v = level_edges[level - 1]
        count = edge_u.size
        if count == 0:
            continue
        if count < _SEQUENTIAL_EDGE_THRESHOLD:
            # Sequential: group predecessor edges per head, walk heads in
            # reverse discovery order — the dict backend's exact sequence.
            per_head: Dict[int, List[int]] = {}
            for tail, head in zip(edge_u.tolist(), edge_v.tolist()):
                per_head.setdefault(head, []).append(tail)
            for head in reversed(levels[level].tolist()):
                tails = per_head.get(head)
                if not tails:
                    continue
                coefficient = 1.0 + delta_store[head]
                sigma_head = sigma[head]
                for tail in tails:
                    delta_store[tail] += sigma[tail] / sigma_head * coefficient
        else:
            nodes = levels[level]
            scratch[nodes] = _np.arange(nodes.size)
            reorder = _np.argsort(nodes.size - 1 - scratch[edge_v], kind="stable")
            heads = edge_v[reorder]
            tails = edge_u[reorder]
            contributions = sigma[tails] / sigma[heads] * (1.0 + delta[heads])
            _accumulate_level(delta, tails, contributions, True, size)
    return delta


def _np_bfs(csr: CSRGraph, source: int, max_depth: Optional[int]):
    """Level-synchronous hybrid BFS; returns ``(dist, levels)``.

    ``levels[k]`` holds the indices discovered at depth ``k`` in discovery
    order (int64 arrays).
    """
    sweep = _BatchSweep(csr, (source,))
    while sweep.has_frontier and (max_depth is None or sweep.depth < max_depth):
        sweep.expand()
    sweep.trim()
    return sweep.dist, sweep.levels


def _np_shortest_path_dag(
    csr: CSRGraph, source: int, max_depth: Optional[int], float_sigma: bool
) -> CSRShortestPathDAG:
    sweep = _BatchSweep(
        csr, (source,),
        sigma_mode="float" if float_sigma else "int",
        track_edges=True,
    )
    while sweep.has_frontier and (max_depth is None or sweep.depth < max_depth):
        sweep.expand()
    sweep.trim()
    levels = sweep.levels
    order = _np.concatenate(levels) if len(levels) > 1 else levels[0]
    sigma = sweep.sigma_view if float_sigma else sweep.sigma
    return CSRShortestPathDAG(
        csr, source, sweep.dist, sigma, order, levels, sweep.level_edges
    )


def _np_brandes(csr: CSRGraph, source: int):
    """Forward + backward Brandes pass; returns ``(delta, order, dist)``."""
    sweep = _BatchSweep(csr, (source,), sigma_mode="float", track_edges=True)
    while sweep.has_frontier:
        sweep.expand()
    sweep.trim()
    levels = sweep.levels
    order = _np.concatenate(levels) if len(levels) > 1 else levels[0]
    delta = _backward_dependencies(
        levels, sweep.level_edges, sweep.sigma_view, sweep.size, sweep.scratch
    )
    return delta, order, sweep.dist


# ----------------------- pure-Python kernels --------------------------
def _py_bfs(csr: CSRGraph, source: int, max_depth: Optional[int]):
    indptr, indices = csr.indptr, csr.indices
    dist = [-1] * csr.n
    dist[source] = 0
    order = [source]
    queue = deque([source])
    while queue:
        node = queue.popleft()
        depth = dist[node]
        if max_depth is not None and depth >= max_depth:
            continue
        for position in range(indptr[node], indptr[node + 1]):
            neighbor = indices[position]
            if dist[neighbor] < 0:
                dist[neighbor] = depth + 1
                order.append(neighbor)
                queue.append(neighbor)
    return dist, order


def _py_shortest_path_dag(
    csr: CSRGraph, source: int, max_depth: Optional[int], float_sigma: bool
) -> CSRShortestPathDAG:
    indptr, indices = csr.indptr, csr.indices
    n = csr.n
    dist = [-1] * n
    dist[source] = 0
    sigma: List = [0.0 if float_sigma else 0] * n
    sigma[source] = 1.0 if float_sigma else 1
    preds: List[List[int]] = [[] for _ in range(n)]
    order = [source]
    queue = deque([source])
    while queue:
        node = queue.popleft()
        depth = dist[node]
        if max_depth is not None and depth >= max_depth:
            continue
        for position in range(indptr[node], indptr[node + 1]):
            neighbor = indices[position]
            if dist[neighbor] < 0:
                dist[neighbor] = depth + 1
                order.append(neighbor)
                queue.append(neighbor)
            if dist[neighbor] == depth + 1:
                sigma[neighbor] += sigma[node]
                preds[neighbor].append(node)
    pred_indptr = [0] * (n + 1)
    pred_indices: List[int] = []
    for node in range(n):
        pred_indices.extend(preds[node])
        pred_indptr[node + 1] = len(pred_indices)
    levels: List[List[int]] = []
    for node in order:
        if dist[node] == len(levels):
            levels.append([])
        levels[dist[node]].append(node)
    return CSRShortestPathDAG(
        csr, source, dist, sigma, order, levels, None,
        pred_indptr=pred_indptr, pred_indices=pred_indices,
    )


def _py_brandes(csr: CSRGraph, source: int):
    dag = _py_shortest_path_dag(csr, source, None, float_sigma=True)
    sigma = dag.sigma
    delta = [0.0] * csr.n
    pred_indptr, pred_indices = dag.pred_indptr, dag.pred_indices
    for node in reversed(dag.order):
        coefficient = 1.0 + delta[node]
        sigma_node = sigma[node]
        for position in range(pred_indptr[node], pred_indptr[node + 1]):
            predecessor = pred_indices[position]
            delta[predecessor] += sigma[predecessor] / sigma_node * coefficient
    return delta, dag.order, dag.dist


# ------------------------- public kernels -----------------------------
def csr_bfs(csr: CSRGraph, source: int, *, max_depth: Optional[int] = None):
    """BFS from index ``source``; returns ``(dist, order)``.

    ``dist`` holds ``-1`` for unreachable nodes; ``order`` lists the settled
    indices in discovery order (the dict backend's result-dict key order).
    """
    if HAS_NUMPY:
        dist, levels = _np_bfs(csr, source, max_depth)
        order = _np.concatenate(levels) if len(levels) > 1 else levels[0]
        return dist, order
    return _py_bfs(csr, source, max_depth)


def csr_shortest_path_dag(
    csr: CSRGraph,
    source: int,
    *,
    max_depth: Optional[int] = None,
    float_sigma: bool = False,
) -> CSRShortestPathDAG:
    """Build the shortest-path DAG rooted at index ``source``."""
    if HAS_NUMPY:
        return _np_shortest_path_dag(csr, source, max_depth, float_sigma)
    return _py_shortest_path_dag(csr, source, max_depth, float_sigma)


def csr_brandes(csr: CSRGraph, source: int):
    """Brandes single-source dependencies from index ``source``.

    Returns ``(delta, order, dist)`` where ``delta[v]`` is the dependency of
    the source on ``v`` (``delta[source]`` carries a partial sum the caller
    must ignore, mirroring the dict implementation's ``pop``).
    """
    if HAS_NUMPY:
        return _np_brandes(csr, source)
    return _py_brandes(csr, source)


# ----------------------- the weighted SSSP engine ---------------------
#
# The second engine behind the one SSSP abstraction (see
# :mod:`repro.graphs.sssp`): a deterministic binary-heap Dijkstra over the
# same flat CSR arrays.  Heap entries are ``(distance, push counter, node)``
# — the counter breaks distance ties by *push order*, which is a pure
# function of the edge scan order (== dict insertion order), so the dict
# reference in :mod:`repro.graphs.traversal` and this kernel settle nodes
# in the same order, accumulate sigma in the same order and return
# bit-identical float distances.  Shortest-path counts are plain Python
# ints throughout (exact past ``2**63`` by construction — no overflow
# guard needed, unlike the int64 buffers of the BFS engine).

def csr_dijkstra_dag(
    csr: CSRGraph, source: int, *, float_sigma: bool = False
) -> CSRShortestPathDAG:
    """Weighted shortest-path DAG rooted at index ``source``.

    Runs Dijkstra over the snapshot's ``weights`` array (implicit ``1.0``
    per edge when the snapshot is unweighted — the forced-weighted A/B
    path).  Returns a :class:`CSRShortestPathDAG` with ``weighted=True``:
    ``dist`` is a float row (``-1.0`` = unreachable), ``sigma`` holds exact
    counts (Python ints, or floats in Brandes mode), ``order`` is the
    settle order, and the predecessor CSR is materialised eagerly (there
    are no BFS levels to rebuild it from lazily).
    """
    indptr, indices = csr.adjacency_lists()
    weight_list = csr.weight_list()
    n = csr.n
    dist: List[Optional[float]] = [None] * n
    sigma: List = [0.0 if float_sigma else 0] * n
    preds: List[List[int]] = [[] for _ in range(n)]
    order: List[int] = []
    dist[source] = 0.0
    sigma[source] = 1.0 if float_sigma else 1
    settled = bytearray(n)
    heap: List[Tuple[float, int, int]] = [(0.0, 0, source)]
    counter = 1
    while heap:
        d, _, node = heappop(heap)
        if settled[node]:
            continue
        settled[node] = 1
        order.append(node)
        sigma_node = sigma[node]
        for position in range(indptr[node], indptr[node + 1]):
            neighbor = indices[position]
            weight = weight_list[position] if weight_list is not None else 1.0
            candidate = d + weight
            known = dist[neighbor]
            if known is None or candidate < known:
                dist[neighbor] = candidate
                sigma[neighbor] = sigma_node
                preds[neighbor] = [node]
                heappush(heap, (candidate, counter, neighbor))
                counter += 1
            elif candidate == known:
                # Positive weights guarantee ``neighbor`` is unsettled here,
                # so its count is still accumulating.
                sigma[neighbor] += sigma_node
                preds[neighbor].append(node)
    pred_indptr = [0] * (n + 1)
    pred_indices: List[int] = []
    for node in range(n):
        pred_indices.extend(preds[node])
        pred_indptr[node + 1] = len(pred_indices)
    dist_out: object
    order_out: object
    if HAS_NUMPY:
        dist_out = _np.asarray(
            [-1.0 if value is None else value for value in dist],
            dtype=_np.float64,
        )
        order_out = _np.asarray(order, dtype=_np.int64)
        pred_indptr = _np.asarray(pred_indptr, dtype=_np.int64)
        pred_indices = _np.asarray(pred_indices, dtype=_np.int64)
    else:
        dist_out = [-1.0 if value is None else value for value in dist]
        order_out = order
    return CSRShortestPathDAG(
        csr, source, dist_out, sigma, order_out, None, None,
        pred_indptr=pred_indptr, pred_indices=pred_indices, weighted=True,
    )


def csr_dijkstra_distances(csr: CSRGraph, source: int, *, with_order: bool = False):
    """Weighted distance row from index ``source`` (``-1.0`` = unreachable).

    The lean (no sigma, no predecessors) form of :func:`csr_dijkstra_dag`,
    used by distance sweeps; the float distances are identical.  With
    ``with_order=True`` returns ``(row, order)`` where ``order`` lists the
    settled indices — the same settle order the full DAG records.
    """
    indptr, indices = csr.adjacency_lists()
    weight_list = csr.weight_list()
    n = csr.n
    dist: List[Optional[float]] = [None] * n
    dist[source] = 0.0
    settled = bytearray(n)
    order: List[int] = []
    heap: List[Tuple[float, int, int]] = [(0.0, 0, source)]
    counter = 1
    while heap:
        d, _, node = heappop(heap)
        if settled[node]:
            continue
        settled[node] = 1
        order.append(node)
        for position in range(indptr[node], indptr[node + 1]):
            neighbor = indices[position]
            weight = weight_list[position] if weight_list is not None else 1.0
            candidate = d + weight
            known = dist[neighbor]
            if known is None or candidate < known:
                dist[neighbor] = candidate
                heappush(heap, (candidate, counter, neighbor))
                counter += 1
    row = [-1.0 if value is None else value for value in dist]
    if HAS_NUMPY:
        row = _np.asarray(row, dtype=_np.float64)
    if with_order:
        return row, order
    return row


def weighted_backward_dependencies(dag: CSRShortestPathDAG):
    """Backward Brandes accumulation over a weighted DAG's settle order.

    The single copy of the weighted backward pass, shared by
    :func:`csr_dijkstra_brandes` and the delta-stepping kernel: node by
    node in reverse settle order, predecessors in append order, exactly
    the dict reference's float addition sequence.  When the compiled tier
    (:mod:`repro.graphs.compiled`) is on, a structurally identical numba
    loop runs instead — same scalar operations in the same order, fastmath
    disabled, so the floats are bit-identical either way.
    """
    n = dag.csr.n
    sigma = dag.sigma
    pred_indptr, pred_indices = dag.pred_indptr, dag.pred_indices
    if HAS_NUMPY and not isinstance(dag.order, list):
        from repro.graphs import compiled as _compiled

        kernel = _compiled.get_kernel("brandes_backward")
        if kernel is not None:
            delta = _np.zeros(n, dtype=_np.float64)
            kernel(
                dag.order,
                pred_indptr,
                pred_indices,
                _np.asarray(sigma, dtype=_np.float64),
                delta,
            )
            return delta
    delta = [0.0] * n
    order = dag.order if isinstance(dag.order, list) else dag.order.tolist()
    for node in reversed(order):
        coefficient = 1.0 + delta[node]
        sigma_node = sigma[node]
        for position in range(pred_indptr[node], pred_indptr[node + 1]):
            predecessor = pred_indices[position]
            delta[predecessor] += sigma[predecessor] / sigma_node * coefficient
    if HAS_NUMPY:
        delta = _np.asarray(delta, dtype=_np.float64)
    return delta


def csr_dijkstra_brandes(csr: CSRGraph, source: int):
    """Weighted Brandes single-source dependencies from index ``source``.

    The Dijkstra analogue of :func:`csr_brandes`: forward pass via
    :func:`csr_dijkstra_dag` (float sigma), backward accumulation via
    :func:`weighted_backward_dependencies`.  Returns ``(delta, order,
    dist)`` with the same ``delta[source]`` residue contract as the
    unweighted kernel.
    """
    dag = csr_dijkstra_dag(csr, source, float_sigma=True)
    return weighted_backward_dependencies(dag), dag.order, dag.dist


def csr_sssp_dag(
    csr: CSRGraph,
    source: int,
    *,
    weighted: bool = False,
    max_depth: Optional[int] = None,
    float_sigma: bool = False,
    sssp_kernel: Optional[str] = None,
) -> CSRShortestPathDAG:
    """The one SSSP entry point: route to the BFS or the Dijkstra engine.

    ``weighted=False`` is the exact historical
    :func:`csr_shortest_path_dag` BFS path; ``weighted=True`` runs the
    weighted kernel ``sssp_kernel`` selects (edge weights, or implicit
    ``1.0`` on an unweighted snapshot): Dijkstra by default for
    single-source calls, delta-stepping when forced — the two are
    bit-identical, see :mod:`repro.graphs.delta_stepping`.  ``max_depth``
    is a hop-count cap and therefore only meaningful for the BFS engine.
    """
    if weighted:
        if max_depth is not None:
            raise ValueError(
                "max_depth is a hop-count cap; it is not supported by the "
                "weighted (Dijkstra/delta-stepping) SSSP engine"
            )
        from repro.graphs import sssp as _sssp

        if _sssp.effective_sssp_kernel(sssp_kernel) == _sssp.KERNEL_DELTA:
            from repro.graphs import delta_stepping as _delta

            return _delta.csr_delta_dag(csr, source, float_sigma=float_sigma)
        return csr_dijkstra_dag(csr, source, float_sigma=float_sigma)
    return csr_shortest_path_dag(
        csr, source, max_depth=max_depth, float_sigma=float_sigma
    )


#: ``kind`` values accepted by :func:`multi_source_sweep`.
SWEEP_DISTANCE = "distance"
SWEEP_SIGMA = "sigma"
SWEEP_BRANDES = "brandes"
_SWEEP_KINDS = (SWEEP_DISTANCE, SWEEP_SIGMA, SWEEP_BRANDES)

#: Rough cap on the flattened edge-stream footprint of one batch; the
#: default batch size is derived from it so batching never allocates more
#: than a few tens of megabytes of transient level state.
_BATCH_EDGE_BUDGET = 2_000_000


def default_sweep_batch(csr: CSRGraph) -> int:
    """Default number of sources stacked per :func:`multi_source_sweep` batch.

    Sized so one batch's flattened state (``B * n`` arrays plus up to
    ``B * 2m`` of recorded level edges) stays within a fixed memory budget:
    high-diameter road graphs (small ``m``) get large batches — where
    batching is the whole point — while dense social graphs, whose fat
    frontiers already vectorise per source, get small ones.
    """
    return max(1, min(64, _BATCH_EDGE_BUDGET // max(1, 2 * csr.m)))


def multi_source_sweep(
    csr: CSRGraph,
    sources: Sequence[int],
    *,
    kind: str = SWEEP_DISTANCE,
    batch_size: Optional[int] = None,
    direction: Optional[str] = None,
    weighted: bool = False,
    sssp_kernel: Optional[str] = None,
) -> List[object]:
    """Run one sweep per source, ``batch_size`` sources at a time.

    The batched kernel stacks ``B`` single-source sweeps onto flattened
    ``(B * n)`` state arrays and expands them level-synchronously together
    (see :class:`_BatchSweep`): the per-slot thin frontiers of high-diameter
    graphs merge into one fat frontier that the vectorised expansion path
    can chew through, which is where per-source kernels lose to per-level
    numpy overhead.  Results are **bit-identical** to running the per-source
    kernels (``csr_bfs`` / ``csr_shortest_path_dag`` / ``csr_brandes``) one
    source at a time.

    Parameters
    ----------
    csr:
        The snapshot to sweep.
    sources:
        Source node *indices* (one result per source, in order).
    kind:
        ``"distance"`` — per-source length-``n`` hop-distance arrays
        (``-1`` = unreachable);
        ``"sigma"`` — per-source ``(dist, sigma)`` pairs with exact
        shortest-path counts (Python ints once the int64 overflow guard
        trips, exactly like the per-source kernel);
        ``"brandes"`` — per-source Brandes dependency arrays, including the
        ``delta[source]`` residue the caller must ignore (mirroring
        ``csr_brandes``).
    batch_size:
        Sources per stacked batch; defaults to :func:`default_sweep_batch`.
    direction:
        ``"top-down"`` or ``"auto"`` (direction-optimising: very fat levels
        switch to a bottom-up step).  Only ``"distance"`` sweeps — whose
        results are pure functions of the distance labels — may use
        ``"auto"``, and they default to it; the distance rows are identical
        either way, only wall-clock time changes.  Order-sensitive kinds
        (``"sigma"``, ``"brandes"``) always run top-down.
    weighted:
        Run the weighted SSSP engine instead of BFS; float distance rows
        (``-1.0`` = unreachable).  ``direction`` is ignored (there is no
        bottom-up step to take).
    sssp_kernel:
        Weighted kernel choice (``"auto"``/``"dijkstra"``/``"delta"``, see
        :mod:`repro.graphs.sssp`).  ``"auto"`` batches multi-source sweeps
        through the delta-stepping kernel
        (:func:`repro.graphs.delta_stepping.delta_sweep` — stacked bucket
        frontiers, the weighted analogue of the BFS level batching) and
        keeps single-source sweeps on the per-source Dijkstra loop.  The
        kernels are bit-identical, so the knob affects speed only.

    Without numpy the batched layout has nothing to vectorise, so the
    function falls back to the per-source pure-Python kernels (results are
    identical by the same contract).
    """
    if kind not in _SWEEP_KINDS:
        raise ValueError(f"unknown sweep kind {kind!r}; choose one of {_SWEEP_KINDS}")
    if direction is None:
        direction = DIRECTION_AUTO if kind == SWEEP_DISTANCE else TOP_DOWN
    elif direction not in _DIRECTIONS:
        raise ValueError(
            f"direction={direction!r} is not valid; choose one of {_DIRECTIONS}"
        )
    elif direction == DIRECTION_AUTO and kind != SWEEP_DISTANCE:
        raise ValueError(
            f"direction='auto' is only valid for kind='{SWEEP_DISTANCE}' "
            "sweeps; sigma/Brandes sweeps are order-sensitive"
        )
    source_list = [int(source) for source in sources]
    for source in source_list:
        if source < 0 or source >= csr.n:
            raise GraphError(
                f"source index {source} out of range for a {csr.n}-node snapshot"
            )
    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    results: List[object] = []
    if weighted:
        from repro.graphs import sssp as _sssp

        kernel = _sssp.effective_sssp_kernel(
            sssp_kernel, batched=len(source_list) > 1
        )
        if kernel == _sssp.KERNEL_DELTA:
            from repro.graphs import delta_stepping as _delta

            return _delta.delta_sweep(
                csr, source_list, kind=kind, batch_size=batch_size
            )
        for source in source_list:
            if kind == SWEEP_DISTANCE:
                results.append(csr_dijkstra_distances(csr, source))
            elif kind == SWEEP_SIGMA:
                dag = csr_dijkstra_dag(csr, source)
                results.append((dag.dist, dag.sigma))
            else:
                delta, _, _ = csr_dijkstra_brandes(csr, source)
                results.append(delta)
        return results
    if not HAS_NUMPY:
        for source in source_list:
            if kind == SWEEP_DISTANCE:
                results.append(csr_bfs(csr, source)[0])
            elif kind == SWEEP_SIGMA:
                dag = csr_shortest_path_dag(csr, source)
                results.append((dag.dist, dag.sigma))
            else:
                delta, _, _ = csr_brandes(csr, source)
                results.append(delta)
        return results
    if batch_size is None:
        batch_size = default_sweep_batch(csr)
    n = csr.n
    for start in range(0, len(source_list), batch_size):
        roots = source_list[start : start + batch_size]
        sweep = _BatchSweep(
            csr,
            roots,
            sigma_mode=(
                "float" if kind == SWEEP_BRANDES
                else "int" if kind == SWEEP_SIGMA
                else None
            ),
            track_edges=kind == SWEEP_BRANDES,
            direction=direction if kind == SWEEP_DISTANCE else TOP_DOWN,
        )
        while sweep.has_frontier:
            sweep.expand()
        sweep.trim()
        if kind == SWEEP_BRANDES:
            delta = _backward_dependencies(
                sweep.levels, sweep.level_edges, sweep.sigma_view,
                sweep.size, sweep.scratch,
            )
            for slot in range(len(roots)):
                results.append(delta[slot * n : (slot + 1) * n].copy())
        elif kind == SWEEP_SIGMA:
            for slot in range(len(roots)):
                dist_row = sweep.dist[slot * n : (slot + 1) * n].copy()
                if sweep.sigma_view is not None:
                    sigma_row: object = sweep.sigma_view[
                        slot * n : (slot + 1) * n
                    ].copy()
                else:
                    sigma_row = sweep.sigma[slot * n : (slot + 1) * n]
                results.append((dist_row, sigma_row))
        else:
            for slot in range(len(roots)):
                results.append(sweep.dist[slot * n : (slot + 1) * n].copy())
    return results


def distance_stats_from_row(dist):
    """``(reachable node count, total distance)`` of one distance row.

    Accepts either a numpy row from :func:`multi_source_sweep` or the list
    the pure-Python fallback produces (``-1`` = unreachable).  Hop-distance
    rows yield an integer total; weighted (float) rows yield a float total.
    """
    if HAS_NUMPY and not isinstance(dist, list):
        reached = dist >= 0
        if dist.dtype.kind == "f":
            # Sequential left-to-right sum in node-index order: numpy's
            # pairwise .sum() re-associates float additions, which would
            # break bit-identity with the dict backend's sequential total.
            # repro-lint: disable=float-fold — audited: builtin sum over tolist() is the pinned sequential node-index-order fold
            return int(reached.sum()), sum(dist[reached].tolist())
        return int(reached.sum()), int(dist[reached].sum())
    reachable = 0
    total = 0
    for value in dist:
        if value >= 0:
            reachable += 1
            total += value
    return reachable, total


def csr_distance_stats(csr: CSRGraph, source: int) -> Tuple[int, int]:
    """Return ``(reachable node count, total hop distance)`` from ``source``.

    The single-source convenience form of the closeness statistic;
    bulk callers run :func:`multi_source_sweep` over whole source chunks
    instead (see ``repro.centrality.closeness``).
    """
    [dist] = multi_source_sweep(csr, (source,), kind=SWEEP_DISTANCE)
    return distance_stats_from_row(dist)
