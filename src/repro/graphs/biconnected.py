"""Biconnected components (blocks) and articulation points (cutpoints).

SaPHyRa_bc's ISP sample space is built on the bi-component decomposition
(Section IV-A of the paper): shortest paths are broken at cutpoints into
pieces that live entirely inside one block.  This module implements the
classic Hopcroft–Tarjan DFS, iteratively so it works on deep graphs (road
networks have path-like regions tens of thousands of hops long, which would
overflow Python's recursion limit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Set, Tuple

from repro.graphs.graph import Graph

Node = Hashable
Edge = Tuple[Node, Node]


@dataclass
class BiconnectedDecomposition:
    """The blocks and cutpoints of a graph.

    Attributes
    ----------
    components:
        One node list per biconnected component (block).  Every edge of the
        graph belongs to exactly one block; a block always has >= 2 nodes.
        Isolated nodes belong to no block.
    cutpoints:
        Articulation points: nodes whose removal increases the number of
        connected components.
    node_components:
        ``{node: [block indices containing the node]}`` (filled automatically).
    """

    components: List[List[Node]]
    cutpoints: Set[Node]
    node_components: Dict[Node, List[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.node_components:
            for index, nodes in enumerate(self.components):
                for node in nodes:
                    self.node_components.setdefault(node, []).append(index)

    def components_of(self, node: Node) -> List[int]:
        """Return the indices of the blocks containing ``node`` (may be empty)."""
        return self.node_components.get(node, [])

    def share_component(self, u: Node, v: Node) -> bool:
        """Return ``True`` if ``u`` and ``v`` belong to a common block."""
        comps_u = self.node_components.get(u)
        comps_v = self.node_components.get(v)
        if not comps_u or not comps_v:
            return False
        if len(comps_u) > len(comps_v):
            comps_u, comps_v = comps_v, comps_u
        other = set(comps_v)
        return any(index in other for index in comps_u)

    def is_cutpoint(self, node: Node) -> bool:
        """Return ``True`` if ``node`` is an articulation point."""
        return node in self.cutpoints


def biconnected_components(graph: Graph) -> BiconnectedDecomposition:
    """Compute the biconnected components and articulation points of ``graph``.

    Iterative Hopcroft–Tarjan: a DFS maintaining discovery times and low
    links, with an explicit edge stack from which a block is popped whenever
    the articulation condition ``low[child] >= disc[parent]`` fires on
    retreat.  Runs in ``O(n + m)``.
    """
    disc: Dict[Node, int] = {}
    low: Dict[Node, int] = {}
    components_edges: List[List[Edge]] = []
    cutpoints: Set[Node] = set()
    timer = 0

    for root in graph.nodes():
        if root in disc:
            continue
        disc[root] = low[root] = timer
        timer += 1
        if graph.degree(root) == 0:
            continue
        root_children = 0
        edge_stack: List[Edge] = []
        stack = [(root, None, iter(graph.neighbors(root)))]
        while stack:
            node, parent, neighbors = stack[-1]
            child_pushed = False
            for neighbor in neighbors:
                if neighbor == parent:
                    continue
                if neighbor not in disc:
                    disc[neighbor] = low[neighbor] = timer
                    timer += 1
                    edge_stack.append((node, neighbor))
                    if node == root:
                        root_children += 1
                    stack.append((neighbor, node, iter(graph.neighbors(neighbor))))
                    child_pushed = True
                    break
                if disc[neighbor] < disc[node]:
                    # Back edge to a proper ancestor.
                    edge_stack.append((node, neighbor))
                    if disc[neighbor] < low[node]:
                        low[node] = disc[neighbor]
            if child_pushed:
                continue
            stack.pop()
            if not stack:
                continue
            parent_node = stack[-1][0]
            if low[node] < low[parent_node]:
                low[parent_node] = low[node]
            if low[node] >= disc[parent_node]:
                # parent_node separates the subtree rooted at ``node``:
                # everything pushed since the tree edge (parent_node, node)
                # forms one block.
                component: List[Edge] = []
                while edge_stack:
                    edge = edge_stack.pop()
                    component.append(edge)
                    if edge == (parent_node, node):
                        break
                if component:
                    components_edges.append(component)
                if parent_node != root:
                    cutpoints.add(parent_node)
        if root_children >= 2:
            cutpoints.add(root)
        if edge_stack:
            # Safety net: any edges not popped yet form the root's block.
            components_edges.append(edge_stack)

    components: List[List[Node]] = []
    for edges in components_edges:
        nodes_in_block: Dict[Node, None] = {}
        for u, v in edges:
            nodes_in_block[u] = None
            nodes_in_block[v] = None
        components.append(list(nodes_in_block))
    return BiconnectedDecomposition(components=components, cutpoints=cutpoints)


def articulation_points(graph: Graph) -> Set[Node]:
    """Convenience wrapper returning only the cutpoints of ``graph``."""
    return biconnected_components(graph).cutpoints


def bridges(graph: Graph) -> List[Edge]:
    """Return the bridge edges of ``graph``.

    A bridge is an edge whose block contains exactly two nodes (the edge
    itself).
    """
    decomposition = biconnected_components(graph)
    result: List[Edge] = []
    for nodes in decomposition.components:
        if len(nodes) == 2:
            result.append((nodes[0], nodes[1]))
    return result
