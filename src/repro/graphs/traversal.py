"""Breadth-first-search primitives: distances, shortest-path DAGs and
uniform shortest-path sampling.

These are the building blocks shared by the exact Brandes algorithm, the
sampling baselines and SaPHyRa_bc's sample generator.

Every public function takes a ``backend`` argument (``None``/``"auto"``,
``"dict"`` or ``"csr"``; see :mod:`repro.graphs.csr`).  The dict backend is
the readable reference implementation over the hash-based adjacency; the CSR
backend runs the same algorithms over integer indices on a cached
compressed-sparse-row snapshot and returns bit-identical results.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence

from repro.errors import GraphError, SamplingError
from repro.graphs import csr as _csr
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng

Node = Hashable


def bfs_distances(
    graph: Graph,
    source: Node,
    *,
    max_depth: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[Node, int]:
    """Return ``{node: hop distance}`` for every node reachable from ``source``.

    Parameters
    ----------
    max_depth:
        If given, stop expanding once this depth is reached (nodes farther
        than ``max_depth`` are absent from the result).
    backend:
        Traversal backend (``"dict"``, ``"csr"`` or ``None`` for the
        default); the result — including key order — is identical.
    """
    if not graph.has_node(source):
        raise GraphError(f"source node {source!r} does not exist")
    if _csr.effective_backend(graph, backend) == _csr.CSR_BACKEND:
        snapshot = _csr.as_csr(graph)
        dist, order = _csr.csr_bfs(
            snapshot, snapshot.index[source], max_depth=max_depth
        )
        if _csr.HAS_NUMPY:
            order_list = order.tolist()
            values = dist[order].tolist()
        else:
            order_list = order
            values = [dist[node] for node in order_list]
        if snapshot.identity_labels:
            return dict(zip(order_list, values))
        labels = snapshot.labels
        return dict(zip(map(labels.__getitem__, order_list), values))
    distances: Dict[Node, int] = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        depth = distances[node]
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                queue.append(neighbor)
    return distances


@dataclass
class ShortestPathDAG:
    """The shortest-path DAG rooted at ``source``.

    Attributes
    ----------
    source:
        Root of the BFS.
    distances:
        ``{node: hop distance from source}`` for reachable nodes.
    sigma:
        ``{node: number of distinct shortest paths from source}``.
    predecessors:
        ``{node: [predecessors on shortest paths]}``.
    order:
        Nodes in non-decreasing distance order (the order they were settled),
        which is the reverse of the order Brandes' dependency accumulation
        walks them in.
    """

    source: Node
    distances: Dict[Node, int]
    sigma: Dict[Node, int]
    predecessors: Dict[Node, List[Node]]
    order: List[Node]

    def number_of_shortest_paths(self, target: Node) -> int:
        """Return ``sigma_{source, target}`` (0 if unreachable)."""
        return self.sigma.get(target, 0)

    def path_counts_to(self, target: Node) -> Dict[Node, float]:
        """Shortest-path counts *to* ``target`` inside the DAG.

        The backward "beta" pass used by pair estimators (ABRA): for every
        node ``w`` on at least one shortest source→target path, the number
        of shortest ``w → target`` paths, found by walking predecessor lists
        backwards from the target.  Counts are accumulated as floats in
        frontier/predecessor order — the reference order the CSR kernel
        (:meth:`~repro.graphs.csr.CSRShortestPathDAG.path_counts_to`)
        replays bit for bit.
        """
        beta: Dict[Node, float] = {target: 1.0}
        frontier = [target]
        while frontier:
            next_frontier: List[Node] = []
            for node in frontier:
                for predecessor in self.predecessors[node]:
                    if predecessor not in beta:
                        beta[predecessor] = 0.0
                        next_frontier.append(predecessor)
                    beta[predecessor] += beta[node]
            frontier = next_frontier
        return beta

    def sample_path(self, target: Node, rng: SeedLike = None) -> List[Node]:
        """Sample a shortest path from ``source`` to ``target`` uniformly.

        The path is returned as a node list ``[source, ..., target]``.

        Raises
        ------
        SamplingError
            If ``target`` is unreachable from ``source``.
        """
        if target not in self.distances:
            raise SamplingError(
                f"target {target!r} is unreachable from source {self.source!r}"
            )
        rng = ensure_rng(rng)
        path = [target]
        current = target
        while current != self.source:
            preds = self.predecessors[current]
            weights = [self.sigma[p] for p in preds]
            current = _weighted_choice(preds, weights, rng)
            path.append(current)
        path.reverse()
        return path


def shortest_path_dag(
    graph: Graph,
    source: Node,
    *,
    max_depth: Optional[int] = None,
    backend: Optional[str] = None,
) -> ShortestPathDAG:
    """Run a BFS from ``source`` computing distances, path counts and the DAG."""
    if not graph.has_node(source):
        raise GraphError(f"source node {source!r} does not exist")
    if _csr.effective_backend(graph, backend) == _csr.CSR_BACKEND:
        snapshot = _csr.as_csr(graph)
        dag = _csr.csr_shortest_path_dag(
            snapshot, snapshot.index[source], max_depth=max_depth
        )
        return _dag_to_labels(snapshot, dag, source)
    distances: Dict[Node, int] = {source: 0}
    sigma: Dict[Node, int] = {source: 1}
    predecessors: Dict[Node, List[Node]] = {source: []}
    order: List[Node] = []
    queue = deque([source])
    while queue:
        node = queue.popleft()
        order.append(node)
        depth = distances[node]
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                sigma[neighbor] = 0
                predecessors[neighbor] = []
                queue.append(neighbor)
            if distances[neighbor] == depth + 1:
                sigma[neighbor] += sigma[node]
                predecessors[neighbor].append(node)
    return ShortestPathDAG(
        source=source,
        distances=distances,
        sigma=sigma,
        predecessors=predecessors,
        order=order,
    )


def _dag_to_labels(snapshot, dag, source: Node) -> ShortestPathDAG:
    """Translate an index-space DAG back to the label-keyed dataclass."""
    labels = snapshot.labels
    order_list = dag.order.tolist() if _csr.HAS_NUMPY else list(dag.order)
    dist, sigma = dag.dist, dag.sigma
    pred_indptr, pred_indices = dag.pred_indptr, dag.pred_indices
    pred_list = pred_indices.tolist() if _csr.HAS_NUMPY else pred_indices
    distances: Dict[Node, int] = {}
    sigmas: Dict[Node, int] = {}
    predecessors: Dict[Node, List[Node]] = {}
    order: List[Node] = []
    for index in order_list:
        label = labels[index]
        order.append(label)
        distances[label] = int(dist[index])
        sigmas[label] = int(sigma[index])
        predecessors[label] = [
            labels[p]
            for p in pred_list[int(pred_indptr[index]) : int(pred_indptr[index + 1])]
        ]
    return ShortestPathDAG(
        source=source,
        distances=distances,
        sigma=sigmas,
        predecessors=predecessors,
        order=order,
    )


def sample_shortest_path(
    graph: Graph,
    source: Node,
    target: Node,
    rng: SeedLike = None,
    *,
    backend: Optional[str] = None,
) -> List[Node]:
    """Sample a uniformly random shortest path between two nodes.

    This is the straightforward (single-direction BFS) sampler; the balanced
    bidirectional variant in :mod:`repro.graphs.bidirectional` is what the
    fast samplers use.
    """
    dag = shortest_path_dag(graph, source, backend=backend)
    return dag.sample_path(target, rng)


def k_hop_neighborhood(
    graph: Graph, center: Node, hops: int, *, backend: Optional[str] = None
) -> List[Node]:
    """Return all nodes within ``hops`` of ``center`` (including ``center``)."""
    if hops < 0:
        raise ValueError(f"hops must be >= 0, got {hops}")
    return list(bfs_distances(graph, center, max_depth=hops, backend=backend))


def _weighted_choice(items: Sequence, weights: Sequence[int], rng) -> Node:
    """Pick one of ``items`` with probability proportional to ``weights``.

    Uses an exact integer threshold (``rng.randrange``) rather than float
    accumulation, so sampling stays unbiased even when shortest-path counts
    exceed ``2**53``.
    """
    return _csr.weighted_choice(items, weights, rng)
