"""Shortest-path primitives: distances, shortest-path DAGs and uniform
shortest-path sampling.

These are the building blocks shared by the exact Brandes algorithm, the
sampling baselines and SaPHyRa_bc's sample generator.

Every public function takes a ``backend`` argument (``None``/``"auto"``,
``"dict"`` or ``"csr"``; see :mod:`repro.graphs.csr`).  The dict backend is
the readable reference implementation over the hash-based adjacency; the CSR
backend runs the same algorithms over integer indices on a cached
compressed-sparse-row snapshot and returns bit-identical results.

There is ONE SSSP abstraction with two engines behind it (routing policy in
:mod:`repro.graphs.sssp`): the level-synchronous BFS for unit weights — the
exact historical code paths — and a deterministic Dijkstra for graphs with
edge weights.  :func:`shortest_path_dag` and :func:`sssp_distances` accept a
``weighted`` argument (``None``/``"auto"``/``"on"``/``"off"``) and dispatch;
:func:`bfs_distances` is always the hop-distance BFS (diameter estimation
and the VC-dimension machinery are defined on hop distances).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, Hashable, List, Optional, Sequence, Union

from repro.errors import GraphError, SamplingError
from repro.graphs import csr as _csr
from repro.graphs import sssp as _sssp
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng

Node = Hashable


def bfs_distances(
    graph: Graph,
    source: Node,
    *,
    max_depth: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[Node, int]:
    """Return ``{node: hop distance}`` for every node reachable from ``source``.

    Always the unit-weight BFS engine — hop distances ignore edge weights
    by definition (diameter estimation and the VC-dimension machinery are
    hop-based); use :func:`sssp_distances` for weight-aware distances.

    Parameters
    ----------
    max_depth:
        If given, stop expanding once this depth is reached (nodes farther
        than ``max_depth`` are absent from the result).
    backend:
        Traversal backend (``"dict"``, ``"csr"`` or ``None`` for the
        default); the result — including key order — is identical.
    """
    if not graph.has_node(source):
        raise GraphError(f"source node {source!r} does not exist")
    if _csr.effective_backend(graph, backend) == _csr.CSR_BACKEND:
        snapshot = _csr.as_csr(graph)
        dist, order = _csr.csr_bfs(
            snapshot, snapshot.index[source], max_depth=max_depth
        )
        if _csr.HAS_NUMPY:
            order_list = order.tolist()
            values = dist[order].tolist()
        else:
            order_list = order
            values = [dist[node] for node in order_list]
        if snapshot.identity_labels:
            return dict(zip(order_list, values))
        labels = snapshot.labels
        return dict(zip(map(labels.__getitem__, order_list), values))
    distances: Dict[Node, int] = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        depth = distances[node]
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                queue.append(neighbor)
    return distances


@dataclass
class ShortestPathDAG:
    """The shortest-path DAG rooted at ``source``.

    Attributes
    ----------
    source:
        Root of the search.
    distances:
        ``{node: distance from source}`` for reachable nodes — integer hop
        counts for BFS-built DAGs, float path lengths for weighted
        (Dijkstra-built) DAGs.
    sigma:
        ``{node: number of distinct shortest paths from source}``.
    predecessors:
        ``{node: [predecessors on shortest paths]}``.
    order:
        Nodes in non-decreasing distance order (the order they were settled),
        which is the reverse of the order Brandes' dependency accumulation
        walks them in.
    weighted:
        ``True`` when the DAG was built by the weighted (Dijkstra) engine.
    """

    source: Node
    distances: Dict[Node, Union[int, float]]
    sigma: Dict[Node, int]
    predecessors: Dict[Node, List[Node]]
    order: List[Node]
    weighted: bool = False

    def number_of_shortest_paths(self, target: Node) -> int:
        """Return ``sigma_{source, target}`` (0 if unreachable)."""
        return self.sigma.get(target, 0)

    def path_counts_to(self, target: Node) -> Dict[Node, float]:
        """Shortest-path counts *to* ``target`` inside the DAG.

        The backward "beta" pass used by pair estimators (ABRA): for every
        node ``w`` on at least one shortest source→target path, the number
        of shortest ``w → target`` paths.  Counts are accumulated as floats
        in a reference order the CSR kernel
        (:meth:`~repro.graphs.csr.CSRShortestPathDAG.path_counts_to`)
        replays bit for bit.

        BFS-built DAGs walk predecessor lists level by level: every
        predecessor edge drops the distance by exactly one level, so a
        node's count is complete before its own propagation.  Weighted
        (Dijkstra-built) DAGs have no such level structure — a node can be
        a predecessor of targets at several hop depths — so they propagate
        in reverse settle order (a topological order of the DAG, since
        positive weights settle every predecessor strictly earlier),
        restricted to the nodes that actually reach ``target``.
        """
        if self.weighted:
            members = {target}
            stack = [target]
            while stack:
                for predecessor in self.predecessors[stack.pop()]:
                    if predecessor not in members:
                        members.add(predecessor)
                        stack.append(predecessor)
            beta: Dict[Node, float] = {target: 1.0}
            for node in reversed(self.order):
                if node not in members:
                    continue
                value = beta[node]
                for predecessor in self.predecessors[node]:
                    beta[predecessor] = beta.get(predecessor, 0.0) + value
            return beta
        beta = {target: 1.0}
        frontier = [target]
        while frontier:
            next_frontier: List[Node] = []
            for node in frontier:
                for predecessor in self.predecessors[node]:
                    if predecessor not in beta:
                        beta[predecessor] = 0.0
                        next_frontier.append(predecessor)
                    beta[predecessor] += beta[node]
            frontier = next_frontier
        return beta

    def sample_path(self, target: Node, rng: SeedLike = None) -> List[Node]:
        """Sample a shortest path from ``source`` to ``target`` uniformly.

        The path is returned as a node list ``[source, ..., target]``.

        Raises
        ------
        SamplingError
            If ``target`` is unreachable from ``source``.
        """
        if target not in self.distances:
            raise SamplingError(
                f"target {target!r} is unreachable from source {self.source!r}"
            )
        rng = ensure_rng(rng)
        path = [target]
        current = target
        while current != self.source:
            preds = self.predecessors[current]
            weights = [self.sigma[p] for p in preds]
            current = sigma_choice(preds, weights, rng)
            path.append(current)
        path.reverse()
        return path


def shortest_path_dag(
    graph: Graph,
    source: Node,
    *,
    max_depth: Optional[int] = None,
    backend: Optional[str] = None,
    weighted: Optional[str] = None,
) -> ShortestPathDAG:
    """Compute distances, path counts and the shortest-path DAG from ``source``.

    ``weighted`` (``None``/``"auto"``/``"on"``/``"off"``; see
    :mod:`repro.graphs.sssp`) routes between the BFS engine — the exact
    historical path, always taken for unit-weight graphs under ``"auto"`` —
    and the deterministic Dijkstra engine for weighted graphs.  Both
    backends return bit-identical DAGs either way.
    """
    if not graph.has_node(source):
        raise GraphError(f"source node {source!r} does not exist")
    if _sssp.effective_weighted(graph, weighted):
        if max_depth is not None:
            raise ValueError(
                "max_depth is a hop-count cap; it is not supported by the "
                "weighted (Dijkstra) SSSP engine"
            )
        if _csr.effective_backend(graph, backend) == _csr.CSR_BACKEND:
            snapshot = _csr.as_csr(graph)
            # csr_sssp_dag routes the ``sssp_kernel`` knob (Dijkstra or the
            # bit-identical delta-stepping kernel); the dict reference below
            # is always Dijkstra — it IS the oracle both kernels pin to.
            dag = _csr.csr_sssp_dag(
                snapshot, snapshot.index[source], weighted=True
            )
            return _dag_to_labels(snapshot, dag, source)
        return dict_dijkstra_dag(graph, source)
    if _csr.effective_backend(graph, backend) == _csr.CSR_BACKEND:
        snapshot = _csr.as_csr(graph)
        dag = _csr.csr_shortest_path_dag(
            snapshot, snapshot.index[source], max_depth=max_depth
        )
        return _dag_to_labels(snapshot, dag, source)
    distances: Dict[Node, int] = {source: 0}
    sigma: Dict[Node, int] = {source: 1}
    predecessors: Dict[Node, List[Node]] = {source: []}
    order: List[Node] = []
    queue = deque([source])
    while queue:
        node = queue.popleft()
        order.append(node)
        depth = distances[node]
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                sigma[neighbor] = 0
                predecessors[neighbor] = []
                queue.append(neighbor)
            if distances[neighbor] == depth + 1:
                sigma[neighbor] += sigma[node]
                predecessors[neighbor].append(node)
    return ShortestPathDAG(
        source=source,
        distances=distances,
        sigma=sigma,
        predecessors=predecessors,
        order=order,
    )


def _dag_to_labels(snapshot, dag, source: Node) -> ShortestPathDAG:
    """Translate an index-space DAG back to the label-keyed dataclass."""
    labels = snapshot.labels
    order_list = dag.order.tolist() if _csr.HAS_NUMPY else list(dag.order)
    dist, sigma = dag.dist, dag.sigma
    pred_indptr, pred_indices = dag.pred_indptr, dag.pred_indices
    pred_list = pred_indices.tolist() if _csr.HAS_NUMPY else pred_indices
    weighted = bool(getattr(dag, "weighted", False))
    # Weighted DAGs carry float path lengths; truncating them to int would
    # corrupt distances, so only hop-count DAGs go through int().
    cast = float if weighted else int
    distances: Dict[Node, Union[int, float]] = {}
    sigmas: Dict[Node, int] = {}
    predecessors: Dict[Node, List[Node]] = {}
    order: List[Node] = []
    for index in order_list:
        label = labels[index]
        order.append(label)
        distances[label] = cast(dist[index])
        sigmas[label] = int(sigma[index])
        predecessors[label] = [
            labels[p]
            for p in pred_list[int(pred_indptr[index]) : int(pred_indptr[index + 1])]
        ]
    return ShortestPathDAG(
        source=source,
        distances=distances,
        sigma=sigmas,
        predecessors=predecessors,
        order=order,
        weighted=weighted,
    )


def dict_dijkstra_dag(
    graph: Graph, source: Node, *, float_sigma: bool = False
) -> ShortestPathDAG:
    """Weighted shortest-path DAG from ``source`` — the dict reference engine.

    A deterministic binary-heap Dijkstra over the insertion-ordered
    adjacency: heap entries are ``(distance, push counter, node)``, so
    distance ties settle in push order — a pure function of the edge scan
    order that the CSR kernel (:func:`repro.graphs.csr.csr_dijkstra_dag`)
    replays exactly, making the two backends bit-identical (float
    distances, exact integer sigma, predecessor append order, settle
    order).  Absent weights count as ``1`` (the forced-weighted A/B path).
    ``float_sigma`` accumulates path counts as floats — the Brandes mode,
    matching the CSR kernel's float accumulation bit for bit.
    """
    if not graph.has_node(source):
        raise GraphError(f"source node {source!r} does not exist")
    distances: Dict[Node, float] = {source: 0.0}
    sigma: Dict[Node, int] = {source: 1.0 if float_sigma else 1}
    predecessors: Dict[Node, List[Node]] = {source: []}
    order: List[Node] = []
    settled = set()
    heap = [(0.0, 0, source)]
    counter = 1
    while heap:
        d, _, node = heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        order.append(node)
        sigma_node = sigma[node]
        for neighbor, weight in graph.neighbor_weights(node):
            candidate = d + weight
            known = distances.get(neighbor)
            if known is None or candidate < known:
                distances[neighbor] = candidate
                sigma[neighbor] = sigma_node
                predecessors[neighbor] = [node]
                heappush(heap, (candidate, counter, neighbor))
                counter += 1
            elif candidate == known:
                # Positive weights guarantee ``neighbor`` is unsettled here.
                sigma[neighbor] += sigma_node
                predecessors[neighbor].append(node)
    # Re-key the result dicts in settle order so iteration order matches
    # the BFS reference's settled-order dict layout (and the CSR backend's
    # order translation).
    distances = {node: distances[node] for node in order}
    sigma = {node: sigma[node] for node in order}
    predecessors = {node: predecessors[node] for node in order}
    return ShortestPathDAG(
        source=source,
        distances=distances,
        sigma=sigma,
        predecessors=predecessors,
        order=order,
        weighted=True,
    )


def dict_dijkstra_distances(graph: Graph, source: Node) -> Dict[Node, float]:
    """Weighted distances from ``source`` — the lean dict reference kernel.

    The no-sigma, no-predecessor form of :func:`dict_dijkstra_dag`: same
    heap, same relaxations, identical float distances, keys in settle
    order.  Distance-only consumers (closeness sweeps) use this to skip
    the DAG bookkeeping.
    """
    if not graph.has_node(source):
        raise GraphError(f"source node {source!r} does not exist")
    distances: Dict[Node, float] = {source: 0.0}
    order: List[Node] = []
    settled = set()
    heap = [(0.0, 0, source)]
    counter = 1
    while heap:
        d, _, node = heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        order.append(node)
        for neighbor, weight in graph.neighbor_weights(node):
            candidate = d + weight
            known = distances.get(neighbor)
            if known is None or candidate < known:
                distances[neighbor] = candidate
                heappush(heap, (candidate, counter, neighbor))
                counter += 1
    return {node: distances[node] for node in order}


def sssp_distances(
    graph: Graph,
    source: Node,
    *,
    backend: Optional[str] = None,
    weighted: Optional[str] = None,
) -> Dict[Node, Union[int, float]]:
    """``{node: distance}`` for every node reachable from ``source``.

    The single-source distance face of the unified SSSP abstraction:
    ``weighted`` (see :mod:`repro.graphs.sssp`) routes between
    :func:`bfs_distances` (hop counts, the exact historical path) and the
    Dijkstra engine (float path lengths over edge weights).  Keys are in
    settle order under both backends.
    """
    if _sssp.effective_weighted(graph, weighted):
        if not graph.has_node(source):
            raise GraphError(f"source node {source!r} does not exist")
        if _csr.effective_backend(graph, backend) == _csr.CSR_BACKEND:
            snapshot = _csr.as_csr(graph)
            # Lean kernels: distance queries skip the sigma/predecessor
            # bookkeeping of the full DAG (identical floats, same order —
            # the delta kernel reconstructs the Dijkstra settle order from
            # the final distances).
            if _sssp.effective_sssp_kernel() == _sssp.KERNEL_DELTA:
                from repro.graphs import delta_stepping as _delta

                row, order = _delta.csr_delta_distances(
                    snapshot, snapshot.index[source], with_order=True
                )
            else:
                row, order = _csr.csr_dijkstra_distances(
                    snapshot, snapshot.index[source], with_order=True
                )
            labels = snapshot.labels
            if snapshot.identity_labels:
                return {index: float(row[index]) for index in order}
            return {labels[index]: float(row[index]) for index in order}
        return dict_dijkstra_distances(graph, source)
    return bfs_distances(graph, source, backend=backend)


def sample_shortest_path(
    graph: Graph,
    source: Node,
    target: Node,
    rng: SeedLike = None,
    *,
    backend: Optional[str] = None,
) -> List[Node]:
    """Sample a uniformly random shortest path between two nodes.

    This is the straightforward (single-direction BFS) sampler; the balanced
    bidirectional variant in :mod:`repro.graphs.bidirectional` is what the
    fast samplers use.
    """
    dag = shortest_path_dag(graph, source, backend=backend)
    return dag.sample_path(target, rng)


def k_hop_neighborhood(
    graph: Graph, center: Node, hops: int, *, backend: Optional[str] = None
) -> List[Node]:
    """Return all nodes within ``hops`` of ``center`` (including ``center``)."""
    if hops < 0:
        raise ValueError(f"hops must be >= 0, got {hops}")
    return list(bfs_distances(graph, center, max_depth=hops, backend=backend))


def sigma_choice(items: Sequence, weights: Sequence[int], rng) -> Node:
    """Pick one of ``items`` with probability proportional to sigma counts.

    Uses an exact integer threshold (``rng.randrange``) rather than float
    accumulation, so sampling stays unbiased even when shortest-path counts
    exceed ``2**53``.  Named ``sigma_choice`` so "weighted" unambiguously
    refers to edge weights across the codebase.
    """
    return _csr.sigma_choice(items, weights, rng)


def _weighted_choice(items: Sequence, weights: Sequence[int], rng) -> Node:
    """Deprecated alias of :func:`sigma_choice` (warns once per call site)."""
    import warnings

    warnings.warn(
        "_weighted_choice is deprecated; use sigma_choice (the probability "
        "weights here are shortest-path counts, not edge weights)",
        DeprecationWarning,
        stacklevel=2,
    )
    return sigma_choice(items, weights, rng)
