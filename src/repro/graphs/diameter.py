"""Diameter estimation used by the VC-dimension bounds.

Exact diameter computation is ``O(nm)`` and therefore only done for small
graphs (tests, Table II on small scales).  The samplers only need an *upper
bound* on the diameter: the paper (end of Section IV-C) uses the standard
``2 * ecc(s)`` bound — the diameter of a set is at most twice the maximum
distance from any member — which one BFS per estimate provides.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Sequence

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances
from repro.utils.rng import SeedLike, ensure_rng

Node = Hashable


def eccentricity(graph: Graph, source: Node) -> int:
    """Return the eccentricity of ``source`` within its connected component."""
    distances = bfs_distances(graph, source)
    return max(distances.values())


def exact_diameter(graph: Graph) -> int:
    """Compute the exact diameter (max eccentricity) by one BFS per node.

    Only intended for small graphs; cost is ``O(n (n + m))``.
    Returns 0 for graphs with fewer than 2 nodes.
    """
    best = 0
    for node in graph.nodes():
        ecc = eccentricity(graph, node)
        if ecc > best:
            best = ecc
    return best


def two_sweep_lower_bound(graph: Graph, seed: SeedLike = None) -> int:
    """Two-sweep diameter *lower* bound: BFS from a random node, then BFS from
    the farthest node found.  On real-world graphs this is usually tight."""
    rng = ensure_rng(seed)
    nodes = list(graph.nodes())
    if not nodes:
        raise GraphError("cannot estimate the diameter of an empty graph")
    start = rng.choice(nodes)
    distances = bfs_distances(graph, start)
    far_node = max(distances, key=distances.get)
    second = bfs_distances(graph, far_node)
    return max(second.values())


def estimate_diameter(graph: Graph, seed: SeedLike = None, *, sweeps: int = 2) -> int:
    """Return an *upper bound* on the diameter of (the component of) ``graph``.

    For each sweep a random source ``s`` is chosen and ``2 * ecc(s)`` is an
    upper bound on the diameter; the minimum over sweeps is returned, floored
    by the two-sweep lower bound so the result is never an underestimate of
    the true diameter.
    """
    if graph.number_of_nodes() == 0:
        raise GraphError("cannot estimate the diameter of an empty graph")
    if graph.number_of_nodes() == 1:
        return 0
    rng = ensure_rng(seed)
    nodes = list(graph.nodes())
    lower = two_sweep_lower_bound(graph, rng)
    upper = None
    for _ in range(max(1, sweeps)):
        source = rng.choice(nodes)
        bound = 2 * eccentricity(graph, source)
        if upper is None or bound < upper:
            upper = bound
    return max(lower, min(upper, 2 * lower) if lower > 0 else upper)


def estimate_subset_diameter(
    graph: Graph,
    subset: Sequence[Node],
    seed: SeedLike = None,
) -> int:
    """Upper bound on ``VD(A) = max_{s,t in A} d(s, t)`` for a node subset.

    Implements the paper's bound: for any ``s in A``,
    ``VD(A) <= 2 * max_{t in A} d(s, t)``; one BFS from a random member of
    the subset suffices.  Returns 0 for subsets of size < 2.  Members of the
    subset that are unreachable from the probe source are ignored (they
    cannot co-occur on a shortest path with it anyway).
    """
    members = [node for node in subset if graph.has_node(node)]
    if len(members) < 2:
        return 0
    rng = ensure_rng(seed)
    source = rng.choice(members)
    distances = bfs_distances(graph, source)
    reachable = [distances[node] for node in members if node in distances]
    if not reachable:
        return 0
    return 2 * max(reachable)


def exact_subset_diameter(graph: Graph, subset: Iterable[Node]) -> int:
    """Exact ``max_{s,t in A} d(s, t)`` (small inputs only; BFS per member)."""
    members: List[Node] = [node for node in subset if graph.has_node(node)]
    best = 0
    for source in members:
        distances = bfs_distances(graph, source)
        for target in members:
            if target in distances and distances[target] > best:
                best = distances[target]
    return best
