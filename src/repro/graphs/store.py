"""On-disk CSR snapshot store: persist-once, memory-map-many graphs.

ROADMAP open item 3: the paper's headline workload is the USA road network
(~24M nodes), but every run of this repo used to rebuild each graph in
process RAM — an O(V+E) parse-and-generate on every cold start.  The PR-4
shared-memory export already fixed the frozen array layout workers consume
(``indptr``/``indices``/``weights`` + labels); this module *persists* that
layout, so a cold start becomes an O(1) ``np.memmap`` attach and graphs
larger than RAM page in on demand:

* :func:`save_snapshot` / :func:`load_snapshot` — write a
  :class:`~repro.graphs.csr.CSRGraph` to a single versioned, checksummed
  file and load it back, optionally as **read-only** ``np.memmap`` views
  (also reachable as ``CSRGraph.save(path)`` / ``CSRGraph.load(path)``).
  A loaded (or freshly saved) snapshot remembers its backing file in
  ``CSRGraph.source_path``, which :mod:`repro.parallel` uses to hand the
  graph to worker processes as *a path plus a header* — the snapshot file
  is the shared block, nothing is re-exported to
  ``multiprocessing.shared_memory``.
* :class:`SnapshotStore` — a directory of snapshots addressed by string
  keys (plus JSON side-car metadata), used by the datasets registry to
  memoise generated graphs and by benches/tests for scratch stores.
* :func:`content_digest` — a content-addressed identity for a graph
  (labels, adjacency order, weights), identical for a dict
  :class:`~repro.graphs.graph.Graph` and any CSR snapshot of it.  The
  ``GroundTruthCache`` keys its persistent disk tier on this digest, so
  exact Brandes runs survive process restarts.
* :func:`graph_from_snapshot` — rebuild a dict ``Graph`` whose per-node
  adjacency order matches the snapshot exactly, so
  ``CSRGraph.from_graph(graph_from_snapshot(s))`` is byte-identical to
  ``s`` and every traversal on the rebuilt graph is bit-identical to one
  on the original.

File format (version 1)
-----------------------
One file, native byte order, 64-byte header::

    offset size field
    0      8    magic  b"REPROCSR"
    8      4    byte-order sentinel (0x01020304 as written)
    12     4    format version
    16     4    flags (1 = weighted, 2 = identity labels 0..n-1)
    20     4    header CRC32 (over bytes 24..64 + the labels blob)
    24     8    n (node count, int64)
    32     8    num_indices (= 2m, int64)
    40     8    labels blob size in bytes (0 for identity labels)
    48     4    arrays CRC32 (over indptr + indices + weights bytes)
    52     12   reserved (zero)
    64     ...  labels blob (UTF-8 JSON list), padded to an 8-byte boundary
           ...  indptr   (n+1) x int64
           ...  indices  num_indices x int64
           ...  weights  num_indices x float64 (weighted snapshots only)

Loads verify magic, byte order (a snapshot written on a foreign-endianness
machine is rejected, not mis-read), format version, header checksum and
the exact expected file size (catching truncation) **before** touching the
arrays, raising :class:`~repro.errors.GraphError` naming the path and the
mismatch.  The arrays checksum is verified whenever the arrays are read
into RAM; memory-mapped loads skip it by default (verifying would read the
whole file, defeating the O(1) attach) unless ``verify=True``.

Memory-mapped snapshots are **read-only**: every consumer treats a
``CSRGraph`` as frozen, and delta patching (``as_csr`` on a mutated graph)
already materialises *fresh* in-RAM arrays — copy-on-write — so the
mapped file is never written through and journal semantics are unchanged.

Knobs (full protocol, mirroring :mod:`repro.graphs.sssp`):

* ``snapshot_dir`` — the default store directory (``None`` = no store).
  ``REPRO_SNAPSHOT_DIR``, :func:`set_default_snapshot_dir`, the CLI's
  ``--snapshot-dir``, ``ExperimentConfig.snapshot_dir``.
* ``mmap`` = ``auto`` | ``on`` | ``off`` — whether file-backed loads
  attach zero-copy ``np.memmap`` views (``auto``/``on`` when numpy is
  importable) or read the arrays into RAM (``off``, or any mode on
  numpy-less installs, where the worker handoff likewise degrades to the
  pickle payload).  ``REPRO_MMAP``, :func:`set_default_mmap`, ``--mmap``,
  ``ExperimentConfig.mmap``.  The knob never changes results — mapped and
  in-RAM arrays are byte-identical — only memory footprint and cold-start
  time.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import zlib
from array import array
from collections import deque
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import GraphError
from repro.graphs.csr import CSRGraph, HAS_NUMPY, as_csr
from repro.graphs.graph import Graph

if HAS_NUMPY:  # pragma: no branch - mirrors repro.graphs.csr
    import numpy as _np
else:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

PathLike = Union[str, Path]

#: Environment variable providing the default snapshot-store directory.
SNAPSHOT_DIR_ENV_VAR = "REPRO_SNAPSHOT_DIR"

#: Environment variable overriding the default memory-mapping mode.
MMAP_ENV_VAR = "REPRO_MMAP"

MMAP_AUTO = "auto"
MMAP_ON = "on"
MMAP_OFF = "off"

_MMAP_CHOICES = (MMAP_AUTO, MMAP_ON, MMAP_OFF)

#: Magic bytes opening every snapshot file.
SNAPSHOT_MAGIC = b"REPROCSR"

#: Current snapshot format version; bump on any layout change.
FORMAT_VERSION = 1

#: Byte-order sentinel: written native, reads back byte-swapped on a
#: foreign-endianness machine (detected and rejected instead of mis-read).
_ORDER_SENTINEL = 0x01020304
_ORDER_SENTINEL_SWAPPED = 0x04030201

_FLAG_WEIGHTED = 1
_FLAG_IDENTITY_LABELS = 2

#: Native-order header layout; see the module docstring for the field map.
_HEADER_STRUCT = struct.Struct("=8sIIIIqqqI12x")
HEADER_SIZE = _HEADER_STRUCT.size  # 64


# ---------------------------------------------------------------------------
# The snapshot_dir and mmap knobs
# ---------------------------------------------------------------------------
_default_snapshot_dir: Optional[str] = None
_default_mmap: Optional[str] = None

# EnvMirroredOverride lives in repro.parallel, which imports repro.graphs.csr
# at module import time; mirrors are created lazily on the first setter call
# (the same pattern as repro.graphs.delta).
_snapshot_dir_env_mirror = None
_mmap_env_mirror = None


def _mirror(name: str):
    global _snapshot_dir_env_mirror, _mmap_env_mirror
    from repro.parallel import EnvMirroredOverride

    if name == SNAPSHOT_DIR_ENV_VAR:
        if _snapshot_dir_env_mirror is None:
            _snapshot_dir_env_mirror = EnvMirroredOverride(SNAPSHOT_DIR_ENV_VAR)
        return _snapshot_dir_env_mirror
    if _mmap_env_mirror is None:
        _mmap_env_mirror = EnvMirroredOverride(MMAP_ENV_VAR)
    return _mmap_env_mirror


def _env_snapshot_dir() -> Optional[str]:
    """Return the ``REPRO_SNAPSHOT_DIR`` value (``None``/empty = unset)."""
    env = os.environ.get(SNAPSHOT_DIR_ENV_VAR, "").strip()
    return env or None


def default_snapshot_dir() -> Optional[str]:
    """The store directory used when callers pass ``snapshot_dir=None``.

    Resolution order: :func:`set_default_snapshot_dir` override, then the
    ``REPRO_SNAPSHOT_DIR`` environment variable, then ``None`` (no store:
    the registry and ground-truth disk tiers stay disabled).
    """
    if _default_snapshot_dir is not None:
        return _default_snapshot_dir
    return _env_snapshot_dir()


def set_default_snapshot_dir(snapshot_dir: Optional[PathLike]) -> None:
    """Set (or with ``None`` clear) the process-wide snapshot directory.

    Mirrored into ``REPRO_SNAPSHOT_DIR`` via the
    :class:`repro.parallel.EnvMirroredOverride` protocol so spawn workers
    resolve the same store; ``None`` restores the variable the first
    override displaced.
    """
    global _default_snapshot_dir
    if snapshot_dir is not None:
        snapshot_dir = str(snapshot_dir)
        if not snapshot_dir.strip():
            raise ValueError("snapshot_dir must be a non-empty path or None")
    _mirror(SNAPSHOT_DIR_ENV_VAR).set(snapshot_dir)
    _default_snapshot_dir = snapshot_dir


def resolve_snapshot_dir(
    snapshot_dir: Optional[PathLike] = None,
) -> Optional[Path]:
    """Map a user-facing ``snapshot_dir`` argument to a concrete directory.

    ``None`` means "no store" (the memoisation and persistent ground-truth
    tiers are disabled) — the historical in-RAM behaviour.
    """
    if snapshot_dir is not None:
        return Path(snapshot_dir)
    if _default_snapshot_dir is not None:
        return Path(_default_snapshot_dir)
    env = _env_snapshot_dir()
    return Path(env) if env is not None else None


def _check_mmap_name(value: str, *, source: str = "mmap") -> None:
    """Raise a uniform error for an invalid mmap mode name."""
    if value not in _MMAP_CHOICES:
        raise ValueError(
            f"{source}={value!r} is not a valid mmap mode; choose one of "
            f"{_MMAP_CHOICES} (the default can also be set via the "
            f"{MMAP_ENV_VAR} environment variable)"
        )


def _env_mmap() -> Optional[str]:
    """Return the validated ``REPRO_MMAP`` value (``None`` = unset)."""
    env = os.environ.get(MMAP_ENV_VAR, "").strip().lower()
    if not env:
        return None
    _check_mmap_name(env, source=MMAP_ENV_VAR)
    return env


def default_mmap() -> str:
    """The mmap mode used when callers pass ``mmap=None``.

    Resolution order: :func:`set_default_mmap` override, then the
    ``REPRO_MMAP`` environment variable, then ``"auto"``.
    """
    if _default_mmap is not None:
        return _default_mmap
    env = _env_mmap()
    return env if env is not None else MMAP_AUTO


def set_default_mmap(mode: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide mmap mode.

    Mirrored into ``REPRO_MMAP`` so spawn workers attach snapshots the
    same way; ``None`` restores the environment variable the first
    override displaced.
    """
    global _default_mmap
    if mode is not None:
        _check_mmap_name(mode)
    _mirror(MMAP_ENV_VAR).set(mode)
    _default_mmap = mode


def resolve_mmap(mmap: Optional[str] = None) -> str:
    """Map a user-facing ``mmap`` argument to a concrete mode name.

    An invalid ``REPRO_MMAP`` value is rejected eagerly (even when an
    explicit argument makes it moot for this call), matching the eager
    ``REPRO_BACKEND`` validation in :func:`repro.graphs.csr.resolve_backend`.
    """
    env = _env_mmap()
    if mmap is None:
        if _default_mmap is not None:
            return _default_mmap
        return env if env is not None else MMAP_AUTO
    _check_mmap_name(mmap)
    return mmap


def effective_mmap(mmap: Optional[str] = None) -> bool:
    """Whether file-backed loads should attach ``np.memmap`` views.

    ``auto`` and ``on`` both map when numpy is importable; on numpy-less
    installs every mode degrades to in-RAM ``array`` reads (and the worker
    handoff to the pickle payload), mirroring how an enabled-but-
    unavailable shared-memory knob degrades silently.  The choice never
    changes results — mapped and in-RAM arrays are byte-identical.
    """
    return resolve_mmap(mmap) != MMAP_OFF and HAS_NUMPY


# ---------------------------------------------------------------------------
# Serialisation helpers
# ---------------------------------------------------------------------------
def _array_bytes(data, *, path: PathLike) -> bytes:
    """Raw native bytes of one int64/float64 array (numpy or stdlib)."""
    if HAS_NUMPY and not isinstance(data, array):
        return _np.ascontiguousarray(data).tobytes()
    if data.itemsize != 8:  # pragma: no cover - exotic platforms only
        raise GraphError(
            f"cannot write snapshot {path}: stdlib array itemsize is "
            f"{data.itemsize}, expected 8 (int64/float64)"
        )
    return data.tobytes()


def _labels_blob(csr: CSRGraph, *, path: PathLike) -> bytes:
    """Serialise the label list (empty for the identity labelling)."""
    if csr.identity_labels:
        return b""
    for label in csr.labels:
        if not isinstance(label, (int, str)) or isinstance(label, bool):
            raise GraphError(
                f"cannot write snapshot {path}: node label {label!r} is not "
                "an int or str (the snapshot format stores labels as JSON)"
            )
    return json.dumps(csr.labels, separators=(",", ":")).encode("utf-8")


def _pad(size: int) -> int:
    """Padding bytes needed to align ``size`` to an 8-byte boundary."""
    return (-size) % 8


def save_snapshot(graph, path: PathLike) -> Path:
    """Write the CSR snapshot of ``graph`` to ``path`` (atomically).

    ``graph`` may be a :class:`~repro.graphs.graph.Graph` (its cached CSR
    snapshot is taken via :func:`~repro.graphs.csr.as_csr`) or a bare
    :class:`~repro.graphs.csr.CSRGraph`.  The write goes through a
    temporary file + ``os.replace``, so a crash mid-write never leaves a
    half-written snapshot under the final name.  On success the snapshot's
    ``source_path`` is set to the written file, arming the zero-copy
    worker handoff in :mod:`repro.parallel`.

    Raises
    ------
    GraphError
        If a node label is not JSON-serialisable (int/str).
    """
    csr = as_csr(graph)
    path = Path(path)
    labels_blob = _labels_blob(csr, path=path)
    indptr_bytes = _array_bytes(csr.indptr, path=path)
    indices_bytes = _array_bytes(csr.indices, path=path)
    weights_bytes = (
        _array_bytes(csr.weights, path=path) if csr.weights is not None else b""
    )
    flags = 0
    if csr.weights is not None:
        flags |= _FLAG_WEIGHTED
    if csr.identity_labels:
        flags |= _FLAG_IDENTITY_LABELS
    arrays_crc = zlib.crc32(weights_bytes, zlib.crc32(indices_bytes, zlib.crc32(indptr_bytes)))
    counts = struct.pack(
        "=qqq", csr.n, len(csr.indices), len(labels_blob)
    )
    header_crc = zlib.crc32(labels_blob, zlib.crc32(counts))
    header = _HEADER_STRUCT.pack(
        SNAPSHOT_MAGIC,
        _ORDER_SENTINEL,
        FORMAT_VERSION,
        flags,
        header_crc,
        csr.n,
        len(csr.indices),
        len(labels_blob),
        arrays_crc,
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(header)
            handle.write(labels_blob)
            handle.write(b"\0" * _pad(len(labels_blob)))
            handle.write(indptr_bytes)
            handle.write(indices_bytes)
            handle.write(weights_bytes)
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed write
            tmp.unlink()
    csr.source_path = str(path)
    return path


def _corrupt(path: PathLike, problem: str) -> GraphError:
    return GraphError(f"snapshot {path}: {problem}")


def _read_header(path: Path) -> Tuple[int, int, int, int, int, bytes]:
    """Validate the header; return ``(n, num_indices, flags, arrays_crc,
    arrays_offset, labels_blob)``.

    Every check runs before the arrays are touched, so a truncated, stale
    or foreign-endianness file fails with one attributable error instead
    of garbage arrays.
    """
    try:
        size = os.path.getsize(path)
    except OSError as error:
        raise GraphError(f"snapshot {path}: cannot stat file: {error}") from None
    if size < HEADER_SIZE:
        raise _corrupt(
            path, f"file is {size} bytes, smaller than the {HEADER_SIZE}-byte header (truncated?)"
        )
    with open(path, "rb") as handle:
        raw = handle.read(HEADER_SIZE)
        (
            magic,
            sentinel,
            version,
            flags,
            header_crc,
            n,
            num_indices,
            labels_size,
            arrays_crc,
        ) = _HEADER_STRUCT.unpack(raw)
        if magic != SNAPSHOT_MAGIC:
            raise _corrupt(
                path, f"bad magic {magic!r}, expected {SNAPSHOT_MAGIC!r} (not a snapshot file?)"
            )
        if sentinel == _ORDER_SENTINEL_SWAPPED:
            raise _corrupt(
                path,
                "foreign byte order: the snapshot was written on a machine "
                "with the opposite endianness and cannot be mapped here",
            )
        if sentinel != _ORDER_SENTINEL:
            raise _corrupt(path, f"bad byte-order sentinel 0x{sentinel:08x}")
        if version != FORMAT_VERSION:
            raise _corrupt(
                path,
                f"format version {version} does not match this reader's "
                f"version {FORMAT_VERSION} (stale or future snapshot; "
                "regenerate it)",
            )
        if n < 0 or num_indices < 0 or labels_size < 0:
            raise _corrupt(
                path, f"negative counts (n={n}, num_indices={num_indices}, labels={labels_size})"
            )
        labels_blob = handle.read(labels_size)
    if len(labels_blob) != labels_size:
        raise _corrupt(
            path,
            f"labels blob truncated: expected {labels_size} bytes, "
            f"got {len(labels_blob)}",
        )
    counts = struct.pack("=qqq", n, num_indices, labels_size)
    expected_crc = zlib.crc32(labels_blob, zlib.crc32(counts))
    if header_crc != expected_crc:
        raise _corrupt(
            path,
            f"header checksum mismatch (stored 0x{header_crc:08x}, "
            f"computed 0x{expected_crc:08x}) — the file is corrupt",
        )
    arrays_offset = HEADER_SIZE + labels_size + _pad(labels_size)
    weighted = bool(flags & _FLAG_WEIGHTED)
    expected_size = arrays_offset + 8 * ((n + 1) + num_indices * (2 if weighted else 1))
    if size != expected_size:
        raise _corrupt(
            path,
            f"file is {size} bytes but the header describes {expected_size} "
            "(truncated or trailing garbage)",
        )
    return n, num_indices, flags, arrays_crc, arrays_offset, labels_blob


def _decode_labels(path: Path, n: int, flags: int, labels_blob: bytes) -> List:
    if flags & _FLAG_IDENTITY_LABELS:
        return list(range(n))
    try:
        labels = json.loads(labels_blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise _corrupt(path, f"labels blob is not valid JSON: {error}") from None
    if not isinstance(labels, list) or len(labels) != n:
        raise _corrupt(
            path,
            f"labels blob holds {len(labels) if isinstance(labels, list) else type(labels).__name__} "
            f"entries, expected {n}",
        )
    return labels


def load_snapshot(
    path: PathLike, mmap: Optional[str] = None, *, verify: bool = False
) -> CSRGraph:
    """Load a snapshot written by :func:`save_snapshot`.

    Parameters
    ----------
    path:
        Snapshot file.
    mmap:
        ``"auto"`` / ``"on"`` — attach the arrays as read-only
        ``np.memmap`` views (zero-copy, O(1) in graph size); ``"off"`` —
        read them into RAM; ``None`` resolves the ``mmap`` knob
        (:func:`resolve_mmap`).  On numpy-less installs mapped loads
        degrade to in-RAM ``array`` reads, except an *explicit*
        ``mmap="on"`` argument, which raises (you asked for a mapping that
        cannot exist).  Mapped and in-RAM loads are byte-identical.
    verify:
        Also check the arrays checksum on a mapped load (reads the whole
        file once).  In-RAM loads always verify it.

    Raises
    ------
    GraphError
        When the file is missing, truncated, checksum-corrupt, written
        with a different format version or byte order — the error names
        the path and the mismatch.
    """
    path = Path(path)
    mode = resolve_mmap(mmap)
    if mmap == MMAP_ON and not HAS_NUMPY:
        raise GraphError(
            f"snapshot {path}: mmap='on' requires numpy, which is not "
            "importable (use mmap='auto' to degrade to an in-RAM load)"
        )
    use_mmap = mode != MMAP_OFF and HAS_NUMPY
    n, num_indices, flags, arrays_crc, arrays_offset, labels_blob = _read_header(path)
    labels = _decode_labels(path, n, flags, labels_blob)
    weighted = bool(flags & _FLAG_WEIGHTED)
    indptr_off = arrays_offset
    indices_off = indptr_off + 8 * (n + 1)
    weights_off = indices_off + 8 * num_indices
    if use_mmap:
        indptr = _np.memmap(path, dtype=_np.int64, mode="r", offset=indptr_off, shape=(n + 1,))
        indices = _np.memmap(path, dtype=_np.int64, mode="r", offset=indices_off, shape=(num_indices,))
        weights = (
            _np.memmap(path, dtype=_np.float64, mode="r", offset=weights_off, shape=(num_indices,))
            if weighted
            else None
        )
        if verify:
            crc = zlib.crc32(indptr.tobytes())
            crc = zlib.crc32(indices.tobytes(), crc)
            if weights is not None:
                crc = zlib.crc32(weights.tobytes(), crc)
            if crc != arrays_crc:
                raise _corrupt(
                    path,
                    f"arrays checksum mismatch (stored 0x{arrays_crc:08x}, "
                    f"computed 0x{crc:08x}) — the file is corrupt",
                )
    else:
        with open(path, "rb") as handle:
            handle.seek(indptr_off)
            indptr_bytes = handle.read(8 * (n + 1))
            indices_bytes = handle.read(8 * num_indices)
            weights_bytes = handle.read(8 * num_indices) if weighted else b""
        crc = zlib.crc32(weights_bytes, zlib.crc32(indices_bytes, zlib.crc32(indptr_bytes)))
        if crc != arrays_crc:
            raise _corrupt(
                path,
                f"arrays checksum mismatch (stored 0x{arrays_crc:08x}, "
                f"computed 0x{crc:08x}) — the file is corrupt",
            )
        if HAS_NUMPY:
            indptr = _np.frombuffer(indptr_bytes, dtype=_np.int64).copy()
            indices = _np.frombuffer(indices_bytes, dtype=_np.int64).copy()
            weights = (
                _np.frombuffer(weights_bytes, dtype=_np.float64).copy()
                if weighted
                else None
            )
        else:
            indptr = array("q")
            indptr.frombytes(indptr_bytes)
            indices = array("q")
            indices.frombytes(indices_bytes)
            weights = None
            if weighted:
                weights = array("d")
                weights.frombytes(weights_bytes)
    if len(indptr) != n + 1 or (n and int(indptr[n]) != num_indices):
        raise _corrupt(
            path,
            f"indptr is inconsistent with the header counts "
            f"(n={n}, num_indices={num_indices})",
        )
    snapshot = CSRGraph(indptr, indices, labels, weights)
    snapshot.source_path = str(path)
    return snapshot


# ---------------------------------------------------------------------------
# Content digests
# ---------------------------------------------------------------------------
def content_digest(graph) -> str:
    """A hex digest identifying a graph's exact content and iteration order.

    Covers the node labels (in insertion order), each node's neighbour
    list (in adjacency order — the order every deterministic traversal
    scans) and, on weighted graphs, the float64 edge weights.  A dict
    :class:`~repro.graphs.graph.Graph` and any CSR snapshot of it (in-RAM,
    shared-memory or memory-mapped) produce the **same** digest, so
    content-addressed caches — the ``GroundTruthCache`` disk tier — hit
    across process restarts and across backends.
    """
    hasher = hashlib.sha256()

    def feed(token: str) -> None:
        hasher.update(token.encode("utf-8"))
        hasher.update(b"\x00")

    if isinstance(graph, CSRGraph):
        weighted = graph.weights is not None
        feed(f"n={graph.n}")
        feed(f"weighted={int(weighted)}")
        indptr, indices = graph.adjacency_lists()
        weights = graph.weight_list()
        labels = graph.labels
        for i, label in enumerate(labels):
            feed(f"\x01{label!r}")
            for pos in range(indptr[i], indptr[i + 1]):
                feed(repr(labels[indices[pos]]))
                if weighted:
                    feed(repr(float(weights[pos])))
    else:
        weighted = graph.is_weighted
        feed(f"n={graph.number_of_nodes()}")
        feed(f"weighted={int(weighted)}")
        for label in graph.nodes():
            feed(f"\x01{label!r}")
            for neighbor, weight in graph.neighbor_weights(label):
                feed(repr(neighbor))
                if weighted:
                    feed(repr(float(weight)))
    return hasher.hexdigest()


# ---------------------------------------------------------------------------
# Rebuilding a dict Graph from a snapshot
# ---------------------------------------------------------------------------
def graph_from_snapshot(snapshot: CSRGraph) -> Graph:
    """Rebuild a dict :class:`Graph` equivalent to ``snapshot``.

    The rebuilt graph's node order and **per-node adjacency order** match
    the snapshot exactly, so ``CSRGraph.from_graph`` of the result is
    byte-identical to the snapshot and every traversal (BFS settle order,
    sigma accumulation, RNG consumption) is bit-identical to one on the
    graph the snapshot was taken from.  Edges are emitted in a linear
    extension of all per-node segment orders (a Kahn-style readiness
    queue over the segment fronts), built through the public mutation API
    so the version/journal protocol holds.

    Raises
    ------
    GraphError
        If the snapshot's adjacency is not symmetric (no consistent
        insertion sequence exists — a corrupt snapshot).
    """
    indptr, indices = snapshot.adjacency_lists()
    weights = snapshot.weight_list()
    labels = snapshot.labels
    n = snapshot.n
    graph = Graph()
    for label in labels:
        graph.add_node(label)
    cursor = [indptr[i] for i in range(n)]
    end = [indptr[i + 1] for i in range(n)]

    def front(i: int) -> int:
        return indices[cursor[i]]

    ready: "deque[Tuple[int, int]]" = deque()
    for i in range(n):
        if cursor[i] < end[i]:
            j = front(i)
            # Seed each mutually-front edge once: the scan reaches it from
            # both endpoints, so only the lower-index side enqueues it.
            if j > i and cursor[j] < end[j] and front(j) == i:
                ready.append((i, j))
    emitted = 0
    while ready:
        i, j = ready.popleft()
        pos = cursor[i]
        weight = 1.0 if weights is None else weights[pos]
        graph.add_edge(labels[i], labels[j], weight=weight)
        emitted += 1
        cursor[i] += 1
        cursor[j] += 1
        for x in (i, j):
            if cursor[x] < end[x]:
                y = front(x)
                # A pair becomes mutually-front at exactly one advance (the
                # later of its two), so this discovers each edge once.
                if cursor[y] < end[y] and front(y) == x and (y, x) != (i, j):
                    if front(x) == y and front(y) == x:
                        ready.append((x, y))
    if emitted != snapshot.m:
        raise GraphError(
            f"snapshot adjacency is not symmetric: reconstructed {emitted} "
            f"of {snapshot.m} edges (corrupt snapshot?)"
        )
    return graph


# ---------------------------------------------------------------------------
# Key-addressed snapshot directories
# ---------------------------------------------------------------------------
class SnapshotStore:
    """A directory of snapshots (plus JSON metadata) addressed by string keys.

    The datasets registry memoises generated graphs here
    (``<dir>/datasets``) and the ground-truth cache keeps its persistent
    tier next to it (``<dir>/ground_truth``); benches and tests build
    scratch stores directly.  Keys are sanitised to file-system-safe
    names; a key's graph lives in ``<key>.csr`` and its metadata in
    ``<key>.meta.json``.
    """

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """The snapshot file backing ``key``."""
        return self.directory / f"{_safe_key(key)}.csr"

    def meta_path_for(self, key: str) -> Path:
        """The JSON side-car metadata file of ``key``."""
        return self.directory / f"{_safe_key(key)}.meta.json"

    def contains(self, key: str) -> bool:
        """Whether a snapshot for ``key`` exists on disk."""
        return self.path_for(key).exists()

    def save(self, key: str, graph) -> Path:
        """Persist ``graph`` (a ``Graph`` or ``CSRGraph``) under ``key``."""
        return save_snapshot(graph, self.path_for(key))

    def load(self, key: str, mmap: Optional[str] = None) -> Optional[CSRGraph]:
        """Load the snapshot of ``key``, or ``None`` when absent.

        Corrupt or stale-format files raise :class:`GraphError` (from
        :func:`load_snapshot`) — callers memoising *re-generatable* data
        may catch it and rebuild.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        return load_snapshot(path, mmap=mmap)

    def save_meta(self, key: str, meta: Dict) -> Path:
        """Persist a JSON metadata document next to ``key``'s snapshot."""
        path = self.meta_path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(meta, handle)
        os.replace(tmp, path)
        return path

    def load_meta(self, key: str) -> Optional[Dict]:
        """Load ``key``'s metadata document, or ``None`` when absent/corrupt."""
        path = self.meta_path_for(key)
        if not path.exists():
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def keys(self) -> Iterator[str]:
        """Iterate the (sanitised) keys present in the store."""
        if not self.directory.exists():
            return iter(())
        return (path.name[: -len(".csr")] for path in sorted(self.directory.glob("*.csr")))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SnapshotStore({str(self.directory)!r})"


def _safe_key(key: str) -> str:
    """Sanitise a store key to a file-system-safe name (collision-hashed).

    Alphanumerics and ``-_.@#`` pass through; anything else is replaced
    and a short content hash is appended so distinct keys cannot collide
    after sanitisation.
    """
    safe = "".join(ch if ch.isalnum() or ch in "-_.@#" else "_" for ch in key)
    if safe == key:
        return safe
    suffix = hashlib.sha256(key.encode("utf-8")).hexdigest()[:8]
    return f"{safe}-{suffix}"
