"""Delta-stepping weighted SSSP: the bucket kernel behind ``sssp_kernel``.

PR 5's weighted engine runs one binary-heap Dijkstra per source — correct
and deterministic, but with nothing to vectorise: every relaxation is a
Python-level heap operation.  This module adds the batched alternative
(Meyer & Sanders' delta-stepping): tentative distances are grouped into
buckets of width Δ, light edges (weight < Δ) are relaxed
bucket-synchronously in fat vectorised rounds — the weighted analogue of
:class:`repro.graphs.csr._BatchSweep`'s level expansion, reusing the same
gather/scatter idiom — and heavy edges (weight ≥ Δ) are relaxed once per
bucket.  Stacking ``K`` sources onto one flat ``K * n`` state space merges
the thin per-source frontiers of road-style graphs into frontiers wide
enough for numpy (and, when available, the numba tier in
:mod:`repro.graphs.compiled`) to chew through.

Determinism contract (how delta-stepping can be *bit-identical* to
Dijkstra)
--------------------------------------------------------------------------
Final SSSP distances do not depend on relaxation order: every tentative
value is ``dist[u] + w`` — one float64 addition — and the final value is
the minimum over the identical candidate set, so any label-correcting
schedule converges to bitwise the same distances the Dijkstra kernel
computes.  Everything *order-sensitive* (settle order, predecessor append
order, sigma accumulation, and through them sampled paths and Brandes
floats) is rebuilt afterwards by a finalisation pass pinned to Dijkstra's
semantics:

* DAG edges are exactly the slots with ``dist[u] + w == dist[v]``
  (bitwise) — the same predicate Dijkstra's ``candidate == known`` test
  applies against settled distances.
* Dijkstra settles nodes by ``(distance, push counter)``; the counter of
  the winning push (the first push carrying the final distance) is ordered
  by ``(settle position of the first optimal predecessor, CSR edge slot)``.
  Both are pure functions of the final distances, so the settle order is
  reconstructed exactly: sort by distance, then order each equal-distance
  tie group by that key (all predecessors have strictly smaller distance,
  so groups resolve in ascending order).
* Predecessor lists are the DAG in-edges sorted by predecessor settle
  position — Dijkstra's reset-then-append order — and sigma is re-summed
  over them in that order (exact Python ints, or the dict reference's
  float addition sequence in Brandes mode).

Because results are identical, the ``sssp_kernel`` knob — like
``backend`` and ``direction`` — affects speed only: the dict reference
stays the single oracle, ``SourceDAGCache`` keys need no kernel
component, and every worker/shared-memory contract holds unchanged.

Bucket bookkeeping is *robust*, not trusted: bucket ids are a processing
heuristic (floor(dist / Δ) with float rounding at boundaries), and the
kernel is written as bucket-ordered label correction — stale queue entries
are dropped by a "already relaxed at this distance" check, re-improved
nodes re-enter whatever bucket their new distance maps to, and buckets can
be revisited — so no correctness argument ever rests on a float boundary.

Without numpy a pure-Python bucket loop runs instead (treating every edge
as light — the split is a vectorised-path refinement); results are
identical by the same fixpoint argument.
"""

from __future__ import annotations

import heapq
from array import array
from typing import Dict, List, Optional, Tuple
from weakref import WeakKeyDictionary

from repro.graphs import compiled as _compiled
from repro.graphs import csr as _csr
from repro.graphs.csr import _np

__all__ = [
    "auto_delta",
    "csr_delta_distances",
    "csr_delta_dag",
    "csr_delta_brandes",
    "delta_sweep",
]

_INF = float("inf")

_auto_delta_cache: "WeakKeyDictionary" = WeakKeyDictionary()
_split_cache: "WeakKeyDictionary" = WeakKeyDictionary()


#: Target number of Δ-width buckets spanning the estimated distance range.
#: Each bucket round pays a fixed vectorisation overhead (gather, lexsort,
#: parking), so the batched kernel wants a *handful* of fat buckets rather
#: than the many thin ones the classical sequential tuning (Δ = mean edge
#: weight) produces on high-diameter graphs.
_TARGET_BUCKETS = 16


def auto_delta(csr) -> float:
    """The auto-tuned bucket width for the batched kernel.

    Two regimes, taking the larger Δ of:

    * **mean edge weight** — the classical sequential tuning; with
      Δ = mean weight roughly half the adjacency is light and buckets
      advance at the natural distance scale.  Low-diameter graphs
      (small-world / scale-free) land here: their distance range is only
      a few mean weights wide, so the range-based estimate below would
      degenerate.
    * **distance range / target bucket count** — the estimated weighted
      eccentricity (hop eccentricity from one BFS probe × mean weight)
      divided by :data:`_TARGET_BUCKETS`.  High-diameter graphs (grids /
      road networks) land here: at Δ = mean weight they would sweep
      hundreds of thin buckets, each paying the fixed vectorised-scatter
      overhead; a handful of fat buckets trades a little re-relaxation
      for far fewer rounds.

    Unit-weight snapshots get Δ = 1.0, which makes every edge heavy and
    the bucket sweep exactly level-synchronous.  The value only shapes
    the processing schedule — never the results — and is cached per
    snapshot (one O(m) BFS probe amortised across the whole sweep).
    """
    cached = _auto_delta_cache.get(csr)
    if cached is not None:
        return cached
    weights = csr.weights
    if weights is None or len(weights) == 0:
        value = 1.0
    else:
        if _csr.HAS_NUMPY and not isinstance(weights, array):
            mean = float(weights.mean())
        else:
            # repro-lint: disable=float-fold — audited: the mean only sizes Δ buckets (processing schedule), never results
            mean = sum(weights) / len(weights)
        value = mean
        if csr.n > 1:
            # Hop eccentricity of one probe node (between radius and
            # diameter — precision is irrelevant, this only sizes buckets).
            dist, _ = _csr.csr_bfs(csr, 0)
            eccentricity = int(max(dist))
            value = max(mean, eccentricity * mean / _TARGET_BUCKETS)
    _auto_delta_cache[csr] = value
    return value


def _resolve_delta(csr, delta: Optional[float]) -> float:
    """Validate an explicit bucket width, or auto-tune one."""
    if delta is None:
        return auto_delta(csr)
    value = float(delta)
    if not (value > 0.0) or value == _INF:
        raise ValueError(
            f"delta (the bucket width) must be positive and finite, got {delta!r}"
        )
    return value


# ---------------------------------------------------------------------------
# Light/heavy adjacency split (numpy path only)
# ---------------------------------------------------------------------------
class _EdgeSplit:
    """Adjacency split into light (< Δ) and heavy (≥ Δ) CSR halves.

    Masking preserves slot order within each half, and the relaxation
    fixpoint is order-independent anyway, so the split only affects how
    often edges are scanned.  Python-list forms for the sequential
    small-frontier path are materialised lazily.
    """

    __slots__ = ("delta", "light", "heavy", "_light_lists", "_heavy_lists")

    def __init__(self, delta: float, light, heavy) -> None:
        self.delta = delta
        self.light = light  # (indptr, indices, weights) numpy arrays
        self.heavy = heavy
        self._light_lists = None
        self._heavy_lists = None

    def arrays(self, heavy: bool):
        return self.heavy if heavy else self.light

    def lists(self, heavy: bool):
        if heavy:
            if self._heavy_lists is None:
                self._heavy_lists = tuple(arr.tolist() for arr in self.heavy)
            return self._heavy_lists
        if self._light_lists is None:
            self._light_lists = tuple(arr.tolist() for arr in self.light)
        return self._light_lists


def _counts_to_indptr(counts):
    indptr = _np.zeros(counts.size + 1, dtype=_np.int64)
    _np.cumsum(counts, out=indptr[1:])
    return indptr


def _edge_split(csr, delta: float) -> _EdgeSplit:
    """Return the cached light/heavy split of ``csr`` for bucket width Δ."""
    cached = _split_cache.get(csr)
    if cached is not None and cached.delta == delta:
        return cached
    indptr, indices = csr.indptr, csr.indices
    weights = csr.weights
    if weights is None:
        weights = _np.ones(indices.size, dtype=_np.float64)
    n = csr.n
    owners = _np.repeat(
        _np.arange(n, dtype=_np.int64), _np.diff(indptr)
    )
    light_mask = weights < delta
    heavy_mask = ~light_mask
    split = _EdgeSplit(
        delta,
        (
            _counts_to_indptr(_np.bincount(owners[light_mask], minlength=n)),
            indices[light_mask],
            weights[light_mask],
        ),
        (
            _counts_to_indptr(_np.bincount(owners[heavy_mask], minlength=n)),
            indices[heavy_mask],
            weights[heavy_mask],
        ),
    )
    _split_cache[csr] = split
    return split


# ---------------------------------------------------------------------------
# The batched bucket sweep (numpy path)
# ---------------------------------------------------------------------------
def _dedup(nodes):
    """Sort-based dedup of an int64 id array (in place when possible).

    Cheaper than ``np.unique`` (which hashes) for the small per-bucket
    arrays the sweep produces, and the sweep never relies on queue order,
    only on membership.
    """
    if nodes.size <= 1:
        return nodes
    nodes = _np.sort(nodes)
    keep = _np.empty(nodes.size, dtype=bool)
    keep[0] = True
    _np.not_equal(nodes[1:], nodes[:-1], out=keep[1:])
    if keep.all():
        return nodes
    return nodes[keep]


def _park(nodes, bucket_ids, pending, heap) -> None:
    """Queue improved nodes into their buckets (lazy heap of bucket ids)."""
    if nodes.size == 1:
        key = int(bucket_ids[0])
        chunks = pending.get(key)
        if chunks is None:
            pending[key] = [nodes]
            heapq.heappush(heap, key)
        else:
            chunks.append(nodes)
        return
    order = _np.argsort(bucket_ids, kind="stable")
    sorted_nodes = nodes[order]
    sorted_ids = bucket_ids[order]
    starts = _np.flatnonzero(
        _np.concatenate(([True], sorted_ids[1:] != sorted_ids[:-1]))
    )
    stops = _np.append(starts[1:], sorted_ids.size)
    for start, stop in zip(starts.tolist(), stops.tolist()):
        key = int(sorted_ids[start])
        chunk = sorted_nodes[start:stop]
        chunks = pending.get(key)
        if chunks is None:
            pending[key] = [chunk]
            heapq.heappush(heap, key)
        else:
            chunks.append(chunk)


def _relax(split, heavy, frontier, dist, dist_store, n, single, kernel):
    """Relax one edge half of ``frontier``; return unique improved flat ids.

    Hybrid like ``_BatchSweep.expand``: the numba kernel when the compiled
    tier is on, a sequential Python loop under the small-frontier
    threshold, a vectorised gather + lexsort scatter-min otherwise.  All
    three apply the same ``dist[u] + w < dist[v]`` updates, so the choice
    never affects the distance fixpoint.
    """
    indptr, indices, weights = split.arrays(heavy)
    nodes = frontier if single else frontier % n
    starts = indptr[nodes]
    counts = indptr[nodes + 1] - starts
    total = int(counts.sum())
    empty = _np.empty(0, dtype=_np.int64)
    if total == 0:
        return empty
    if kernel is not None:
        out = _np.empty(total, dtype=_np.int64)
        count = int(kernel(indptr, indices, weights, frontier, n, dist, out))
        if count == 0:
            return empty
        return _dedup(out[:count])
    if total < _csr._SEQUENTIAL_EDGE_THRESHOLD:
        indptr_list, indices_list, weights_list = split.lists(heavy)
        improved: List[int] = []
        for flat in frontier.tolist():
            node = flat if single else flat % n
            base = flat - node
            d = dist_store[flat]
            for position in range(indptr_list[node], indptr_list[node + 1]):
                target = base + indices_list[position]
                candidate = d + weights_list[position]
                if candidate < dist_store[target]:
                    dist_store[target] = candidate
                    improved.append(target)
        if not improved:
            return empty
        return _dedup(_np.asarray(improved, dtype=_np.int64))
    row_offsets = _np.cumsum(counts)
    row_offsets -= counts
    positions = _np.arange(total, dtype=_np.int64)
    positions += _np.repeat(starts - row_offsets, counts)
    targets = indices[positions]
    if not single:
        targets = targets + _np.repeat(frontier - nodes, counts)
    candidates = _np.repeat(dist[frontier], counts) + weights[positions]
    improving = candidates < dist[targets]
    if not improving.any():
        return empty
    targets = targets[improving]
    candidates = candidates[improving]
    # Per-target minimum without np.minimum.at: lexsort groups targets with
    # their candidates ascending, so the first row of each group is its min.
    order = _np.lexsort((candidates, targets))
    targets = targets[order]
    candidates = candidates[order]
    keep = _np.empty(targets.size, dtype=bool)
    keep[0] = True
    _np.not_equal(targets[1:], targets[:-1], out=keep[1:])
    targets = targets[keep]
    dist[targets] = candidates[keep]
    return targets


def _np_delta_sweep(csr, roots, delta: float):
    """Run ``B`` stacked delta-stepping searches; return flat ``B * n`` dist.

    Source slot ``k`` owns flat ids ``k * n .. k * n + n - 1`` — the same
    layout as :class:`_BatchSweep` — and unreachable entries stay ``inf``
    (callers convert to the public ``-1.0`` sentinel).  ``last`` tracks the
    distance each node was last relaxed at: a queue entry is stale exactly
    when its distance has not improved since, which is the only invariant
    the bucket schedule relies on.
    """
    n = csr.n
    batch = len(roots)
    single = batch == 1
    size = batch * n
    split = _edge_split(csr, delta)
    dist_store, dist = _csr._shared_state(size, "d")
    dist.fill(_INF)
    last = _np.full(size, _INF, dtype=_np.float64)
    flat_roots = _np.asarray(
        roots if single else [slot * n + root for slot, root in enumerate(roots)],
        dtype=_np.int64,
    )
    dist[flat_roots] = 0.0
    inv_delta = 1.0 / delta
    kernel = _compiled.get_kernel("relax_edges")
    # With Δ ≥ max weight (the range-based auto tuning on most graphs) the
    # heavy half is empty: skip member tracking and the whole heavy phase.
    has_heavy = split.heavy[1].size > 0
    pending: Dict[int, List[object]] = {0: [flat_roots]}
    heap = [0]
    while heap:
        bucket_id = heapq.heappop(heap)
        chunks = pending.pop(bucket_id, None)
        if chunks is None:
            continue
        queued = chunks[0] if len(chunks) == 1 else _np.concatenate(chunks)
        queued = _dedup(queued)
        frontier = queued[dist[queued] < last[queued]]
        members: List[object] = []
        while frontier.size:
            last[frontier] = dist[frontier]
            if has_heavy:
                members.append(frontier)
            improved = _relax(
                split, False, frontier, dist, dist_store, n, single, kernel
            )
            if improved.size == 0:
                break
            improved_buckets = _np.floor(dist[improved] * inv_delta).astype(
                _np.int64
            )
            stay = improved_buckets <= bucket_id
            frontier = improved[stay]
            deferred = improved[~stay]
            if deferred.size:
                _park(deferred, improved_buckets[~stay], pending, heap)
        if not members:
            continue
        settled = members[0] if len(members) == 1 else _dedup(
            _np.concatenate(members)
        )
        improved = _relax(
            split, True, settled, dist, dist_store, n, single, kernel
        )
        if improved.size:
            _park(
                improved,
                _np.floor(dist[improved] * inv_delta).astype(_np.int64),
                pending,
                heap,
            )
    return dist


# ---------------------------------------------------------------------------
# Pure-Python bucket kernel (no-numpy degradation)
# ---------------------------------------------------------------------------
def _py_delta_row(csr, source: int, delta: float) -> List[float]:
    """Single-source bucket-ordered label correction over Python lists.

    Every edge is treated as light (the light/heavy split is a
    vectorised-path refinement); the distance fixpoint is identical.
    """
    indptr, indices = csr.adjacency_lists()
    weights = csr.weight_list()
    n = csr.n
    dist = [_INF] * n
    last = [_INF] * n
    dist[source] = 0.0
    inv_delta = 1.0 / delta
    pending: Dict[int, List[int]] = {0: [source]}
    heap = [0]
    while heap:
        bucket_id = heapq.heappop(heap)
        stack = pending.pop(bucket_id, None)
        if stack is None:
            continue
        while stack:
            node = stack.pop()
            d = dist[node]
            if d >= last[node]:
                continue
            last[node] = d
            for position in range(indptr[node], indptr[node + 1]):
                weight = weights[position] if weights is not None else 1.0
                candidate = d + weight
                target = indices[position]
                if candidate < dist[target]:
                    dist[target] = candidate
                    target_bucket = int(candidate * inv_delta)
                    if target_bucket <= bucket_id:
                        stack.append(target)
                    else:
                        queued = pending.get(target_bucket)
                        if queued is None:
                            pending[target_bucket] = [target]
                            heapq.heappush(heap, target_bucket)
                        else:
                            queued.append(target)
    return dist


# ---------------------------------------------------------------------------
# Finalisation: re-pin Dijkstra's settle order / preds / sigma
# ---------------------------------------------------------------------------
def _finalise_np(csr, source: int, row):
    """Rebuild ``(dist, order, pred_indptr, pred_indices)`` from final dists.

    ``row`` is an inf-sentinel float64 row.  See the module docstring for
    why the reconstruction is exact: the DAG predicate and the
    ``(first-optimal-predecessor position, edge slot)`` tie-break are pure
    functions of the final distances.
    """
    n = csr.n
    indptr, indices = csr.indptr, csr.indices
    tails = _np.repeat(_np.arange(n, dtype=_np.int64), _np.diff(indptr))
    tail_dist = row[tails]
    if csr.weights is not None:
        candidates = tail_dist + csr.weights
    else:
        candidates = tail_dist + 1.0
    dag_mask = _np.isfinite(tail_dist) & (candidates == row[indices])
    dag_u = tails[dag_mask]
    dag_v = indices[dag_mask]
    dag_slot = _np.flatnonzero(dag_mask)
    reach = _np.flatnonzero(_np.isfinite(row))
    order = reach[_np.argsort(row[reach], kind="stable")]
    count = order.size
    pos = _np.empty(n, dtype=_np.int64)
    pos[order] = _np.arange(count, dtype=_np.int64)
    if count > 1:
        d_sorted = row[order]
        ties = d_sorted[1:] == d_sorted[:-1]
        if ties.any():
            group_starts = _np.flatnonzero(
                _np.concatenate(([True], ~ties))
            )
            group_sizes = _np.diff(_np.append(group_starts, count))
            multi = group_sizes > 1
            in_order = _np.argsort(dag_v, kind="stable")
            in_tails = dag_u[in_order]
            in_slots = dag_slot[in_order]
            in_counts = _np.bincount(dag_v, minlength=n)
            in_indptr = _np.zeros(n + 1, dtype=_np.int64)
            _np.cumsum(in_counts, out=in_indptr[1:])
            # Encode (pos[u], slot) lexicographic keys as one int64: slot
            # is globally < stride, so keys from different predecessors
            # never collide.
            stride = _np.int64(indices.size + 1)
            # Tie groups resolve in ascending distance order: every DAG
            # predecessor has strictly smaller distance (positive weights),
            # so its position is already final when its group is reached.
            for g_start, g_size in zip(
                group_starts[multi].tolist(), group_sizes[multi].tolist()
            ):
                group = order[g_start : g_start + g_size]
                starts = in_indptr[group]
                counts = in_counts[group]
                total = int(counts.sum())
                offsets = _np.cumsum(counts)
                offsets -= counts
                positions = _np.arange(total, dtype=_np.int64)
                positions += _np.repeat(starts - offsets, counts)
                keys = pos[in_tails[positions]] * stride + in_slots[positions]
                group_keys = _np.minimum.reduceat(keys, offsets)
                reordered = group[_np.argsort(group_keys, kind="stable")]
                order[g_start : g_start + g_size] = reordered
                pos[reordered] = _np.arange(
                    g_start, g_start + g_size, dtype=_np.int64
                )
    pred_order = _np.lexsort((pos[dag_u], dag_v))
    pred_indices = dag_u[pred_order]
    pred_indptr = _np.zeros(n + 1, dtype=_np.int64)
    _np.cumsum(_np.bincount(dag_v, minlength=n), out=pred_indptr[1:])
    dist_out = row.copy()
    dist_out[~_np.isfinite(row)] = -1.0
    return dist_out, order, pred_indptr, pred_indices


def _finalise_py(csr, source: int, dist_inf: List[float]):
    """Pure-Python mirror of :func:`_finalise_np` (identical results)."""
    indptr, indices = csr.adjacency_lists()
    weights = csr.weight_list()
    n = csr.n
    in_edges: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    reachable: List[int] = []
    for node in range(n):
        d = dist_inf[node]
        if d == _INF:
            continue
        reachable.append(node)
        for position in range(indptr[node], indptr[node + 1]):
            weight = weights[position] if weights is not None else 1.0
            if d + weight == dist_inf[indices[position]]:
                in_edges[indices[position]].append((node, position))
    reachable.sort(key=lambda node: dist_inf[node])
    pos = [0] * n
    for rank, node in enumerate(reachable):
        pos[node] = rank
    start = 0
    count = len(reachable)
    while start < count:
        stop = start + 1
        d = dist_inf[reachable[start]]
        while stop < count and dist_inf[reachable[stop]] == d:
            stop += 1
        if stop - start > 1:
            group = reachable[start:stop]
            group.sort(
                key=lambda node: min(
                    (pos[u], slot) for u, slot in in_edges[node]
                )
            )
            reachable[start:stop] = group
            for rank in range(start, stop):
                pos[reachable[rank]] = rank
        start = stop
    pred_indptr = [0] * (n + 1)
    pred_indices: List[int] = []
    for node in range(n):
        edges = in_edges[node]
        if len(edges) > 1:
            edges.sort(key=lambda edge: pos[edge[0]])
        for predecessor, _ in edges:
            pred_indices.append(predecessor)
        pred_indptr[node + 1] = len(pred_indices)
    dist_out = [-1.0 if value == _INF else value for value in dist_inf]
    return dist_out, reachable, pred_indptr, pred_indices


def _sigma_over_preds(source, order, pred_indptr, pred_indices, n, float_sigma):
    """Accumulate sigma over the settle order (preds in append order).

    Integer mode uses exact Python ints; float (Brandes) mode replays the
    dict reference's addition sequence — via the compiled kernel when the
    tier is on (structurally identical loop, no re-association).
    """
    if not isinstance(order, list):
        reachable = order.size if hasattr(order, "size") else len(order)
        if int(pred_indices.size) == reachable - 1:
            # Every reachable non-source node has exactly one optimal
            # predecessor (each has at least one by construction), i.e.
            # shortest paths are unique: sigma is 1 along the whole DAG.
            # Jittered-float-weight graphs land here almost surely.
            sigma_row = _np.zeros(
                n, dtype=_np.float64 if float_sigma else _np.int64
            )
            sigma_row[order] = 1
            return sigma_row.tolist()
    if float_sigma and _csr.HAS_NUMPY and not isinstance(order, list):
        kernel = _compiled.get_kernel("sigma_float")
        if kernel is not None:
            sigma = _np.zeros(n, dtype=_np.float64)
            sigma[source] = 1.0
            kernel(order, pred_indptr, pred_indices, sigma)
            return sigma.tolist()
    if isinstance(order, list):
        order_list, indptr_list, indices_list = order, pred_indptr, pred_indices
    else:
        order_list = order.tolist()
        indptr_list = pred_indptr.tolist()
        indices_list = pred_indices.tolist()
    sigma: List = [0.0 if float_sigma else 0] * n
    sigma[source] = 1.0 if float_sigma else 1
    for node in order_list[1:]:
        total = 0.0 if float_sigma else 0
        for position in range(indptr_list[node], indptr_list[node + 1]):
            total += sigma[indices_list[position]]
        sigma[node] = total
    return sigma


# ---------------------------------------------------------------------------
# Public kernels (drop-in equivalents of the csr_dijkstra_* trio)
# ---------------------------------------------------------------------------
def csr_delta_distances(
    csr, source: int, *, with_order: bool = False, delta: Optional[float] = None
):
    """Weighted distance row via delta-stepping (== ``csr_dijkstra_distances``).

    ``with_order=True`` additionally reconstructs the Dijkstra settle
    order (which requires the DAG finalisation pass); the plain form is
    the lean distance-only kernel batched sweeps build on.
    """
    if _csr.HAS_NUMPY:
        row = _np_delta_sweep(csr, [source], _resolve_delta(csr, delta))
        if with_order:
            dist_out, order, _, _ = _finalise_np(csr, source, row)
            return dist_out, order.tolist()
        dist_out = row.copy()
        dist_out[_np.isinf(row)] = -1.0
        return dist_out
    dist_inf = _py_delta_row(csr, source, _resolve_delta(csr, delta))
    if with_order:
        dist_out, order, _, _ = _finalise_py(csr, source, dist_inf)
        return dist_out, order
    return [-1.0 if value == _INF else value for value in dist_inf]


def csr_delta_dag(
    csr,
    source: int,
    *,
    float_sigma: bool = False,
    delta: Optional[float] = None,
    _dist_row=None,
):
    """Weighted shortest-path DAG via delta-stepping (== ``csr_dijkstra_dag``).

    ``_dist_row`` lets batched sweeps hand in a slot of an already-computed
    flat distance array (inf-sentinel form) so the distance phase is run
    once per batch rather than once per source.
    """
    if _csr.HAS_NUMPY:
        row = _dist_row
        if row is None:
            row = _np_delta_sweep(csr, [source], _resolve_delta(csr, delta))
        dist_out, order, pred_indptr, pred_indices = _finalise_np(
            csr, source, row
        )
    else:
        dist_inf = _dist_row
        if dist_inf is None:
            dist_inf = _py_delta_row(csr, source, _resolve_delta(csr, delta))
        dist_out, order, pred_indptr, pred_indices = _finalise_py(
            csr, source, dist_inf
        )
    sigma = _sigma_over_preds(
        source, order, pred_indptr, pred_indices, csr.n, float_sigma
    )
    return _csr.CSRShortestPathDAG(
        csr, source, dist_out, sigma, order, None, None,
        pred_indptr=pred_indptr, pred_indices=pred_indices, weighted=True,
    )


def csr_delta_brandes(
    csr, source: int, *, delta: Optional[float] = None, _dist_row=None
):
    """Weighted Brandes dependencies via delta-stepping (== ``csr_dijkstra_brandes``)."""
    dag = csr_delta_dag(
        csr, source, float_sigma=True, delta=delta, _dist_row=_dist_row
    )
    dependencies = _csr.weighted_backward_dependencies(dag)
    return dependencies, dag.order, dag.dist


def delta_sweep(
    csr,
    sources,
    *,
    kind: str,
    batch_size: Optional[int] = None,
    delta: Optional[float] = None,
) -> List[object]:
    """Batched weighted sweep: the delta analogue of the `_BatchSweep` driver.

    Stacks up to ``batch_size`` sources (default
    :func:`repro.graphs.csr.default_sweep_batch`) per distance phase;
    sigma/Brandes kinds then finalise each slot against its distance row.
    Results are bit-identical to the per-source Dijkstra loop in
    :func:`repro.graphs.csr.multi_source_sweep`.
    """
    value = _resolve_delta(csr, delta)
    results: List[object] = []
    source_list = list(sources)
    if not _csr.HAS_NUMPY:
        for source in source_list:
            dist_inf = _py_delta_row(csr, source, value)
            if kind == _csr.SWEEP_DISTANCE:
                results.append(
                    [-1.0 if v == _INF else v for v in dist_inf]
                )
            elif kind == _csr.SWEEP_SIGMA:
                dag = csr_delta_dag(csr, source, delta=value, _dist_row=dist_inf)
                results.append((dag.dist, dag.sigma))
            else:
                dependencies, _, _ = csr_delta_brandes(
                    csr, source, delta=value, _dist_row=dist_inf
                )
                results.append(dependencies)
        return results
    if batch_size is None:
        batch_size = _csr.default_sweep_batch(csr)
    n = csr.n
    for start in range(0, len(source_list), batch_size):
        roots = source_list[start : start + batch_size]
        flat = _np_delta_sweep(csr, roots, value)
        for slot, source in enumerate(roots):
            row = flat[slot * n : (slot + 1) * n]
            if kind == _csr.SWEEP_DISTANCE:
                out = row.copy()
                out[_np.isinf(row)] = -1.0
                results.append(out)
            elif kind == _csr.SWEEP_SIGMA:
                dag = csr_delta_dag(csr, source, delta=value, _dist_row=row)
                results.append((dag.dist, dag.sigma))
            else:
                dependencies, _, _ = csr_delta_brandes(
                    csr, source, delta=value, _dist_row=row
                )
                results.append(dependencies)
    return results
