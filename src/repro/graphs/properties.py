"""Graph summary statistics (Table II of the paper: nodes, edges, diameter)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.graphs.biconnected import biconnected_components
from repro.graphs.components import connected_components
from repro.graphs.diameter import estimate_diameter, exact_diameter
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike


@dataclass
class GraphSummary:
    """Summary row for one network (mirrors Table II, plus block structure).

    Attributes
    ----------
    num_nodes, num_edges:
        Basic sizes.
    diameter:
        Exact diameter when ``exact`` was requested, otherwise an upper
        bound estimate from random-source eccentricities.
    diameter_is_exact:
        Whether ``diameter`` is exact.
    num_components:
        Number of connected components.
    num_blocks:
        Number of biconnected components.
    num_cutpoints:
        Number of articulation points.
    max_degree, avg_degree:
        Degree statistics.
    """

    num_nodes: int
    num_edges: int
    diameter: int
    diameter_is_exact: bool
    num_components: int
    num_blocks: int
    num_cutpoints: int
    max_degree: int
    avg_degree: float


def summarize(
    graph: Graph, *, exact: Optional[bool] = None, seed: SeedLike = 0
) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``.

    Parameters
    ----------
    exact:
        Force exact (``True``) or estimated (``False``) diameter.  By default
        the diameter is exact for graphs with at most 500 nodes and estimated
        otherwise.
    seed:
        Seed for the diameter estimator.
    """
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    if exact is None:
        exact = n <= 500
    if n == 0:
        diameter = 0
    elif exact:
        diameter = exact_diameter(graph)
    else:
        diameter = estimate_diameter(graph, seed)
    decomposition = biconnected_components(graph)
    degrees = [graph.degree(node) for node in graph.nodes()]
    return GraphSummary(
        num_nodes=n,
        num_edges=m,
        diameter=diameter,
        diameter_is_exact=bool(exact),
        num_components=len(connected_components(graph)),
        num_blocks=len(decomposition.components),
        num_cutpoints=len(decomposition.cutpoints),
        max_degree=max(degrees) if degrees else 0,
        avg_degree=(2.0 * m / n) if n else 0.0,
    )
