"""Random-graph generators used to build the synthetic dataset surrogates.

The paper evaluates on three large social networks (Flickr, LiveJournal,
Orkut) and one road network (USA-road).  At laptop scale we reproduce the
*structural families*:

* :func:`barabasi_albert_graph` and :func:`powerlaw_cluster_graph` give
  heavy-tailed degree distributions and small diameters (social surrogates);
* :func:`grid_road_graph` gives a near-planar graph with a huge diameter and
  many degree-2 chains / cut vertices (road surrogate);
* :func:`erdos_renyi_graph` and :func:`watts_strogatz_graph` are included for
  tests and ablations.

All generators take a ``seed`` and are fully deterministic given one.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng


def erdos_renyi_graph(num_nodes: int, edge_probability: float, seed: SeedLike = None) -> Graph:
    """Generate a G(n, p) Erdős–Rényi random graph.

    Uses the geometric skipping technique so the expected running time is
    ``O(n + m)`` rather than ``O(n^2)``.
    """
    if num_nodes < 0:
        raise GraphError(f"num_nodes must be >= 0, got {num_nodes}")
    if not 0 <= edge_probability <= 1:
        raise GraphError(f"edge_probability must be in [0, 1], got {edge_probability}")
    rng = ensure_rng(seed)
    graph = Graph()
    for node in range(num_nodes):
        graph.add_node(node)
    if edge_probability == 0 or num_nodes < 2:
        return graph
    if edge_probability == 1:
        for u in range(num_nodes):
            for v in range(u + 1, num_nodes):
                graph.add_edge(u, v)
        return graph
    log_q = math.log(1.0 - edge_probability)
    v = 1
    w = -1
    while v < num_nodes:
        r = rng.random()
        w = w + 1 + int(math.log(1.0 - r) / log_q)
        while w >= v and v < num_nodes:
            w -= v
            v += 1
        if v < num_nodes:
            graph.add_edge(v, w)
    return graph


def barabasi_albert_graph(num_nodes: int, edges_per_node: int, seed: SeedLike = None) -> Graph:
    """Generate a Barabási–Albert preferential-attachment graph.

    Each new node attaches to ``edges_per_node`` existing nodes with
    probability proportional to their degree, producing the power-law degree
    distribution typical of social networks.
    """
    if edges_per_node < 1:
        raise GraphError(f"edges_per_node must be >= 1, got {edges_per_node}")
    if num_nodes < edges_per_node + 1:
        raise GraphError(
            f"num_nodes must be > edges_per_node ({edges_per_node}), got {num_nodes}"
        )
    rng = ensure_rng(seed)
    graph = Graph()
    # Start from a star on m+1 nodes so every node has degree >= 1.
    repeated_nodes = []
    for node in range(edges_per_node + 1):
        graph.add_node(node)
    for node in range(1, edges_per_node + 1):
        graph.add_edge(0, node)
        repeated_nodes.extend((0, node))
    for new_node in range(edges_per_node + 1, num_nodes):
        targets = set()
        while len(targets) < edges_per_node:
            targets.add(rng.choice(repeated_nodes))
        for target in targets:
            graph.add_edge(new_node, target)
            repeated_nodes.append(target)
            repeated_nodes.append(new_node)
    return graph


def powerlaw_cluster_graph(
    num_nodes: int,
    edges_per_node: int,
    triangle_probability: float,
    seed: SeedLike = None,
) -> Graph:
    """Generate a Holme–Kim power-law graph with tunable clustering.

    Like Barabási–Albert but after each preferential attachment, with
    probability ``triangle_probability`` the next edge closes a triangle with
    a neighbour of the previously chosen target.  Higher clustering creates
    larger bi-components, which is the regime where bi-component sampling in
    SaPHyRa_bc matters.
    """
    if not 0 <= triangle_probability <= 1:
        raise GraphError(
            f"triangle_probability must be in [0, 1], got {triangle_probability}"
        )
    if edges_per_node < 1:
        raise GraphError(f"edges_per_node must be >= 1, got {edges_per_node}")
    if num_nodes < edges_per_node + 1:
        raise GraphError(
            f"num_nodes must be > edges_per_node ({edges_per_node}), got {num_nodes}"
        )
    rng = ensure_rng(seed)
    graph = Graph()
    repeated_nodes = []
    for node in range(edges_per_node + 1):
        graph.add_node(node)
    for node in range(1, edges_per_node + 1):
        graph.add_edge(0, node)
        repeated_nodes.extend((0, node))
    for new_node in range(edges_per_node + 1, num_nodes):
        added = 0
        last_target = None
        while added < edges_per_node:
            if (
                last_target is not None
                and rng.random() < triangle_probability
                and graph.degree(last_target) > 0
            ):
                candidates = [
                    nbr
                    for nbr in graph.neighbors(last_target)
                    if nbr != new_node and not graph.has_edge(new_node, nbr)
                ]
                if candidates:
                    target = rng.choice(candidates)
                else:
                    target = rng.choice(repeated_nodes)
            else:
                target = rng.choice(repeated_nodes)
            if target == new_node or graph.has_edge(new_node, target):
                # Resample; dense corner cases terminate because the loop
                # can always fall back to a fresh preferential choice.
                last_target = None
                continue
            graph.add_edge(new_node, target)
            repeated_nodes.append(target)
            repeated_nodes.append(new_node)
            last_target = target
            added += 1
    return graph


def watts_strogatz_graph(
    num_nodes: int, nearest_neighbors: int, rewire_probability: float, seed: SeedLike = None
) -> Graph:
    """Generate a Watts–Strogatz small-world graph.

    Starts from a ring lattice where each node connects to its
    ``nearest_neighbors`` closest neighbours (must be even) and rewires each
    edge with probability ``rewire_probability``.
    """
    if nearest_neighbors % 2 != 0 or nearest_neighbors < 2:
        raise GraphError(
            f"nearest_neighbors must be a positive even integer, got {nearest_neighbors}"
        )
    if num_nodes <= nearest_neighbors:
        raise GraphError(
            f"num_nodes must exceed nearest_neighbors ({nearest_neighbors}), got {num_nodes}"
        )
    if not 0 <= rewire_probability <= 1:
        raise GraphError(
            f"rewire_probability must be in [0, 1], got {rewire_probability}"
        )
    rng = ensure_rng(seed)
    graph = Graph()
    for node in range(num_nodes):
        graph.add_node(node)
    half = nearest_neighbors // 2
    for node in range(num_nodes):
        for offset in range(1, half + 1):
            graph.add_edge(node, (node + offset) % num_nodes)
    for node in range(num_nodes):
        for offset in range(1, half + 1):
            neighbor = (node + offset) % num_nodes
            if rng.random() < rewire_probability:
                candidates = [
                    c
                    for c in range(num_nodes)
                    if c != node and not graph.has_edge(node, c)
                ]
                if not candidates:
                    continue
                new_neighbor = rng.choice(candidates)
                if graph.has_edge(node, neighbor):
                    graph.remove_edge(node, neighbor)
                graph.add_edge(node, new_neighbor)
    return graph


def grid_road_graph(
    rows: int,
    cols: int,
    *,
    diagonal_probability: float = 0.05,
    removal_probability: float = 0.1,
    seed: SeedLike = None,
) -> Tuple[Graph, Dict[int, Tuple[float, float]]]:
    """Generate a road-network-like graph on a jittered 2-D grid.

    Road networks (the USA-road dataset in the paper) are near-planar, have
    tiny average degree, a very large diameter and many cut vertices.  This
    generator reproduces those traits: a ``rows x cols`` grid with a few
    random diagonals, a fraction of edges removed (creating dead ends and
    bridges), restricted to its largest connected component.

    Returns
    -------
    (graph, coordinates):
        ``coordinates[node] = (x, y)`` positions used by the geographic
        subset selection in the USA-road case study.
    """
    if rows < 2 or cols < 2:
        raise GraphError(f"rows and cols must both be >= 2, got ({rows}, {cols})")
    if not 0 <= diagonal_probability <= 1:
        raise GraphError(
            f"diagonal_probability must be in [0, 1], got {diagonal_probability}"
        )
    if not 0 <= removal_probability < 1:
        raise GraphError(
            f"removal_probability must be in [0, 1), got {removal_probability}"
        )
    rng = ensure_rng(seed)
    graph = Graph()
    coordinates: Dict[int, Tuple[float, float]] = {}

    def node_id(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            node = node_id(r, c)
            graph.add_node(node)
            coordinates[node] = (c + rng.uniform(-0.3, 0.3), r + rng.uniform(-0.3, 0.3))
    for r in range(rows):
        for c in range(cols):
            node = node_id(r, c)
            if c + 1 < cols and rng.random() >= removal_probability:
                graph.add_edge(node, node_id(r, c + 1))
            if r + 1 < rows and rng.random() >= removal_probability:
                graph.add_edge(node, node_id(r + 1, c))
            if (
                r + 1 < rows
                and c + 1 < cols
                and rng.random() < diagonal_probability
            ):
                graph.add_edge(node, node_id(r + 1, c + 1))

    # Keep only the largest connected component so downstream shortest-path
    # distributions are well defined, exactly as the paper does implicitly by
    # using connected benchmark graphs.
    from repro.graphs.components import largest_connected_component

    component = largest_connected_component(graph)
    graph = graph.subgraph(component)
    coordinates = {node: coordinates[node] for node in component}
    return graph, coordinates


def weighted_grid_road_graph(
    rows: int,
    cols: int,
    *,
    diagonal_probability: float = 0.05,
    removal_probability: float = 0.1,
    weight_jitter: float = 0.25,
    seed: SeedLike = None,
) -> Tuple[Graph, Dict[int, Tuple[float, float]]]:
    """A :func:`grid_road_graph` whose edges carry road-length weights.

    Each edge's weight is the Euclidean distance between its (jittered)
    endpoint coordinates times a per-edge factor ``1 + U(0, weight_jitter)``
    drawn from the seeded RNG — deterministic given ``seed``, strictly
    positive by construction (adjacent grid points are at least 0.4 apart),
    and road-like: long detours cost more than straight hops.

    Returns ``(graph, coordinates)`` exactly like :func:`grid_road_graph`.
    """
    if weight_jitter < 0:
        raise GraphError(f"weight_jitter must be >= 0, got {weight_jitter}")
    rng = ensure_rng(seed)
    graph, coordinates = grid_road_graph(
        rows,
        cols,
        diagonal_probability=diagonal_probability,
        removal_probability=removal_probability,
        seed=rng,
    )
    for u, v in list(graph.edges()):
        (x1, y1), (x2, y2) = coordinates[u], coordinates[v]
        length = math.hypot(x2 - x1, y2 - y1)
        graph.set_edge_weight(u, v, length * (1.0 + rng.uniform(0.0, weight_jitter)))
    return graph, coordinates


def weighted_barabasi_albert_graph(
    num_nodes: int,
    edges_per_node: int,
    seed: SeedLike = None,
    *,
    weight_range: Tuple[float, float] = (1.0, 10.0),
) -> Graph:
    """A :func:`barabasi_albert_graph` with uniform random edge weights.

    After the preferential-attachment construction, every edge gets an
    independent weight drawn uniformly from ``weight_range`` by the *same*
    seeded RNG (continuing its stream), so the whole graph — topology and
    weights — is deterministic given ``seed``.
    """
    low, high = weight_range
    if not (0 < low <= high) or not math.isfinite(high):
        raise GraphError(
            f"weight_range must satisfy 0 < low <= high, got {weight_range!r}"
        )
    rng = ensure_rng(seed)
    graph = barabasi_albert_graph(num_nodes, edges_per_node, seed=rng)
    for u, v in list(graph.edges()):
        graph.set_edge_weight(u, v, rng.uniform(low, high))
    return graph


def path_graph(num_nodes: int) -> Graph:
    """Return a simple path ``0 - 1 - ... - (n-1)`` (handy for tests)."""
    graph = Graph()
    for node in range(num_nodes):
        graph.add_node(node)
    for node in range(num_nodes - 1):
        graph.add_edge(node, node + 1)
    return graph


def cycle_graph(num_nodes: int) -> Graph:
    """Return a simple cycle on ``num_nodes`` nodes (requires >= 3 nodes)."""
    if num_nodes < 3:
        raise GraphError(f"a cycle needs at least 3 nodes, got {num_nodes}")
    graph = path_graph(num_nodes)
    graph.add_edge(num_nodes - 1, 0)
    return graph


def complete_graph(num_nodes: int) -> Graph:
    """Return the complete graph ``K_n``."""
    graph = Graph()
    for node in range(num_nodes):
        graph.add_node(node)
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            graph.add_edge(u, v)
    return graph


def star_graph(num_leaves: int) -> Graph:
    """Return a star with centre ``0`` and ``num_leaves`` leaves."""
    graph = Graph()
    graph.add_node(0)
    for leaf in range(1, num_leaves + 1):
        graph.add_edge(0, leaf)
    return graph


def barbell_graph(clique_size: int, path_length: int) -> Graph:
    """Two ``K_{clique_size}`` cliques joined by a path of ``path_length`` nodes.

    This is the canonical stress test for bi-component decomposition: the
    path nodes are all cut vertices and carry the highest betweenness.
    """
    if clique_size < 3:
        raise GraphError(f"clique_size must be >= 3, got {clique_size}")
    graph = complete_graph(clique_size)
    offset = clique_size
    previous = clique_size - 1
    for i in range(path_length):
        node = offset + i
        graph.add_edge(previous, node)
        previous = node
    second_clique_start = offset + path_length
    for u in range(second_clique_start, second_clique_start + clique_size):
        graph.add_node(u)
    for u in range(second_clique_start, second_clique_start + clique_size):
        for v in range(u + 1, second_clique_start + clique_size):
            graph.add_edge(u, v)
    graph.add_edge(previous, second_clique_start)
    return graph
