"""Table drivers: Table I (VC bounds), Table II (networks), Table III (subsets)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.datasets.subsets import l_hop_subset, road_areas
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentRunner
from repro.graphs.properties import GraphSummary, summarize
from repro.saphyra_bc.vc_bounds import VCBoundReport, vc_bound_report
from repro.utils.rng import ensure_rng


# ----------------------------------------------------------------------
# Table I: VC-dimension bound comparison
# ----------------------------------------------------------------------
@dataclass
class VCBoundRow:
    """One dataset's VC-bound comparison (random subset and l-hop subset)."""

    dataset: str
    subset_kind: str
    subset_size: int
    report: VCBoundReport


def table1_vc_bounds(
    config: Optional[ExperimentConfig] = None,
    *,
    l_hops: int = 2,
    runner: Optional[ExperimentRunner] = None,
) -> List[VCBoundRow]:
    """Compare the diameter-based, bi-component and personalized VC bounds.

    For each dataset two subsets are evaluated: a random subset of the
    configured size (the "any subset A" column of Table I) and an l-hop
    neighbourhood of a random node (the "l-hop neighbours" column).
    """
    runner = runner if runner is not None else ExperimentRunner(config)
    config = runner.config
    rng = ensure_rng(config.seed)
    rows: List[VCBoundRow] = []
    for name in config.datasets:
        graph = runner.dataset(name).graph
        bct = runner.block_cut_tree(name)
        random_targets = runner.subsets(name, config.subset_size, 1)[0]
        rows.append(
            VCBoundRow(
                dataset=name,
                subset_kind="random",
                subset_size=len(random_targets),
                report=vc_bound_report(graph, bct, random_targets, seed=rng),
            )
        )
        center = rng.choice(list(graph.nodes()))
        neighborhood = l_hop_subset(graph, center, l_hops)
        rows.append(
            VCBoundRow(
                dataset=name,
                subset_kind=f"{l_hops}-hop",
                subset_size=len(neighborhood),
                report=vc_bound_report(graph, bct, neighborhood, seed=rng),
            )
        )
    return rows


# ----------------------------------------------------------------------
# Table II: network summary
# ----------------------------------------------------------------------
@dataclass
class NetworkSummaryRow:
    """One row of Table II, with the paper's original sizes for reference."""

    dataset: str
    summary: GraphSummary
    paper_nodes: float
    paper_edges: float
    paper_diameter: float


def table2_networks(
    config: Optional[ExperimentConfig] = None,
    runner: Optional[ExperimentRunner] = None,
) -> List[NetworkSummaryRow]:
    """Summarise every evaluation network (our surrogate vs. paper scale)."""
    runner = runner if runner is not None else ExperimentRunner(config)
    config = runner.config
    rows: List[NetworkSummaryRow] = []
    for name in config.datasets:
        data = runner.dataset(name)
        summary = summarize(data.graph, seed=config.seed)
        reference = data.paper_reference
        rows.append(
            NetworkSummaryRow(
                dataset=name,
                summary=summary,
                paper_nodes=reference.get("nodes", float("nan")),
                paper_edges=reference.get("edges", float("nan")),
                paper_diameter=reference.get("diameter", float("nan")),
            )
        )
    return rows


# ----------------------------------------------------------------------
# Table III: USA-road subsets summary
# ----------------------------------------------------------------------
@dataclass
class RoadSubsetRow:
    """One geographic area of the road network (Table III)."""

    area: str
    num_nodes: int
    num_edges: int


def table3_subsets(
    config: Optional[ExperimentConfig] = None,
    *,
    dataset: str = "usa-road",
    runner: Optional[ExperimentRunner] = None,
) -> List[RoadSubsetRow]:
    """Node/edge counts of the four geographic areas of the road surrogate."""
    runner = runner if runner is not None else ExperimentRunner(config)
    data = runner.dataset(dataset)
    if data.coordinates is None:
        raise ValueError(f"dataset {dataset!r} has no coordinates")
    areas = road_areas(data.coordinates, graph=data.graph)
    rows: List[RoadSubsetRow] = []
    for area_name, nodes in sorted(areas.items(), key=lambda item: len(item[1])):
        subgraph = data.graph.subgraph(nodes)
        rows.append(
            RoadSubsetRow(
                area=area_name,
                num_nodes=subgraph.number_of_nodes(),
                num_edges=subgraph.number_of_edges(),
            )
        )
    return rows
