"""Plain-text rendering of experiment results.

The harness has no plotting dependency; figures are reported as aligned text
tables / series, which is what EXPERIMENTS.md records and what the
benchmarks print.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence, Tuple


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned, pipe-separated text table."""
    materialised: List[List[str]] = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    lines = [
        " | ".join(header.ljust(widths[index]) for index, header in enumerate(headers)),
        "-+-".join("-" * width for width in widths),
    ]
    for row in materialised:
        lines.append(
            " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_series(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render ``{series name: [(x, y), ...]}`` as one text table."""
    headers = [x_label] + list(series)
    xs: List[float] = []
    for points in series.values():
        for x, _ in points:
            if x not in xs:
                xs.append(x)
    rows = []
    for x in xs:
        row: List[object] = [x]
        for name in series:
            value = next((y for px, y in series[name] if px == x), None)
            row.append(value if value is not None else "-")
        rows.append(row)
    table = render_table(headers, rows)
    return f"{y_label} by {x_label}\n{table}"


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "nan"
        if abs(cell) >= 1000 or (abs(cell) < 0.001 and cell != 0):
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".") or "0"
    return str(cell)
