"""Saving and loading experiment results.

Long sweeps should not have to be re-run to re-render a table: every row type
produced by the figure/table drivers is a flat dataclass, so the generic
helpers here serialise lists of them to JSON (or CSV) and back.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import Iterable, List, Sequence, Type, TypeVar, Union

PathLike = Union[str, Path]
RowT = TypeVar("RowT")


def _row_to_dict(row: object) -> dict:
    if dataclasses.is_dataclass(row) and not isinstance(row, type):
        result = {}
        for field in dataclasses.fields(row):
            value = getattr(row, field.name)
            if dataclasses.is_dataclass(value) and not isinstance(value, type):
                value = dataclasses.asdict(value)
            result[field.name] = value
        return result
    raise TypeError(f"expected a dataclass row, got {type(row).__name__}")


def save_rows_json(rows: Iterable[object], path: PathLike) -> None:
    """Write dataclass rows to a JSON file (a list of objects)."""
    payload = [_row_to_dict(row) for row in rows]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=str)


def load_rows_json(path: PathLike, row_type: Type[RowT]) -> List[RowT]:
    """Load rows saved by :func:`save_rows_json` back into ``row_type``.

    Nested dataclass fields are *not* reconstructed (they come back as
    dictionaries); the flat row types used by the drivers do not need them.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    field_names = {field.name for field in dataclasses.fields(row_type)}
    rows: List[RowT] = []
    for entry in payload:
        filtered = {key: value for key, value in entry.items() if key in field_names}
        rows.append(row_type(**filtered))
    return rows


def save_rows_csv(
    rows: Sequence[object], path: PathLike, *, columns: Sequence[str] | None = None
) -> None:
    """Write dataclass rows to a CSV file.

    Parameters
    ----------
    columns:
        Optional subset / ordering of columns; defaults to every field of the
        first row.
    """
    rows = list(rows)
    if not rows:
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write("")
        return
    dictionaries = [_row_to_dict(row) for row in rows]
    if columns is None:
        columns = list(dictionaries[0].keys())
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for entry in dictionaries:
            writer.writerow({key: entry.get(key, "") for key in columns})
