"""Shared experiment runner: datasets, ground truth, algorithm execution.

The runner caches everything that the paper's experiments reuse across
configurations — the graphs, their block-cut trees, the exact ground truth,
and the whole-network baseline estimates (which do not depend on the target
subset) — so the figure drivers only pay for what actually changes.
"""

from __future__ import annotations

import math
import statistics
import zlib
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.baselines import ABRA, KADABRA
from repro.baselines.base import BaselineResult
from repro.datasets.registry import Dataset, load
from repro.datasets.subsets import random_subset
from repro.datasets.ground_truth import GroundTruthCache
from repro.experiments.config import ExperimentConfig
from repro.graphs.block_cut_tree import BlockCutTree, build_block_cut_tree
from repro.metrics.rank_correlation import kendall_tau, spearman_rank_correlation
from repro.metrics.zeros import classify_zeros
from repro.saphyra_bc.algorithm import SaPHyRaBC
from repro.utils.rng import ensure_rng

Node = Hashable

#: Display names used in tables (matches the paper's legends).
ALGORITHM_LABELS = {
    "abra": "ABRA",
    "kadabra": "KADABRA",
    "saphyra_full": "SaPHyRa_bc-full",
    "saphyra": "SaPHyRa_bc",
}


@dataclass
class SubsetEvaluation:
    """Metrics of one algorithm on one target subset."""

    dataset: str
    algorithm: str
    epsilon: float
    subset_index: int
    subset_size: int
    spearman: float
    kendall: float
    max_abs_error: float
    wall_time_seconds: float
    num_samples: int
    true_zero_fraction: float
    false_zero_fraction: float


@dataclass
class EpsilonSweepRow:
    """Aggregate of one (dataset, algorithm, epsilon) cell of Figs. 3-4."""

    dataset: str
    algorithm: str
    epsilon: float
    mean_time_seconds: float
    mean_spearman: float
    spearman_ci_low: float
    spearman_ci_high: float
    mean_samples: float
    num_subsets: int


def _stable_hash(text: str) -> int:
    """Deterministic string hash (Python's ``hash`` is salted per process)."""
    return zlib.crc32(text.encode("utf-8"))


def _confidence_interval(values: Sequence[float]) -> Tuple[float, float]:
    """95% normal-approximation confidence interval for the mean."""
    if not values:
        return (0.0, 0.0)
    mean = statistics.fmean(values)
    if len(values) < 2:
        return (mean, mean)
    half_width = 1.96 * statistics.stdev(values) / math.sqrt(len(values))
    return (mean - half_width, mean + half_width)


class ExperimentRunner:
    """Caching executor behind all figure and table drivers."""

    def __init__(self, config: Optional[ExperimentConfig] = None) -> None:
        self.config = config if config is not None else ExperimentConfig.default()
        self._backend_applied = False
        self._start_method_applied = False
        self._dag_cache_applied = False
        self._dag_cache_bounds_applied = False
        self._dag_cache_delta_applied = False
        self._shared_memory_applied = False
        self._weighted_applied = False
        self._sssp_kernel_applied = False
        self._compiled_applied = False
        self._snapshot_applied = False
        self._datasets: Dict[str, Dataset] = {}
        self._block_cut_trees: Dict[str, BlockCutTree] = {}
        self._ground_truth_cache = GroundTruthCache()
        self._whole_network_cache: Dict[Tuple[str, str, float], BaselineResult] = {}
        self._full_saphyra_cache: Dict[Tuple[str, float], "SaPHyRaAsBaseline"] = {}

    def _apply_backend_config(self) -> None:
        """Apply an explicit ``config.backend`` choice, once, lazily.

        Mirrors the CLI's --backend flag: process-wide and sticky
        (``set_default_backend(None)`` hands control back to
        ``REPRO_BACKEND``).  Backends are bit-identical, so this knob
        never changes results — only wall-clock time.
        """
        if self._backend_applied or self.config.backend is None:
            return
        from repro.graphs.csr import set_default_backend

        set_default_backend(self.config.backend)
        self._backend_applied = True

    def _apply_start_method_config(self) -> None:
        """Apply an explicit ``config.start_method`` choice, once, lazily.

        Same lifecycle as the knobs below (process-wide, sticky, mirrored
        into ``REPRO_START_METHOD`` so nested tooling agrees;
        ``set_default_start_method(None)`` hands control back to the
        environment).  The worker pool is bit-identical under every start
        method, so this knob never changes results.
        """
        if self._start_method_applied or self.config.start_method is None:
            return
        from repro.parallel import set_default_start_method

        set_default_start_method(self.config.start_method)
        self._start_method_applied = True

    def _apply_dag_cache_config(self) -> None:
        """Apply an explicit ``config.dag_cache`` choice, once, lazily.

        Mirrors the CLI's --dag-cache flag: the choice overrides
        ``REPRO_DAG_CACHE`` for the whole run (results are identical either
        way; only wall-clock time changes).  Applied on first actual work —
        not in the constructor — so merely building or inspecting a runner
        flips nothing.  The override is process-wide and outlives this
        runner; call ``set_dag_cache_enabled(None)`` to hand control back
        to the environment.
        """
        if self._dag_cache_applied or self.config.dag_cache is None:
            return
        from repro.engine import set_dag_cache_enabled

        set_dag_cache_enabled(self.config.dag_cache)
        self._dag_cache_applied = True

    def _apply_dag_cache_bounds_config(self) -> None:
        """Apply explicit ``config.dag_cache_size``/``dag_cache_budget``.

        Same lifecycle as the on/off knob above: process-wide, sticky,
        mirrored into ``REPRO_DAG_CACHE_SIZE`` / ``REPRO_DAG_CACHE_BUDGET``
        so spawned workers agree; ``set_default_dag_cache_size(None)`` /
        ``set_default_dag_cache_budget(None)`` hand control back to the
        environment.  Cache bounds never change results — only how many
        traversals are recomputed.
        """
        if self._dag_cache_bounds_applied:
            return
        if self.config.dag_cache_size is None and self.config.dag_cache_budget is None:
            return
        from repro.engine import (
            set_default_dag_cache_budget,
            set_default_dag_cache_size,
        )

        if self.config.dag_cache_size is not None:
            set_default_dag_cache_size(self.config.dag_cache_size)
        if self.config.dag_cache_budget is not None:
            set_default_dag_cache_budget(self.config.dag_cache_budget)
        self._dag_cache_bounds_applied = True

    def _apply_dag_cache_delta_config(self) -> None:
        """Apply explicit ``config.dag_cache_delta``/``delta_journal_size``.

        Same lifecycle as the cache bounds above: process-wide, sticky,
        mirrored into ``REPRO_DAG_CACHE_DELTA`` / ``REPRO_DELTA_JOURNAL_SIZE``
        so spawned workers agree; passing ``None`` to the setters hands
        control back to the environment.  Delta invalidation only retains
        cached work it can prove untouched, so the knob never changes
        results — only wall-clock time on mutating graphs.
        """
        if self._dag_cache_delta_applied:
            return
        if (
            self.config.dag_cache_delta is None
            and self.config.delta_journal_size is None
        ):
            return
        from repro.engine import (
            set_default_dag_cache_delta,
            set_default_delta_journal_size,
        )

        if self.config.dag_cache_delta is not None:
            set_default_dag_cache_delta(self.config.dag_cache_delta)
        if self.config.delta_journal_size is not None:
            set_default_delta_journal_size(self.config.delta_journal_size)
        self._dag_cache_delta_applied = True

    def _apply_shared_memory_config(self) -> None:
        """Apply an explicit ``config.shared_memory`` choice, once, lazily.

        Same lifecycle as the DAG-cache knob above: process-wide, sticky,
        mirrored into ``REPRO_SHARED_MEMORY`` so spawned workers agree;
        call ``set_shared_memory_enabled(None)`` to hand control back to
        the environment.  Results are identical either way — the handoff
        only changes how the CSR arrays reach the workers.
        """
        if self._shared_memory_applied or self.config.shared_memory is None:
            return
        from repro.parallel import set_shared_memory_enabled

        set_shared_memory_enabled(self.config.shared_memory)
        self._shared_memory_applied = True

    def _apply_weighted_config(self) -> None:
        """Apply an explicit ``config.weighted`` choice, once, lazily.

        Same lifecycle as the knobs above (process-wide, sticky, mirrored
        into ``REPRO_WEIGHTED``; ``set_default_weighted(None)`` hands
        control back to the environment) — but unlike them this knob
        selects the *workload*: weighted runs rank weight-minimal shortest
        paths, so their results legitimately differ from hop-based runs.
        """
        if self._weighted_applied or self.config.weighted is None:
            return
        from repro.graphs.sssp import set_default_weighted

        set_default_weighted(self.config.weighted)
        self._weighted_applied = True

    def _apply_sssp_kernel_config(self) -> None:
        """Apply an explicit ``config.sssp_kernel`` choice, once, lazily.

        Same lifecycle as the knobs above (process-wide, sticky, mirrored
        into ``REPRO_SSSP_KERNEL``; ``set_default_sssp_kernel(None)``
        hands control back to the environment).  The Dijkstra and
        delta-stepping kernels are bit-identical, so this knob — like the
        worker count — never changes results, only wall-clock time.
        """
        if self._sssp_kernel_applied or self.config.sssp_kernel is None:
            return
        from repro.graphs.sssp import set_default_sssp_kernel

        set_default_sssp_kernel(self.config.sssp_kernel)
        self._sssp_kernel_applied = True

    def _apply_compiled_config(self) -> None:
        """Apply an explicit ``config.compiled`` choice, once, lazily.

        Same lifecycle as the knobs above (process-wide, sticky, mirrored
        into ``REPRO_COMPILED``; ``set_default_compiled(None)`` hands
        control back to the environment).  The jitted loops are
        structurally identical to the pure-Python ones, so the tier never
        changes results; ``"on"`` raises here when numba is missing
        rather than silently degrading.
        """
        if self._compiled_applied or self.config.compiled is None:
            return
        from repro.graphs.compiled import set_default_compiled

        set_default_compiled(self.config.compiled)
        self._compiled_applied = True

    def _apply_snapshot_config(self) -> None:
        """Apply explicit ``config.snapshot_dir``/``mmap`` choices, once.

        Same lifecycle as the knobs above (process-wide, sticky, mirrored
        into ``REPRO_SNAPSHOT_DIR`` / ``REPRO_MMAP`` so spawned workers
        attach the same store the same way; passing ``None`` to the
        setters hands control back to the environment).  Snapshots are
        byte-identical to freshly built graphs, so neither knob changes
        results — only cold-start time and memory footprint.
        """
        if self._snapshot_applied:
            return
        if self.config.snapshot_dir is None and self.config.mmap is None:
            return
        from repro.graphs.store import set_default_mmap, set_default_snapshot_dir

        if self.config.snapshot_dir is not None:
            set_default_snapshot_dir(self.config.snapshot_dir)
        if self.config.mmap is not None:
            set_default_mmap(self.config.mmap)
        self._snapshot_applied = True

    # ------------------------------------------------------------------
    # Cached resources
    # ------------------------------------------------------------------
    def dataset(self, name: str) -> Dataset:
        """Load (and cache) a dataset at the configured scale."""
        self._apply_backend_config()
        self._apply_start_method_config()
        self._apply_dag_cache_config()
        self._apply_dag_cache_bounds_config()
        self._apply_dag_cache_delta_config()
        self._apply_shared_memory_config()
        self._apply_weighted_config()
        self._apply_sssp_kernel_config()
        self._apply_compiled_config()
        self._apply_snapshot_config()
        if name not in self._datasets:
            self._datasets[name] = load(
                name, scale=self.config.scale, seed=self.config.seed
            )
        return self._datasets[name]

    def block_cut_tree(self, name: str) -> BlockCutTree:
        """The block-cut tree of a dataset's graph (built once)."""
        if name not in self._block_cut_trees:
            self._block_cut_trees[name] = build_block_cut_tree(self.dataset(name).graph)
        return self._block_cut_trees[name]

    def ground_truth(self, name: str) -> Dict[Node, float]:
        """Exact betweenness of every node of the dataset (computed once)."""
        key = f"{name}@{self.config.scale}#{self.config.seed}"
        return self._ground_truth_cache.get(
            key, self.dataset(name).graph, workers=self.config.workers
        )

    def subsets(
        self, name: str, size: int, count: int, *, seed_offset: int = 0
    ) -> List[List[Node]]:
        """Deterministic random target subsets for a dataset."""
        rng = ensure_rng(self.config.seed + 1000 * seed_offset + _stable_hash(name) % 1000)
        graph = self.dataset(name).graph
        size = min(size, graph.number_of_nodes())
        return [random_subset(graph, size, rng) for _ in range(count)]

    # ------------------------------------------------------------------
    # Algorithm execution
    # ------------------------------------------------------------------
    def whole_network_estimate(
        self, algorithm: str, name: str, epsilon: float
    ) -> BaselineResult:
        """Run a whole-network estimator once per (dataset, epsilon)."""
        key = (algorithm, name, epsilon)
        if key not in self._whole_network_cache:
            graph = self.dataset(name).graph
            seed = self.config.seed + _stable_hash(f"{algorithm}|{name}|{epsilon}") % 100_000
            if algorithm == "abra":
                estimator = ABRA(
                    epsilon,
                    self.config.delta,
                    seed=seed,
                    max_samples_cap=self.config.max_samples_cap,
                    workers=self.config.workers,
                )
                result = estimator.estimate(graph)
            elif algorithm == "kadabra":
                estimator = KADABRA(
                    epsilon,
                    self.config.delta,
                    seed=seed,
                    max_samples_cap=self.config.max_samples_cap,
                    workers=self.config.workers,
                )
                result = estimator.estimate(graph)
            elif algorithm == "saphyra_full":
                result = self._run_saphyra(name, None, epsilon, seed).as_baseline()
            else:
                raise ValueError(f"unknown whole-network algorithm {algorithm!r}")
            self._whole_network_cache[key] = result
        return self._whole_network_cache[key]

    def _run_saphyra(
        self,
        name: str,
        targets: Optional[Sequence[Node]],
        epsilon: float,
        seed: int,
    ) -> "SaPHyRaAsBaseline":
        graph = self.dataset(name).graph
        bct = self.block_cut_tree(name)
        algorithm = SaPHyRaBC(
            epsilon,
            self.config.delta,
            seed=seed,
            max_samples_cap=self.config.max_samples_cap,
            workers=self.config.workers,
        )
        result = algorithm.rank(graph, targets, block_cut_tree=bct)
        return SaPHyRaAsBaseline(result)

    def subset_estimate(
        self,
        algorithm: str,
        name: str,
        targets: Sequence[Node],
        epsilon: float,
        *,
        run_index: int = 0,
    ) -> Tuple[Mapping[Node, float], float, int]:
        """Return ``(scores over targets, wall time, num samples)``.

        For whole-network algorithms the (cached) global estimate is
        projected onto the subset and the time reported is the global
        estimation time — exactly how the paper charges them, since they
        cannot restrict their work to a subset.
        """
        if algorithm in ("abra", "kadabra", "saphyra_full"):
            result = self.whole_network_estimate(algorithm, name, epsilon)
            return (
                result.subset_scores(targets),
                result.wall_time_seconds,
                result.num_samples,
            )
        if algorithm == "saphyra":
            seed = self.config.seed + 13 * run_index + 7919 * int(1000 * epsilon)
            run = self._run_saphyra(name, targets, epsilon, seed)
            return run.result.scores, run.result.wall_time_seconds, run.result.num_samples
        raise ValueError(f"unknown algorithm {algorithm!r}")

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate_subset(
        self,
        name: str,
        algorithm: str,
        epsilon: float,
        targets: Sequence[Node],
        subset_index: int,
    ) -> SubsetEvaluation:
        """Run one algorithm on one subset and compute every metric."""
        truth_all = self.ground_truth(name)
        truth = {node: truth_all[node] for node in targets}
        scores, wall_time, num_samples = self.subset_estimate(
            algorithm, name, targets, epsilon, run_index=subset_index
        )
        zeros = classify_zeros(truth, scores)
        return SubsetEvaluation(
            dataset=name,
            algorithm=algorithm,
            epsilon=epsilon,
            subset_index=subset_index,
            subset_size=len(targets),
            spearman=spearman_rank_correlation(truth, scores),
            kendall=kendall_tau(truth, scores),
            max_abs_error=max(abs(truth[n] - scores.get(n, 0.0)) for n in truth),
            wall_time_seconds=wall_time,
            num_samples=num_samples,
            true_zero_fraction=zeros.true_zero_fraction,
            false_zero_fraction=zeros.false_zero_fraction,
        )

    def epsilon_sweep(
        self,
        *,
        datasets: Optional[Sequence[str]] = None,
        algorithms: Optional[Sequence[str]] = None,
    ) -> List[EpsilonSweepRow]:
        """The Fig. 3 / Fig. 4 workload: epsilon grid x datasets x algorithms."""
        datasets = list(datasets if datasets is not None else self.config.datasets)
        algorithms = list(
            algorithms if algorithms is not None else self.config.algorithms
        )
        rows: List[EpsilonSweepRow] = []
        for name in datasets:
            subsets = self.subsets(
                name, self.config.subset_size, self.config.num_subsets
            )
            for epsilon in self.config.epsilon_grid():
                for algorithm in algorithms:
                    evaluations = [
                        self.evaluate_subset(name, algorithm, epsilon, subset, index)
                        for index, subset in enumerate(subsets)
                    ]
                    spearmans = [e.spearman for e in evaluations]
                    ci_low, ci_high = _confidence_interval(spearmans)
                    rows.append(
                        EpsilonSweepRow(
                            dataset=name,
                            algorithm=algorithm,
                            epsilon=epsilon,
                            mean_time_seconds=statistics.fmean(
                                e.wall_time_seconds for e in evaluations
                            ),
                            mean_spearman=statistics.fmean(spearmans),
                            spearman_ci_low=ci_low,
                            spearman_ci_high=ci_high,
                            mean_samples=statistics.fmean(
                                e.num_samples for e in evaluations
                            ),
                            num_subsets=len(evaluations),
                        )
                    )
        return rows


@dataclass
class SaPHyRaAsBaseline:
    """Adapter giving a SaPHyRa_bc run the whole-network baseline interface."""

    result: "object"  # BCRankingResult

    def as_baseline(self) -> BaselineResult:
        return BaselineResult(
            algorithm="saphyra_full",
            scores=dict(self.result.scores),
            num_samples=self.result.num_samples,
            epsilon=self.result.epsilon,
            delta=self.result.delta,
            converged_by=self.result.converged_by,
            wall_time_seconds=self.result.wall_time_seconds,
        )
