"""Experiment harness: regenerates every table and figure of the paper.

Each driver takes an :class:`~repro.experiments.config.ExperimentConfig`
(default: a laptop-scale configuration) and returns plain data structures
that the text renderers in :mod:`repro.experiments.report` turn into the
tables / series the paper reports.  The ``benchmarks/`` directory exposes
one pytest-benchmark target per driver.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import (
    figure3_running_time,
    figure4_rank_correlation,
    figure5_subset_size,
    figure6_relative_error,
    figure7_road_case_study,
)
from repro.experiments.persistence import (
    load_rows_json,
    save_rows_csv,
    save_rows_json,
)
from repro.experiments.report import render_series, render_table
from repro.experiments.runner import EpsilonSweepRow, ExperimentRunner
from repro.experiments.tables import (
    table1_vc_bounds,
    table2_networks,
    table3_subsets,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentRunner",
    "EpsilonSweepRow",
    "figure3_running_time",
    "figure4_rank_correlation",
    "figure5_subset_size",
    "figure6_relative_error",
    "figure7_road_case_study",
    "table1_vc_bounds",
    "table2_networks",
    "table3_subsets",
    "render_table",
    "render_series",
    "save_rows_json",
    "save_rows_csv",
    "load_rows_json",
]
