"""Figure drivers: one function per figure of the paper's evaluation.

Every function returns plain data (lists of dataclass rows / dictionaries)
so the benchmarks can both print them and make structural assertions
("SaPHyRa's rank correlation >= KADABRA's") without any plotting dependency.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.datasets.subsets import road_areas
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    ALGORITHM_LABELS,
    EpsilonSweepRow,
    ExperimentRunner,
    SubsetEvaluation,
)
from repro.metrics.deviation import average_rank_deviation
from repro.metrics.rank_correlation import spearman_rank_correlation
from repro.metrics.zeros import classify_zeros, relative_error_histogram

Node = Hashable


# ----------------------------------------------------------------------
# Fig. 3 and Fig. 4: running time / rank correlation vs epsilon
# ----------------------------------------------------------------------
def epsilon_sweep(
    config: Optional[ExperimentConfig] = None,
    runner: Optional[ExperimentRunner] = None,
) -> List[EpsilonSweepRow]:
    """The shared sweep behind Figs. 3 and 4."""
    runner = runner if runner is not None else ExperimentRunner(config)
    return runner.epsilon_sweep()


def figure3_running_time(
    config: Optional[ExperimentConfig] = None,
    rows: Optional[List[EpsilonSweepRow]] = None,
) -> Dict[str, Dict[str, List[Tuple[float, float]]]]:
    """Fig. 3: running time (seconds) per dataset, algorithm and epsilon.

    Returns ``{dataset: {algorithm label: [(epsilon, seconds), ...]}}`` with
    epsilon descending, i.e. one series per curve of the figure.
    """
    rows = rows if rows is not None else epsilon_sweep(config)
    series: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    for row in rows:
        label = ALGORITHM_LABELS[row.algorithm]
        series.setdefault(row.dataset, {}).setdefault(label, []).append(
            (row.epsilon, row.mean_time_seconds)
        )
    return series


def figure4_rank_correlation(
    config: Optional[ExperimentConfig] = None,
    rows: Optional[List[EpsilonSweepRow]] = None,
) -> Dict[str, Dict[str, List[Tuple[float, float, float, float]]]]:
    """Fig. 4: Spearman correlation (with 95% CI) per dataset/algorithm/epsilon.

    Returns ``{dataset: {algorithm label: [(epsilon, mean, ci_low, ci_high)]}}``.
    """
    rows = rows if rows is not None else epsilon_sweep(config)
    series: Dict[str, Dict[str, List[Tuple[float, float, float, float]]]] = {}
    for row in rows:
        label = ALGORITHM_LABELS[row.algorithm]
        series.setdefault(row.dataset, {}).setdefault(label, []).append(
            (row.epsilon, row.mean_spearman, row.spearman_ci_low, row.spearman_ci_high)
        )
    return series


# ----------------------------------------------------------------------
# Fig. 5: rank correlation vs subset size (fixed epsilon)
# ----------------------------------------------------------------------
@dataclass
class SubsetSizeRow:
    """One (dataset, algorithm, subset size) cell of Fig. 5."""

    dataset: str
    algorithm: str
    subset_size: int
    mean_spearman: float
    spearman_ci_low: float
    spearman_ci_high: float


def figure5_subset_size(
    config: Optional[ExperimentConfig] = None,
    *,
    epsilon: float = 0.05,
    runner: Optional[ExperimentRunner] = None,
) -> List[SubsetSizeRow]:
    """Fig. 5: rank correlation at fixed ``epsilon`` for varying subset sizes."""
    runner = runner if runner is not None else ExperimentRunner(config)
    config = runner.config
    rows: List[SubsetSizeRow] = []
    for name in config.datasets:
        for size in config.subset_sizes:
            subsets = runner.subsets(
                name, size, config.num_subsets, seed_offset=size
            )
            for algorithm in config.algorithms:
                evaluations = [
                    runner.evaluate_subset(name, algorithm, epsilon, subset, index)
                    for index, subset in enumerate(subsets)
                ]
                spearmans = [e.spearman for e in evaluations]
                mean = statistics.fmean(spearmans)
                if len(spearmans) > 1:
                    half = 1.96 * statistics.stdev(spearmans) / len(spearmans) ** 0.5
                else:
                    half = 0.0
                rows.append(
                    SubsetSizeRow(
                        dataset=name,
                        algorithm=algorithm,
                        subset_size=size,
                        mean_spearman=mean,
                        spearman_ci_low=mean - half,
                        spearman_ci_high=mean + half,
                    )
                )
    return rows


# ----------------------------------------------------------------------
# Fig. 6: signed relative error histogram, true/false zeros
# ----------------------------------------------------------------------
@dataclass
class RelativeErrorRow:
    """Fig. 6 content for one (dataset, algorithm) pair."""

    dataset: str
    algorithm: str
    epsilon: float
    true_zero_percent: float
    false_zero_percent: float
    histogram: List[Tuple[str, float]]


def figure6_relative_error(
    config: Optional[ExperimentConfig] = None,
    *,
    epsilon: float = 0.05,
    runner: Optional[ExperimentRunner] = None,
) -> List[RelativeErrorRow]:
    """Fig. 6: relative-error distribution with the true/false zero split."""
    runner = runner if runner is not None else ExperimentRunner(config)
    config = runner.config
    rows: List[RelativeErrorRow] = []
    for name in config.datasets:
        truth_all = runner.ground_truth(name)
        subsets = runner.subsets(name, config.subset_size, config.num_subsets)
        for algorithm in config.algorithms:
            truth: Dict[Node, float] = {}
            estimate: Dict[Node, float] = {}
            for index, subset in enumerate(subsets):
                scores, _, _ = runner.subset_estimate(
                    algorithm, name, subset, epsilon, run_index=index
                )
                for node in subset:
                    truth[node] = truth_all[node]
                    estimate[node] = scores.get(node, 0.0)
            zeros = classify_zeros(truth, estimate)
            rows.append(
                RelativeErrorRow(
                    dataset=name,
                    algorithm=algorithm,
                    epsilon=epsilon,
                    true_zero_percent=100.0 * zeros.true_zero_fraction,
                    false_zero_percent=100.0 * zeros.false_zero_fraction,
                    histogram=relative_error_histogram(truth, estimate),
                )
            )
    return rows


# ----------------------------------------------------------------------
# Fig. 7 / Table III: USA-road case study
# ----------------------------------------------------------------------
@dataclass
class RoadAreaRow:
    """Fig. 7 content for one algorithm on one geographic area."""

    area: str
    algorithm: str
    num_nodes: int
    running_time_seconds: float
    spearman: float
    rank_deviation_percent: float


def figure7_road_case_study(
    config: Optional[ExperimentConfig] = None,
    *,
    epsilon: float = 0.05,
    dataset: str = "usa-road",
    algorithms: Sequence[str] = ("kadabra", "saphyra_full", "saphyra"),
    runner: Optional[ExperimentRunner] = None,
) -> List[RoadAreaRow]:
    """Fig. 7: per-area running time, rank quality and rank deviation.

    ABRA is omitted by default, mirroring the paper ("ABRA cannot finish in
    10 hours" on USA-road); pass it explicitly to include it anyway.
    """
    runner = runner if runner is not None else ExperimentRunner(config)
    data = runner.dataset(dataset)
    if data.coordinates is None:
        raise ValueError(f"dataset {dataset!r} has no coordinates")
    areas = road_areas(data.coordinates, graph=data.graph)
    truth_all = runner.ground_truth(dataset)
    rows: List[RoadAreaRow] = []
    for area_name, nodes in sorted(areas.items(), key=lambda item: len(item[1])):
        truth = {node: truth_all[node] for node in nodes}
        for algorithm in algorithms:
            scores, wall_time, _ = runner.subset_estimate(
                algorithm, dataset, nodes, epsilon, run_index=len(rows)
            )
            rows.append(
                RoadAreaRow(
                    area=area_name,
                    algorithm=algorithm,
                    num_nodes=len(nodes),
                    running_time_seconds=wall_time,
                    spearman=spearman_rank_correlation(truth, scores),
                    rank_deviation_percent=average_rank_deviation(truth, scores),
                )
            )
    return rows
