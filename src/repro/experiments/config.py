"""Experiment configuration.

The paper's full-size settings (1000 random subsets on million-node graphs,
epsilon down to 0.01) are out of reach for pure Python; the default
configuration keeps the same *structure* — the same epsilon grid, the same
subset sizes, the same four networks — at a scale where the whole suite runs
in minutes.  Every knob can be turned up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple


@dataclass
class ExperimentConfig:
    """Knobs shared by all experiment drivers.

    Attributes
    ----------
    datasets:
        Dataset registry names to evaluate on.
    scale:
        Size multiplier passed to :func:`repro.datasets.load`.
    seed:
        Master seed; every driver derives per-run seeds from it.
    epsilons:
        The epsilon grid of Figs. 3-4.
    delta:
        Failure probability (0.01 in the paper).
    subset_size:
        Target-subset size for the epsilon sweep (100 in the paper).
    num_subsets:
        Number of random subsets per configuration (1000 in the paper; the
        default here keeps the confidence-interval structure with far fewer).
    subset_sizes:
        The subset-size grid of Fig. 5.
    algorithms:
        Algorithms to include: any of ``"abra"``, ``"kadabra"``,
        ``"saphyra_full"``, ``"saphyra"``.
    max_samples_cap:
        Hard cap on per-run sample counts, keeping worst-case bench times
        bounded (``None`` disables the cap).
    backend:
        Traversal backend for the whole run: ``"auto"`` (CSR when numpy is
        importable), ``"csr"`` or ``"dict"``; ``None`` (default) leaves the
        ``REPRO_BACKEND`` environment variable in charge.  Applied lazily
        via :func:`repro.graphs.csr.set_default_backend` (process-wide,
        sticky).  Backends are bit-identical, so this knob never changes
        results — only wall-clock time.
    workers:
        Worker processes forwarded to every estimator and the ground-truth
        computation (``None`` resolves via ``REPRO_WORKERS``, 0 = serial).
        Worker counts never change results — only wall-clock time.
    start_method:
        Multiprocessing start method for the worker pool: ``"fork"``,
        ``"spawn"`` or ``"forkserver"``; ``None`` (default) leaves the
        ``REPRO_START_METHOD`` environment variable in charge.  Applied
        lazily via :func:`repro.parallel.set_default_start_method`
        (process-wide, sticky, mirrored into the environment); never
        changes results.
    dag_cache:
        Force the cross-sample source-DAG cache on (``True``) or off
        (``False``) for the whole experiment run; ``None`` (default) leaves
        the ``REPRO_DAG_CACHE`` environment variable in charge.  Like the
        worker count, the cache never changes results.  An explicit choice
        is applied (lazily, when the runner first does real work) via
        :func:`repro.engine.set_dag_cache_enabled`, which is **process-wide
        and sticky**: it mirrors into ``REPRO_DAG_CACHE`` so spawned
        workers agree, and it stays in force after the runner finishes
        until ``set_dag_cache_enabled(None)`` restores the environment.
    dag_cache_size:
        Per-graph LRU entry bound for the source-DAG cache (``None`` leaves
        ``REPRO_DAG_CACHE_SIZE`` / the built-in default in charge).  Applied
        lazily via :func:`repro.engine.set_default_dag_cache_size`
        (process-wide, sticky, mirrored into the environment); caches never
        change results.
    dag_cache_budget:
        Per-graph estimated-element budget for the source-DAG cache
        (``None`` leaves ``REPRO_DAG_CACHE_BUDGET`` / the built-in default
        in charge).  Applied lazily via
        :func:`repro.engine.set_default_dag_cache_budget` (process-wide,
        sticky, mirrored into the environment).
    dag_cache_delta:
        Delta cache invalidation for mutating graphs: ``"auto"`` (validate
        cached entries against the mutation journal, wholesale past a size
        limit; the built-in default), ``"on"`` (always validate) or
        ``"off"`` (journal disabled — the historical wholesale eviction);
        ``None`` (default) leaves the ``REPRO_DAG_CACHE_DELTA``
        environment variable in charge.  Applied lazily via
        :func:`repro.engine.set_default_dag_cache_delta` (process-wide,
        sticky, mirrored into the environment).  Retention is only
        claimed when provably safe, so this never changes results — only
        wall-clock time on mutate-then-requery workloads.
    delta_journal_size:
        Per-graph mutation-journal cap (``None`` leaves
        ``REPRO_DELTA_JOURNAL_SIZE`` / the built-in default of 256 in
        charge).  Applied lazily via
        :func:`repro.engine.set_default_delta_journal_size` (process-wide,
        sticky, mirrored into the environment); overflow degrades to
        wholesale eviction, never wrong answers.
    shared_memory:
        Force the zero-copy shared-memory CSR handoff to worker processes
        on (``True``) or off (``False``, the pickle payload) for the whole
        run; ``None`` (default) leaves the ``REPRO_SHARED_MEMORY``
        environment variable in charge.  Like ``dag_cache`` the choice is
        applied lazily via
        :func:`repro.parallel.set_shared_memory_enabled` (process-wide,
        sticky, mirrored into the environment) and never changes results —
        workers see the same CSR arrays bit for bit.
    weighted:
        Weighted SSSP routing for the whole run: ``"auto"`` (use edge
        weights iff the graph has them), ``"on"`` (force the Dijkstra
        engine) or ``"off"`` (hop distances); ``None`` (default) leaves
        the ``REPRO_WEIGHTED`` environment variable in charge.  Applied
        lazily via :func:`repro.graphs.sssp.set_default_weighted`
        (process-wide, sticky, mirrored into the environment).  Unlike the
        knobs above this one *selects the workload* — weighted and
        unweighted runs rank different shortest paths.
    sssp_kernel:
        Weighted SSSP execution kernel for the whole run: ``"auto"``
        (delta-stepping for batched sweeps, Dijkstra for single-source
        calls), ``"dijkstra"`` or ``"delta"``; ``None`` (default) leaves
        the ``REPRO_SSSP_KERNEL`` environment variable in charge.
        Applied lazily via
        :func:`repro.graphs.sssp.set_default_sssp_kernel` (process-wide,
        sticky, mirrored into the environment).  The kernels are
        bit-identical, so like ``workers`` this knob never changes
        results — only wall-clock time.
    compiled:
        Compiled (numba) kernel tier: ``"auto"`` (use numba iff
        importable), ``"on"`` (require numba — raises when missing) or
        ``"off"`` (pure-Python loops); ``None`` (default) leaves the
        ``REPRO_COMPILED`` environment variable in charge.  Applied
        lazily via :func:`repro.graphs.compiled.set_default_compiled`
        (process-wide, sticky, mirrored into the environment); never
        changes results.
    snapshot_dir:
        On-disk CSR snapshot store directory for the whole run: datasets
        are memoised to ``<dir>/datasets`` and exact ground truth persists
        content-addressed in ``<dir>/ground_truth``, so repeat runs skip
        graph generation and Brandes; ``None`` (default) leaves the
        ``REPRO_SNAPSHOT_DIR`` environment variable (or no store) in
        charge.  Applied lazily via
        :func:`repro.graphs.store.set_default_snapshot_dir` (process-wide,
        sticky, mirrored into the environment); never changes results,
        only cold-start time.
    mmap:
        How snapshot files are attached: ``"auto"`` (read-only
        ``np.memmap`` views when numpy is available), ``"on"`` (same,
        asserting intent) or ``"off"`` (read arrays into RAM); ``None``
        (default) leaves the ``REPRO_MMAP`` environment variable in
        charge.  Applied lazily via
        :func:`repro.graphs.store.set_default_mmap` (process-wide, sticky,
        mirrored into the environment).  Mapped and in-RAM arrays are
        byte-identical — never changes results, only memory footprint.
    """

    datasets: Sequence[str] = ("flickr", "livejournal", "usa-road", "orkut")
    scale: float = 0.25
    seed: int = 7
    epsilons: Sequence[float] = (0.2, 0.1, 0.05)
    delta: float = 0.01
    subset_size: int = 50
    num_subsets: int = 3
    subset_sizes: Sequence[int] = (10, 25, 50, 75, 100)
    algorithms: Sequence[str] = ("abra", "kadabra", "saphyra_full", "saphyra")
    max_samples_cap: int = 20_000
    backend: Optional[str] = None
    workers: Optional[int] = None
    start_method: Optional[str] = None
    dag_cache: Optional[bool] = None
    dag_cache_size: Optional[int] = None
    dag_cache_budget: Optional[int] = None
    dag_cache_delta: Optional[str] = None
    delta_journal_size: Optional[int] = None
    shared_memory: Optional[bool] = None
    weighted: Optional[str] = None
    sssp_kernel: Optional[str] = None
    compiled: Optional[str] = None
    snapshot_dir: Optional[str] = None
    mmap: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError(f"scale must be > 0, got {self.scale}")
        if self.subset_size < 2:
            raise ValueError(f"subset_size must be >= 2, got {self.subset_size}")
        if self.num_subsets < 1:
            raise ValueError(f"num_subsets must be >= 1, got {self.num_subsets}")
        if not self.epsilons:
            raise ValueError("epsilons must not be empty")
        unknown = set(self.algorithms) - {"abra", "kadabra", "saphyra_full", "saphyra"}
        if unknown:
            raise ValueError(f"unknown algorithms: {sorted(unknown)}")
        if self.backend is not None and self.backend not in ("auto", "csr", "dict"):
            raise ValueError(
                f"backend must be None, 'auto', 'csr' or 'dict', got {self.backend!r}"
            )
        if self.workers is not None and self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.start_method is not None and self.start_method not in (
            "fork",
            "spawn",
            "forkserver",
        ):
            raise ValueError(
                f"start_method must be None, 'fork', 'spawn' or 'forkserver', "
                f"got {self.start_method!r}"
            )
        for name in ("dag_cache_size", "dag_cache_budget", "delta_journal_size"):
            value = getattr(self, name)
            if value is not None and (isinstance(value, bool) or value < 1):
                raise ValueError(f"{name} must be None or >= 1, got {value!r}")
        if self.dag_cache_delta is not None and self.dag_cache_delta not in (
            "auto",
            "on",
            "off",
        ):
            raise ValueError(
                f"dag_cache_delta must be None, 'auto', 'on' or 'off', "
                f"got {self.dag_cache_delta!r}"
            )
        if self.weighted is not None and self.weighted not in ("auto", "on", "off"):
            raise ValueError(
                f"weighted must be None, 'auto', 'on' or 'off', got {self.weighted!r}"
            )
        if self.sssp_kernel is not None and self.sssp_kernel not in (
            "auto",
            "dijkstra",
            "delta",
        ):
            raise ValueError(
                f"sssp_kernel must be None, 'auto', 'dijkstra' or 'delta', "
                f"got {self.sssp_kernel!r}"
            )
        if self.compiled is not None and self.compiled not in ("auto", "on", "off"):
            raise ValueError(
                f"compiled must be None, 'auto', 'on' or 'off', got {self.compiled!r}"
            )
        if self.snapshot_dir is not None and not str(self.snapshot_dir).strip():
            raise ValueError(
                f"snapshot_dir must be None or a non-empty path, got {self.snapshot_dir!r}"
            )
        if self.mmap is not None and self.mmap not in ("auto", "on", "off"):
            raise ValueError(
                f"mmap must be None, 'auto', 'on' or 'off', got {self.mmap!r}"
            )

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def smoke(cls) -> "ExperimentConfig":
        """Seconds-scale configuration used by the test suite."""
        return cls(
            datasets=("flickr",),
            scale=0.1,
            epsilons=(0.2, 0.1),
            subset_size=20,
            num_subsets=2,
            subset_sizes=(10, 20),
            max_samples_cap=2_000,
        )

    @classmethod
    def default(cls) -> "ExperimentConfig":
        """The minutes-scale configuration the benchmarks use."""
        return cls()

    @classmethod
    def paper(cls) -> "ExperimentConfig":
        """The paper's parameter grid (hours-scale in pure Python).

        Same epsilon grid, subset size and delta as Section V; the graphs are
        still surrogates and the number of random subsets is 100 rather than
        1000 to stay within a single-machine budget.
        """
        return cls(
            scale=1.0,
            epsilons=(0.2, 0.1, 0.05, 0.02, 0.01),
            subset_size=100,
            num_subsets=100,
            subset_sizes=tuple(range(10, 101, 10)),
            max_samples_cap=None,
        )

    def epsilon_grid(self) -> Tuple[float, ...]:
        """The epsilon values, largest first (cheapest runs first)."""
        return tuple(sorted(self.epsilons, reverse=True))
