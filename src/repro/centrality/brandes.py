"""Exact betweenness centrality via Brandes' algorithm (ground truth).

The paper normalises betweenness by ``n (n - 1)`` over *ordered* node pairs
(Eq. 3)::

    bc(v) = 1 / (n (n-1)) * sum_{s != v != t} sigma_st(v) / sigma_st

On undirected graphs ``sigma_st(v)/sigma_st`` is symmetric in ``(s, t)``, so
the ordered-pair sum equals twice the unordered sum; Brandes' one-pass
dependency accumulation naturally computes the unordered sum, which we double
before normalising.

The exact algorithm is ``O(n m)`` and is only used to produce ground truth on
the (scaled-down) benchmark graphs, exactly as the supercomputer runs in the
paper produced ground truth for the full-size networks.

Both traversal backends are supported (see :mod:`repro.graphs.csr`): the
dict reference below, and a CSR path that runs the identical accumulation
over integer index arrays — the per-node dependencies match bit for bit.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, Optional

from repro.errors import GraphError
from repro.graphs import csr as _csr
from repro.graphs.graph import Graph

Node = Hashable


def single_source_dependencies(
    graph: Graph, source: Node, *, backend: Optional[str] = None
) -> Dict[Node, float]:
    """Brandes' single-source dependency accumulation ``delta_s(v)``.

    ``delta_s(v) = sum_{t != s} sigma_st(v) / sigma_st`` — the total
    contribution of source ``s`` to the (unordered-pair, unnormalised)
    betweenness of every node ``v``.
    """
    if not graph.has_node(source):
        raise GraphError(f"source node {source!r} does not exist")
    if _csr.effective_backend(graph, backend) == _csr.CSR_BACKEND:
        snapshot = _csr.as_csr(graph)
        source_index = snapshot.index[source]
        delta, order, _ = _csr.csr_brandes(snapshot, source_index)
        if _csr.HAS_NUMPY:
            order_list = order.tolist()
            values = delta[order].tolist()
        else:
            order_list = list(order)
            values = [delta[node] for node in order_list]
        labels = snapshot.labels
        return {
            labels[node]: value
            for node, value in zip(order_list, values)
            if node != source_index
        }
    distances: Dict[Node, int] = {source: 0}
    sigma: Dict[Node, float] = {source: 1.0}
    predecessors: Dict[Node, list] = {source: []}
    order = []
    queue = deque([source])
    while queue:
        node = queue.popleft()
        order.append(node)
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                sigma[neighbor] = 0.0
                predecessors[neighbor] = []
                queue.append(neighbor)
            if distances[neighbor] == distances[node] + 1:
                sigma[neighbor] += sigma[node]
                predecessors[neighbor].append(node)
    dependency: Dict[Node, float] = {node: 0.0 for node in order}
    for node in reversed(order):
        for predecessor in predecessors[node]:
            dependency[predecessor] += (
                sigma[predecessor] / sigma[node] * (1.0 + dependency[node])
            )
    dependency.pop(source, None)
    return dependency


def betweenness_centrality(
    graph: Graph, *, normalized: bool = True, backend: Optional[str] = None
) -> Dict[Node, float]:
    """Exact betweenness centrality of every node.

    Parameters
    ----------
    normalized:
        When ``True`` (default) divide by ``n (n - 1)`` as in Eq. 3 of the
        paper; otherwise return the raw ordered-pair path counts.
    backend:
        Traversal backend; the CSR path accumulates dependency arrays
        without building a per-source dict, with bit-identical totals.
    """
    n = graph.number_of_nodes()
    if _csr.effective_backend(graph, backend) == _csr.CSR_BACKEND and n > 0:
        snapshot = _csr.as_csr(graph)
        totals = _accumulate_csr_dependencies(snapshot, range(snapshot.n))
        if normalized and n > 1:
            scale = 1.0 / (n * (n - 1))
            totals = [value * scale for value in totals]
        return {label: totals[i] for i, label in enumerate(snapshot.labels)}
    centrality: Dict[Node, float] = {node: 0.0 for node in graph.nodes()}
    # Summing the single-source dependencies over every source already covers
    # each *ordered* pair (s, t) exactly once, which is what Eq. 3 sums over.
    for source in graph.nodes():
        for node, value in single_source_dependencies(
            graph, source, backend=_csr.DICT_BACKEND
        ).items():
            centrality[node] += value
    if normalized and n > 1:
        scale = 1.0 / (n * (n - 1))
        for node in centrality:
            centrality[node] *= scale
    return centrality


def betweenness_subset(
    graph: Graph,
    targets: Iterable[Node],
    *,
    normalized: bool = True,
    backend: Optional[str] = None,
) -> Dict[Node, float]:
    """Exact betweenness centrality restricted to the nodes in ``targets``.

    The computation still needs the full all-sources pass (the exact value of
    even a single node depends on all shortest paths), so this is a
    convenience filter, not a faster algorithm — the whole point of the paper
    is that *sampling* can focus on a subset while exact computation cannot.
    """
    wanted = set(targets)
    missing = [node for node in wanted if not graph.has_node(node)]
    if missing:
        raise GraphError(f"target nodes not in graph: {missing[:5]!r}")
    full = betweenness_centrality(graph, normalized=normalized, backend=backend)
    return {node: full[node] for node in wanted}


def betweenness_from_pivots(
    graph: Graph,
    pivots: Iterable[Node],
    *,
    normalized: bool = True,
    backend: Optional[str] = None,
) -> Dict[Node, float]:
    """Estimate betweenness from a subset of source pivots (Bader-style).

    Each pivot contributes its single-source dependencies; the result is
    scaled by ``n / #pivots`` to estimate the full sum.  Used by the
    :mod:`repro.baselines.bader` baseline and by tests.
    """
    pivot_list = list(pivots)
    if not pivot_list:
        raise ValueError("at least one pivot is required")
    n = graph.number_of_nodes()
    if _csr.effective_backend(graph, backend) == _csr.CSR_BACKEND:
        snapshot = _csr.as_csr(graph)
        totals = _accumulate_csr_dependencies(
            snapshot, [snapshot.index_of(pivot) for pivot in pivot_list]
        )
        scale = n / len(pivot_list)
        if normalized and n > 1:
            scale /= n * (n - 1)
        return {
            label: totals[i] * scale for i, label in enumerate(snapshot.labels)
        }
    centrality: Dict[Node, float] = {node: 0.0 for node in graph.nodes()}
    for source in pivot_list:
        for node, value in single_source_dependencies(
            graph, source, backend=_csr.DICT_BACKEND
        ).items():
            centrality[node] += value
    # Extrapolate the sum over all n sources (which covers all ordered pairs).
    scale = n / len(pivot_list)
    if normalized and n > 1:
        scale /= n * (n - 1)
    for node in centrality:
        centrality[node] *= scale
    return centrality


def _accumulate_csr_dependencies(snapshot, sources) -> list:
    """Sum ``csr_brandes`` dependency vectors over ``sources``.

    The per-source ``delta[source]`` residue is zeroed before accumulation,
    mirroring the ``dependency.pop(source)`` of the dict implementation, so
    the running totals see exactly the same addition sequence per node.
    """
    if _csr.HAS_NUMPY:
        import numpy as np

        totals = np.zeros(snapshot.n, dtype=np.float64)
        for source in sources:
            delta, _, _ = _csr.csr_brandes(snapshot, source)
            delta[source] = 0.0
            totals += delta
        return totals.tolist()
    totals = [0.0] * snapshot.n
    for source in sources:
        delta, _, _ = _csr.csr_brandes(snapshot, source)
        delta[source] = 0.0
        for node in range(snapshot.n):
            totals[node] += delta[node]
    return totals
