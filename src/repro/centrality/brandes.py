"""Exact betweenness centrality via Brandes' algorithm (ground truth).

The paper normalises betweenness by ``n (n - 1)`` over *ordered* node pairs
(Eq. 3)::

    bc(v) = 1 / (n (n-1)) * sum_{s != v != t} sigma_st(v) / sigma_st

On undirected graphs ``sigma_st(v)/sigma_st`` is symmetric in ``(s, t)``, so
the ordered-pair sum equals twice the unordered sum; Brandes' one-pass
dependency accumulation naturally computes the unordered sum, which we double
before normalising.

The exact algorithm is ``O(n m)`` and is only used to produce ground truth on
the (scaled-down) benchmark graphs, exactly as the supercomputer runs in the
paper produced ground truth for the full-size networks.

Both traversal backends are supported (see :mod:`repro.graphs.csr`): the
dict reference below, and a CSR path that runs the identical accumulation
over integer index arrays — the per-node dependencies match bit for bit.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from repro import parallel as _parallel
from repro.engine.driver import sweep_sources
from repro.errors import GraphError
from repro.graphs import csr as _csr
from repro.graphs import sssp as _sssp
from repro.graphs.graph import Graph

Node = Hashable


def single_source_dependencies(
    graph: Graph,
    source: Node,
    *,
    backend: Optional[str] = None,
    weighted: Optional[str] = None,
) -> Dict[Node, float]:
    """Brandes' single-source dependency accumulation ``delta_s(v)``.

    ``delta_s(v) = sum_{t != s} sigma_st(v) / sigma_st`` — the total
    contribution of source ``s`` to the (unordered-pair, unnormalised)
    betweenness of every node ``v``.  ``weighted`` (see
    :mod:`repro.graphs.sssp`) routes the forward pass through the Dijkstra
    engine: shortest paths are then weight-minimal instead of hop-minimal,
    which is the weighted-betweenness definition.
    """
    if not graph.has_node(source):
        raise GraphError(f"source node {source!r} does not exist")
    if _sssp.effective_weighted(graph, weighted):
        return _weighted_dependencies(graph, source, backend=backend)
    if _csr.effective_backend(graph, backend) == _csr.CSR_BACKEND:
        snapshot = _csr.as_csr(graph)
        source_index = snapshot.index[source]
        delta, order, _ = _csr.csr_brandes(snapshot, source_index)
        if _csr.HAS_NUMPY:
            order_list = order.tolist()
            values = delta[order].tolist()
        else:
            order_list = list(order)
            values = [delta[node] for node in order_list]
        labels = snapshot.labels
        return {
            labels[node]: value
            for node, value in zip(order_list, values)
            if node != source_index
        }
    distances: Dict[Node, int] = {source: 0}
    sigma: Dict[Node, float] = {source: 1.0}
    predecessors: Dict[Node, list] = {source: []}
    order = []
    queue = deque([source])
    while queue:
        node = queue.popleft()
        order.append(node)
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                sigma[neighbor] = 0.0
                predecessors[neighbor] = []
                queue.append(neighbor)
            if distances[neighbor] == distances[node] + 1:
                sigma[neighbor] += sigma[node]
                predecessors[neighbor].append(node)
    dependency: Dict[Node, float] = {node: 0.0 for node in order}
    for node in reversed(order):
        for predecessor in predecessors[node]:
            dependency[predecessor] += (
                sigma[predecessor] / sigma[node] * (1.0 + dependency[node])
            )
    dependency.pop(source, None)
    return dependency


def _weighted_dependencies(
    graph: Graph, source: Node, *, backend: Optional[str]
) -> Dict[Node, float]:
    """Weighted single-source dependencies (Dijkstra forward pass).

    The backward accumulation is Brandes' unchanged: it only consumes the
    DAG (settle order, predecessor lists, float sigma), which the weighted
    engine produces with the same ordering contracts as the BFS — so the
    dict and CSR paths stay bit-identical.
    """
    if _csr.effective_backend(graph, backend) == _csr.CSR_BACKEND:
        snapshot = _csr.as_csr(graph)
        source_index = snapshot.index[source]
        delta, order, _ = _csr.csr_dijkstra_brandes(snapshot, source_index)
        if _csr.HAS_NUMPY:
            order_list = order.tolist()
            values = delta[order].tolist()
        else:
            order_list = list(order)
            values = [delta[node] for node in order_list]
        labels = snapshot.labels
        return {
            labels[node]: value
            for node, value in zip(order_list, values)
            if node != source_index
        }
    from repro.graphs.traversal import dict_dijkstra_dag

    dag = dict_dijkstra_dag(graph, source, float_sigma=True)
    sigma = dag.sigma
    dependency: Dict[Node, float] = {node: 0.0 for node in dag.order}
    for node in reversed(dag.order):
        for predecessor in dag.predecessors[node]:
            dependency[predecessor] += (
                sigma[predecessor] / sigma[node] * (1.0 + dependency[node])
            )
    dependency.pop(source, None)
    return dependency


def betweenness_centrality(
    graph: Graph,
    *,
    normalized: bool = True,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    weighted: Optional[str] = None,
) -> Dict[Node, float]:
    """Exact betweenness centrality of every node.

    Parameters
    ----------
    normalized:
        When ``True`` (default) divide by ``n (n - 1)`` as in Eq. 3 of the
        paper; otherwise return the raw ordered-pair path counts.
    backend:
        Traversal backend; the CSR path runs batched multi-source sweeps
        (:func:`repro.graphs.csr.multi_source_sweep`) instead of per-source
        dicts, with bit-identical totals.
    weighted:
        SSSP engine selection (``None``/``"auto"``/``"on"``/``"off"``; see
        :mod:`repro.graphs.sssp`).  Weighted betweenness counts
        weight-minimal shortest paths; unit-weight graphs under ``"auto"``
        take the exact historical BFS paths.
    workers:
        Worker processes for the all-sources loop (``None`` resolves via
        ``REPRO_WORKERS``).  Each chunk of sources is reduced to one
        dependency partial inside the worker and partials are folded in
        chunk order — the serial path applies the identical chunk-partial
        fold, so any worker count returns bit-identical results while
        shipping O(n) floats per chunk instead of O(chunk x n).
    """
    n = graph.number_of_nodes()
    # Summing the single-source dependencies over every source already covers
    # each *ordered* pair (s, t) exactly once, which is what Eq. 3 sums over.
    centrality = _sum_dependencies(
        graph, list(graph.nodes()), backend=backend, workers=workers,
        weighted=weighted,
    )
    if normalized and n > 1:
        scale = 1.0 / (n * (n - 1))
        for node in centrality:
            centrality[node] *= scale
    return centrality


def betweenness_subset(
    graph: Graph,
    targets: Iterable[Node],
    *,
    normalized: bool = True,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    weighted: Optional[str] = None,
) -> Dict[Node, float]:
    """Exact betweenness centrality restricted to the nodes in ``targets``.

    The computation still needs the full all-sources pass (the exact value of
    even a single node depends on all shortest paths), so this is a
    convenience filter, not a faster algorithm — the whole point of the paper
    is that *sampling* can focus on a subset while exact computation cannot.
    """
    wanted = set(targets)
    missing = [node for node in wanted if not graph.has_node(node)]
    if missing:
        raise GraphError(f"target nodes not in graph: {missing[:5]!r}")
    full = betweenness_centrality(
        graph, normalized=normalized, backend=backend, workers=workers,
        weighted=weighted,
    )
    return {node: full[node] for node in wanted}


def betweenness_from_pivots(
    graph: Graph,
    pivots: Iterable[Node],
    *,
    normalized: bool = True,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    weighted: Optional[str] = None,
) -> Dict[Node, float]:
    """Estimate betweenness from a subset of source pivots (Bader-style).

    Each pivot contributes its single-source dependencies; the result is
    scaled by ``n / #pivots`` to estimate the full sum.  Used by the
    :mod:`repro.baselines.bader` baseline and by tests.
    """
    pivot_list = list(pivots)
    if not pivot_list:
        raise ValueError("at least one pivot is required")
    n = graph.number_of_nodes()
    centrality = _sum_dependencies(
        graph, pivot_list, backend=backend, workers=workers,
        weighted=weighted,
    )
    # Extrapolate the sum over all n sources (which covers all ordered pairs).
    scale = n / len(pivot_list)
    if normalized and n > 1:
        scale /= n * (n - 1)
    for node in centrality:
        centrality[node] *= scale
    return centrality


def _dependency_chunk(payload, chunk: Sequence[Node]):
    """Worker task: the chunk's *reduced* Brandes dependency partial.

    The fold happens in the worker: per-source vectors are summed in source
    order into one chunk-partial — a single length-``n`` vector (CSR) or one
    label-keyed dict (dict backend) — so a chunk ships O(n) floats back to
    the master instead of O(chunk x n).  The addition order (sources within
    the chunk, then chunks in chunk order at the master) is a pure function
    of the fixed chunk layout, so serial and any worker count produce
    bit-identical totals.

    CSR backend: one batched multi-source sweep per chunk, with each row's
    ``delta[source]`` residue zeroed before folding — mirroring the
    ``dependency.pop(source)`` of the dict implementation.  The payload's
    graph slot may be a shared-memory snapshot handle
    (:func:`repro.parallel.shareable_graph`).
    """
    graph, backend, use_weights = payload
    graph = _parallel.resolve_payload_graph(graph)
    if backend == _csr.CSR_BACKEND:
        snapshot = _csr.as_csr(graph)
        indices = [snapshot.index_of(source) for source in chunk]
        rows = _csr.multi_source_sweep(
            snapshot, indices, kind=_csr.SWEEP_BRANDES, weighted=use_weights
        )
        if _csr.HAS_NUMPY:
            import numpy as np

            partial = np.zeros(snapshot.n, dtype=np.float64)
            for index, row in zip(indices, rows):
                row[index] = 0.0
                np.add(partial, row, out=partial)
        else:
            partial = [0.0] * snapshot.n
            for index, row in zip(indices, rows):
                row[index] = 0.0
                for node in range(snapshot.n):
                    partial[node] += row[node]
        return partial
    partial_map: Dict[Node, float] = {}
    for source in chunk:
        dependencies = single_source_dependencies(
            graph, source, backend=_csr.DICT_BACKEND,
            weighted=_sssp.WEIGHTED_ON if use_weights else _sssp.WEIGHTED_OFF,
        )
        for node, value in dependencies.items():
            partial_map[node] = partial_map.get(node, 0.0) + value
    return partial_map


def _sum_dependencies(
    graph: Graph,
    sources: List[Node],
    *,
    backend: Optional[str],
    workers: Optional[int],
    weighted: Optional[str] = None,
) -> Dict[Node, float]:
    """Sum per-source dependency vectors over ``sources``, in source order.

    The chunked fold runs through the engine's
    :func:`~repro.engine.driver.sweep_sources` with in-worker partial
    accumulation: each chunk reduces its sources locally (in source order)
    and the master adds one partial per chunk, in chunk order.  The float
    addition order is therefore a pure function of the fixed chunk layout —
    identical for the serial path, any worker count, and both backends (the
    backend-equivalence tests assert bit-identical totals).  CSR payloads
    hand the frozen snapshot to workers through the shared-memory path when
    it is enabled and available.
    """
    choice = _csr.effective_backend(graph, backend)
    use_weights = _sssp.effective_weighted(graph, weighted)
    if choice == _csr.CSR_BACKEND:
        snapshot = _csr.as_csr(graph)
        if _csr.HAS_NUMPY:
            import numpy as np

            totals = np.zeros(snapshot.n, dtype=np.float64)

            def fold(chunk, partial) -> None:
                np.add(totals, partial, out=totals)

        else:
            totals = [0.0] * snapshot.n

            def fold(chunk, partial) -> None:
                for node in range(snapshot.n):
                    totals[node] += partial[node]

        def finalize() -> Dict[Node, float]:
            flat = totals.tolist() if _csr.HAS_NUMPY else totals
            return {label: flat[i] for i, label in enumerate(snapshot.labels)}

    else:
        centrality: Dict[Node, float] = {node: 0.0 for node in graph.nodes()}

        def fold(chunk, partial) -> None:
            for node, value in partial.items():
                centrality[node] += value

        def finalize() -> Dict[Node, float]:
            return centrality

    sweep_sources(
        _dependency_chunk, sources, fold,
        payload=(_parallel.shareable_graph(graph, choice), choice, use_weights),
        workers=workers,
    )
    return finalize()
