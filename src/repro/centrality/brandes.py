"""Exact betweenness centrality via Brandes' algorithm (ground truth).

The paper normalises betweenness by ``n (n - 1)`` over *ordered* node pairs
(Eq. 3)::

    bc(v) = 1 / (n (n-1)) * sum_{s != v != t} sigma_st(v) / sigma_st

On undirected graphs ``sigma_st(v)/sigma_st`` is symmetric in ``(s, t)``, so
the ordered-pair sum equals twice the unordered sum; Brandes' one-pass
dependency accumulation naturally computes the unordered sum, which we double
before normalising.

The exact algorithm is ``O(n m)`` and is only used to produce ground truth on
the (scaled-down) benchmark graphs, exactly as the supercomputer runs in the
paper produced ground truth for the full-size networks.

Both traversal backends are supported (see :mod:`repro.graphs.csr`): the
dict reference below, and a CSR path that runs the identical accumulation
over integer index arrays — the per-node dependencies match bit for bit.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from repro.engine.driver import sweep_sources
from repro.errors import GraphError
from repro.graphs import csr as _csr
from repro.graphs.graph import Graph

Node = Hashable


def single_source_dependencies(
    graph: Graph, source: Node, *, backend: Optional[str] = None
) -> Dict[Node, float]:
    """Brandes' single-source dependency accumulation ``delta_s(v)``.

    ``delta_s(v) = sum_{t != s} sigma_st(v) / sigma_st`` — the total
    contribution of source ``s`` to the (unordered-pair, unnormalised)
    betweenness of every node ``v``.
    """
    if not graph.has_node(source):
        raise GraphError(f"source node {source!r} does not exist")
    if _csr.effective_backend(graph, backend) == _csr.CSR_BACKEND:
        snapshot = _csr.as_csr(graph)
        source_index = snapshot.index[source]
        delta, order, _ = _csr.csr_brandes(snapshot, source_index)
        if _csr.HAS_NUMPY:
            order_list = order.tolist()
            values = delta[order].tolist()
        else:
            order_list = list(order)
            values = [delta[node] for node in order_list]
        labels = snapshot.labels
        return {
            labels[node]: value
            for node, value in zip(order_list, values)
            if node != source_index
        }
    distances: Dict[Node, int] = {source: 0}
    sigma: Dict[Node, float] = {source: 1.0}
    predecessors: Dict[Node, list] = {source: []}
    order = []
    queue = deque([source])
    while queue:
        node = queue.popleft()
        order.append(node)
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                sigma[neighbor] = 0.0
                predecessors[neighbor] = []
                queue.append(neighbor)
            if distances[neighbor] == distances[node] + 1:
                sigma[neighbor] += sigma[node]
                predecessors[neighbor].append(node)
    dependency: Dict[Node, float] = {node: 0.0 for node in order}
    for node in reversed(order):
        for predecessor in predecessors[node]:
            dependency[predecessor] += (
                sigma[predecessor] / sigma[node] * (1.0 + dependency[node])
            )
    dependency.pop(source, None)
    return dependency


def betweenness_centrality(
    graph: Graph,
    *,
    normalized: bool = True,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> Dict[Node, float]:
    """Exact betweenness centrality of every node.

    Parameters
    ----------
    normalized:
        When ``True`` (default) divide by ``n (n - 1)`` as in Eq. 3 of the
        paper; otherwise return the raw ordered-pair path counts.
    backend:
        Traversal backend; the CSR path runs batched multi-source sweeps
        (:func:`repro.graphs.csr.multi_source_sweep`) instead of per-source
        dicts, with bit-identical totals.
    workers:
        Worker processes for the all-sources loop (``None`` resolves via
        ``REPRO_WORKERS``).  Per-source dependency vectors are folded in
        source order, so any worker count returns bit-identical results.
    """
    n = graph.number_of_nodes()
    # Summing the single-source dependencies over every source already covers
    # each *ordered* pair (s, t) exactly once, which is what Eq. 3 sums over.
    centrality = _sum_dependencies(
        graph, list(graph.nodes()), backend=backend, workers=workers
    )
    if normalized and n > 1:
        scale = 1.0 / (n * (n - 1))
        for node in centrality:
            centrality[node] *= scale
    return centrality


def betweenness_subset(
    graph: Graph,
    targets: Iterable[Node],
    *,
    normalized: bool = True,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> Dict[Node, float]:
    """Exact betweenness centrality restricted to the nodes in ``targets``.

    The computation still needs the full all-sources pass (the exact value of
    even a single node depends on all shortest paths), so this is a
    convenience filter, not a faster algorithm — the whole point of the paper
    is that *sampling* can focus on a subset while exact computation cannot.
    """
    wanted = set(targets)
    missing = [node for node in wanted if not graph.has_node(node)]
    if missing:
        raise GraphError(f"target nodes not in graph: {missing[:5]!r}")
    full = betweenness_centrality(
        graph, normalized=normalized, backend=backend, workers=workers
    )
    return {node: full[node] for node in wanted}


def betweenness_from_pivots(
    graph: Graph,
    pivots: Iterable[Node],
    *,
    normalized: bool = True,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
) -> Dict[Node, float]:
    """Estimate betweenness from a subset of source pivots (Bader-style).

    Each pivot contributes its single-source dependencies; the result is
    scaled by ``n / #pivots`` to estimate the full sum.  Used by the
    :mod:`repro.baselines.bader` baseline and by tests.
    """
    pivot_list = list(pivots)
    if not pivot_list:
        raise ValueError("at least one pivot is required")
    n = graph.number_of_nodes()
    centrality = _sum_dependencies(
        graph, pivot_list, backend=backend, workers=workers
    )
    # Extrapolate the sum over all n sources (which covers all ordered pairs).
    scale = n / len(pivot_list)
    if normalized and n > 1:
        scale /= n * (n - 1)
    for node in centrality:
        centrality[node] *= scale
    return centrality


def _dependency_chunk(payload, chunk: Sequence[Node]):
    """Worker task: per-source Brandes dependency vectors for ``chunk``.

    CSR backend: one batched multi-source sweep per chunk, returning numpy
    (or pure-Python list) vectors with the ``delta[source]`` residue zeroed —
    mirroring the ``dependency.pop(source)`` of the dict implementation.
    Dict backend: per-source label-keyed dependency dicts.
    """
    graph, backend = payload
    if backend == _csr.CSR_BACKEND:
        snapshot = _csr.as_csr(graph)
        indices = [snapshot.index_of(source) for source in chunk]
        rows = _csr.multi_source_sweep(snapshot, indices, kind=_csr.SWEEP_BRANDES)
        for index, row in zip(indices, rows):
            row[index] = 0.0
        return rows
    return [
        single_source_dependencies(graph, source, backend=_csr.DICT_BACKEND)
        for source in chunk
    ]


def _sum_dependencies(
    graph: Graph,
    sources: List[Node],
    *,
    backend: Optional[str],
    workers: Optional[int],
) -> Dict[Node, float]:
    """Sum per-source dependency vectors over ``sources``, in source order.

    The chunked fold runs through the engine's
    :func:`~repro.engine.driver.sweep_sources`: the fold order is the source
    order regardless of backend, batching or worker count, so every
    configuration returns bit-identical floats (the backend-equivalence
    tests assert this).
    """
    choice = _csr.effective_backend(graph, backend)
    if choice == _csr.CSR_BACKEND:
        snapshot = _csr.as_csr(graph)
        if _csr.HAS_NUMPY:
            import numpy as np

            totals = np.zeros(snapshot.n, dtype=np.float64)

            def fold(chunk, rows) -> None:
                for row in rows:
                    np.add(totals, row, out=totals)

        else:
            totals = [0.0] * snapshot.n

            def fold(chunk, rows) -> None:
                for row in rows:
                    for node in range(snapshot.n):
                        totals[node] += row[node]

        def finalize() -> Dict[Node, float]:
            flat = totals.tolist() if _csr.HAS_NUMPY else totals
            return {label: flat[i] for i, label in enumerate(snapshot.labels)}

    else:
        centrality: Dict[Node, float] = {node: 0.0 for node in graph.nodes()}

        def fold(chunk, rows) -> None:
            for dependencies in rows:
                for node, value in dependencies.items():
                    centrality[node] += value

        def finalize() -> Dict[Node, float]:
            return centrality

    sweep_sources(
        _dependency_chunk, sources, fold,
        payload=(graph, choice), workers=workers,
    )
    return finalize()
