"""Degree centrality (used as a cheap sanity baseline in examples)."""

from __future__ import annotations

from typing import Dict, Hashable

from repro.graphs.graph import Graph

Node = Hashable


def degree_centrality(graph: Graph, *, normalized: bool = True) -> Dict[Node, float]:
    """Return the (optionally normalised) degree of every node.

    With ``normalized=True`` the degree is divided by ``n - 1`` so values lie
    in ``[0, 1]``.
    """
    n = graph.number_of_nodes()
    scale = 1.0 / (n - 1) if normalized and n > 1 else 1.0
    return {node: graph.degree(node) * scale for node in graph.nodes()}
