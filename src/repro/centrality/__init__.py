"""Exact centrality measures and the k-path sampling example."""

from __future__ import annotations

from repro.centrality.brandes import (
    betweenness_centrality,
    betweenness_subset,
    single_source_dependencies,
)
from repro.centrality.closeness import closeness_centrality
from repro.centrality.degree import degree_centrality
from repro.centrality.kpath import KPathCentralityEstimator, kpath_centrality_exact

__all__ = [
    "betweenness_centrality",
    "betweenness_subset",
    "single_source_dependencies",
    "degree_centrality",
    "closeness_centrality",
    "KPathCentralityEstimator",
    "kpath_centrality_exact",
]
