"""k-path centrality: the paper's second worked example of the framework.

Section II of the paper uses k-path centrality [Alahakoon et al., SNS 2011]
as a second illustration of how a centrality maps onto hypothesis ranking:
a sample is a random walk of at most ``k`` edges and ``g(v, x) = 1`` iff
``v`` is visited by the walk.  This module provides

* an exact (enumeration-based) reference value for small graphs,
* a :class:`KPathProblem` implementing the
  :class:`~repro.core.problem.HypothesisRankingProblem` protocol, with the
  length-1 walks as the exact subspace, and
* :class:`KPathCentralityEstimator`, a thin convenience wrapper running the
  generic :class:`~repro.core.saphyra.SaPHyRa` orchestrator on it.

The walk model: the start node ``u_0`` is uniform over ``V``, the walk
length ``l`` is uniform over ``{1..k}``, and each step moves to a uniformly
random neighbour (revisits allowed).  ``h_v`` fires when ``v`` appears among
``u_1..u_l``.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Mapping, Sequence

from repro.core.estimation import ExactEvaluation, SaPHyRaResult
from repro.core.saphyra import SaPHyRa
from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.stats.vc import pi_max_vc_bound
from repro.utils.rng import SeedLike, ensure_rng

Node = Hashable


def _check_walkable(graph: Graph) -> None:
    if graph.number_of_nodes() == 0:
        raise GraphError("k-path centrality needs a non-empty graph")
    for node in graph.nodes():
        if graph.degree(node) == 0:
            raise GraphError(
                "k-path centrality requires minimum degree >= 1 "
                f"(node {node!r} is isolated)"
            )


def kpath_centrality_exact(graph: Graph, k: int) -> Dict[Node, float]:
    """Exact k-path centrality by enumerating all walks (small graphs only).

    The value of ``v`` is the probability that a random walk of uniformly
    random length ``1..k`` from a uniformly random start visits ``v``.
    The cost is ``O(n * max_degree^k)``.
    """
    _check_walkable(graph)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n = graph.number_of_nodes()
    visit_probability: Dict[Node, float] = {node: 0.0 for node in graph.nodes()}

    def explore(current: Node, probability: float, remaining: int, visited: frozenset) -> None:
        """Accumulate, for the fixed walk length, P[v visited] for all v."""
        if remaining == 0:
            for node in visited:
                visit_probability[node] += probability
            return
        degree = graph.degree(current)
        step = probability / degree
        for neighbor in graph.neighbors(current):
            explore(neighbor, step, remaining - 1, visited | {neighbor})

    for length in range(1, k + 1):
        for start in graph.nodes():
            explore(start, 1.0 / (n * k), length, frozenset())
    return visit_probability


class KPathProblem:
    """Hypothesis-ranking formulation of k-path centrality for targets ``A``.

    The exact subspace contains all length-1 walks: their total mass is
    ``1/k`` and the exact risk of ``h_v`` on it is
    ``1/(n k) * sum_{u in N(v)} 1 / deg(u)``, computable in ``O(sum deg)``.
    """

    def __init__(self, graph: Graph, targets: Sequence[Node], k: int) -> None:
        _check_walkable(graph)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        targets = list(targets)
        if not targets:
            raise ValueError("targets must not be empty")
        missing = [node for node in targets if not graph.has_node(node)]
        if missing:
            raise GraphError(f"target nodes not in graph: {missing[:5]!r}")
        if len(set(targets)) != len(targets):
            raise ValueError("targets must be unique")
        self.graph = graph
        self.targets = targets
        self.k = k
        self._index = {node: position for position, node in enumerate(targets)}
        self._nodes = list(graph.nodes())

    # ------------------------------------------------------------------
    @property
    def hypothesis_names(self) -> Sequence[Node]:
        return self.targets

    def exact_evaluation(self) -> ExactEvaluation:
        n = self.graph.number_of_nodes()
        risks = []
        for node in self.targets:
            mass = sum(1.0 / self.graph.degree(u) for u in self.graph.neighbors(node))
            risks.append(mass / (n * self.k))
        lambda_exact = 1.0 / self.k
        return ExactEvaluation(lambda_exact=lambda_exact, risks=risks)

    def sample_losses(self, rng: SeedLike = None) -> Mapping[int, float]:
        """Sample a walk of length ``2..k`` (the approximate subspace)."""
        rng = ensure_rng(rng)
        if self.k < 2:
            raise GraphError(
                "the approximate subspace is empty for k=1; "
                "the exact subspace already covers everything"
            )
        length = rng.randint(2, self.k)
        current = rng.choice(self._nodes)
        losses: Dict[int, float] = {}
        for _ in range(length):
            neighbors = list(self.graph.neighbors(current))
            current = rng.choice(neighbors)
            index = self._index.get(current)
            if index is not None:
                losses[index] = 1.0
        return losses

    def vc_dimension(self) -> float:
        pi_max = min(self.k, len(self.targets))
        return pi_max_vc_bound(pi_max)


class KPathCentralityEstimator:
    """Estimate and rank k-path centrality for a node subset with SaPHyRa.

    Parameters
    ----------
    k:
        Maximum walk length.
    epsilon, delta:
        Estimation guarantee.
    seed:
        RNG seed.
    """

    def __init__(
        self, k: int, epsilon: float = 0.05, delta: float = 0.05, seed: SeedLike = None
    ) -> None:
        self.k = k
        self.epsilon = epsilon
        self.delta = delta
        self.seed = seed

    def rank(self, graph: Graph, targets: Sequence[Node]) -> SaPHyRaResult:
        """Run SaPHyRa on the k-path problem for ``targets``."""
        problem = KPathProblem(graph, targets, self.k)
        if self.k == 1:
            # Degenerate case: everything is exact.
            exact = problem.exact_evaluation()
            scores = dict(zip(problem.hypothesis_names, exact.risks))
            from repro.core.ranking import rank_scores

            return SaPHyRaResult(
                names=list(problem.hypothesis_names),
                risks=list(exact.risks),
                exact_risks=list(exact.risks),
                approximate_risks=[0.0] * len(exact.risks),
                ranking=rank_scores(scores),
                epsilon=self.epsilon,
                delta=self.delta,
                epsilon_prime=math.inf,
                lambda_exact=1.0,
                lambda_approximate=0.0,
                vc_dimension=0.0,
                num_samples=0,
                num_pilot_samples=0,
                num_rounds=0,
                converged_by="exact",
            )
        orchestrator = SaPHyRa(self.epsilon, self.delta, seed=self.seed)
        return orchestrator.rank(problem)
