"""Closeness centrality (exact, BFS per node).

Included because the paper's conclusion lists closeness as the next
centrality the SaPHyRa framework should be extended to; the exact values let
examples and tests compare rankings across measures.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional

from repro.graphs import csr as _csr
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances

Node = Hashable


def closeness_centrality(
    graph: Graph,
    nodes: Optional[Iterable[Node]] = None,
    *,
    backend: Optional[str] = None,
) -> Dict[Node, float]:
    """Harmonic-free classic closeness ``(r - 1) / sum of distances`` scaled by
    the reachable fraction ``(r - 1) / (n - 1)`` (Wasserman–Faust), which
    handles disconnected graphs gracefully.

    Parameters
    ----------
    nodes:
        Restrict the computation to these nodes (defaults to all nodes).
    backend:
        Traversal backend; the CSR path sums distances straight off the
        distance array without materialising a per-node dict.
    """
    n = graph.number_of_nodes()
    selected = list(nodes) if nodes is not None else list(graph.nodes())
    result: Dict[Node, float] = {}
    if _csr.effective_backend(graph, backend) == _csr.CSR_BACKEND and n > 0:
        snapshot = _csr.as_csr(graph)
        for node in selected:
            reachable, total = _csr.csr_distance_stats(
                snapshot, snapshot.index_of(node)
            )
            result[node] = _closeness_value(n, reachable, total)
        return result
    for node in selected:
        distances = bfs_distances(graph, node, backend=_csr.DICT_BACKEND)
        reachable = len(distances)
        total = sum(distances.values())
        result[node] = _closeness_value(n, reachable, total)
    return result


def _closeness_value(n: int, reachable: int, total: int) -> float:
    """Wasserman–Faust closeness from the BFS sweep statistics."""
    if total > 0 and n > 1 and reachable > 1:
        closeness = (reachable - 1) / total
        closeness *= (reachable - 1) / (n - 1)
        return closeness
    return 0.0
