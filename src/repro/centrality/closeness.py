"""Closeness centrality (exact, BFS per node).

Included because the paper's conclusion lists closeness as the next
centrality the SaPHyRa framework should be extended to; the exact values let
examples and tests compare rankings across measures.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro import parallel as _parallel
from repro.engine.driver import sweep_sources
from repro.graphs import csr as _csr
from repro.graphs import sssp as _sssp
from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances, sssp_distances

Node = Hashable


def _distance_stats_chunk(payload, chunk: Sequence[Node]) -> List[Tuple[int, float]]:
    """Worker task: ``(reachable, total distance)`` per node of ``chunk``.

    The per-node statistics are already the fully-reduced form of one sweep
    (two numbers per source), so the chunk partial is simply their list —
    nothing bulkier ever crosses the process boundary.  CSR backend: one
    batched multi-source distance sweep per chunk (thin road-network
    frontiers from the whole chunk merge into one fat one), with the
    snapshot arriving zero-copy when the shared-memory handoff is active.
    Weighted sweeps run the Dijkstra engine; their float distance totals
    are summed in node-index order under *both* backends (the CSR row
    order equals the graph's insertion order), so dict/csr/worker results
    stay bit-identical.
    """
    graph, backend, use_weights = payload
    graph = _parallel.resolve_payload_graph(graph)
    if backend == _csr.CSR_BACKEND:
        snapshot = _csr.as_csr(graph)
        indices = [snapshot.index_of(node) for node in chunk]
        return [
            _csr.distance_stats_from_row(dist)
            for dist in _csr.multi_source_sweep(
                snapshot, indices, kind=_csr.SWEEP_DISTANCE,
                weighted=use_weights,
            )
        ]
    results: List[Tuple[int, float]] = []
    if use_weights:
        node_order = list(graph.nodes())
        for node in chunk:
            distances = sssp_distances(
                graph, node, backend=_csr.DICT_BACKEND,
                weighted=_sssp.WEIGHTED_ON,
            )
            # Sum in insertion (== CSR index) order, not settle order, so
            # the float total matches the CSR row sum bit for bit.
            total = sum(
                distances[other] for other in node_order if other in distances
            )
            results.append((len(distances), total))
        return results
    for node in chunk:
        distances = bfs_distances(graph, node, backend=_csr.DICT_BACKEND)
        results.append((len(distances), sum(distances.values())))
    return results


def closeness_centrality(
    graph: Graph,
    nodes: Optional[Iterable[Node]] = None,
    *,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    weighted: Optional[str] = None,
) -> Dict[Node, float]:
    """Harmonic-free classic closeness ``(r - 1) / sum of distances`` scaled by
    the reachable fraction ``(r - 1) / (n - 1)`` (Wasserman–Faust), which
    handles disconnected graphs gracefully.

    Parameters
    ----------
    nodes:
        Restrict the computation to these nodes (defaults to all nodes).
    backend:
        Traversal backend; the CSR path runs batched multi-source sweeps and
        sums distances straight off the distance rows without materialising
        per-node dicts.
    workers:
        Worker processes for the per-node sweep loop (``None`` resolves via
        ``REPRO_WORKERS``).  The per-node statistics fold is a pure
        function of the fixed chunk layout, so any worker count returns
        bit-identical results.
    weighted:
        SSSP engine selection (``None``/``"auto"``/``"on"``/``"off"``; see
        :mod:`repro.graphs.sssp`).  Weighted closeness sums weight-minimal
        path lengths instead of hop counts; unit-weight graphs under
        ``"auto"`` take the exact historical BFS paths.
    """
    n = graph.number_of_nodes()
    selected = list(nodes) if nodes is not None else list(graph.nodes())
    choice = _csr.effective_backend(graph, backend)
    use_weights = _sssp.effective_weighted(graph, weighted)
    result: Dict[Node, float] = {}

    def fold(chunk, stats) -> None:
        for node, (reachable, total) in zip(chunk, stats):
            result[node] = _closeness_value(n, reachable, total)

    sweep_sources(
        _distance_stats_chunk, selected, fold,
        payload=(_parallel.shareable_graph(graph, choice), choice, use_weights),
        workers=workers,
    )
    return result


def _closeness_value(n: int, reachable: int, total: float) -> float:
    """Wasserman–Faust closeness from the sweep statistics (hops or lengths)."""
    if total > 0 and n > 1 and reachable > 1:
        closeness = (reachable - 1) / total
        closeness *= (reachable - 1) / (n - 1)
        return closeness
    return 0.0
