"""Closeness centrality (exact, BFS per node).

Included because the paper's conclusion lists closeness as the next
centrality the SaPHyRa framework should be extended to; the exact values let
examples and tests compare rankings across measures.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional

from repro.graphs.graph import Graph
from repro.graphs.traversal import bfs_distances

Node = Hashable


def closeness_centrality(
    graph: Graph, nodes: Optional[Iterable[Node]] = None
) -> Dict[Node, float]:
    """Harmonic-free classic closeness ``(r - 1) / sum of distances`` scaled by
    the reachable fraction ``(r - 1) / (n - 1)`` (Wasserman–Faust), which
    handles disconnected graphs gracefully.

    Parameters
    ----------
    nodes:
        Restrict the computation to these nodes (defaults to all nodes).
    """
    n = graph.number_of_nodes()
    selected = list(nodes) if nodes is not None else list(graph.nodes())
    result: Dict[Node, float] = {}
    for node in selected:
        distances = bfs_distances(graph, node)
        reachable = len(distances)
        total = sum(distances.values())
        if total > 0 and n > 1 and reachable > 1:
            closeness = (reachable - 1) / total
            closeness *= (reachable - 1) / (n - 1)
        else:
            closeness = 0.0
        result[node] = closeness
    return result
