"""Vapnik–Chervonenkis sample-complexity helpers.

Lemma 4 of the paper (Theorem 6.8 in Shalev-Shwartz & Ben-David): an
``(epsilon, delta)``-estimation of the expected risks of a hypothesis class
with VC dimension ``d`` needs::

    N = c / epsilon^2 * (d + ln(1/delta))        with c ~ 0.5

Lemma 5 gives the bound used throughout SaPHyRa_bc: if no sample is labelled
positive by more than ``pi_max`` hypotheses, then
``VC(H) <= floor(log2(pi_max)) + 1``.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_in_unit_interval, check_non_negative

#: The constant ``c`` of Lemma 4; the paper states "approximately 0.5".
VC_SAMPLE_CONSTANT = 0.5


def vc_sample_size(
    epsilon: float,
    delta: float,
    vc_dimension: float,
    *,
    constant: float = VC_SAMPLE_CONSTANT,
) -> int:
    """Number of samples sufficient for an ``(epsilon, delta)``-estimation.

    Parameters
    ----------
    epsilon, delta:
        Accuracy and confidence parameters in (0, 1).
    vc_dimension:
        VC dimension of the hypothesis class (``>= 0``).
    constant:
        The multiplicative constant ``c`` (0.5 by default, as in the paper).
    """
    check_in_unit_interval(epsilon, "epsilon")
    check_in_unit_interval(delta, "delta")
    check_non_negative(vc_dimension, "vc_dimension")
    needed = constant / (epsilon**2) * (vc_dimension + math.log(1.0 / delta))
    return max(1, math.ceil(needed))


def pi_max_vc_bound(pi_max: int) -> int:
    """VC-dimension bound of Lemma 5: ``VC(H) <= floor(log2(pi_max)) + 1``.

    ``pi_max`` is the maximum, over samples ``x``, of the number of
    hypotheses that output 1 on ``x``.  ``pi_max = 0`` means no hypothesis
    ever fires and the VC dimension is 0.
    """
    if pi_max < 0:
        raise ValueError(f"pi_max must be >= 0, got {pi_max}")
    if pi_max == 0:
        return 0
    return int(math.floor(math.log2(pi_max))) + 1


def diameter_vc_bound(vertex_diameter: int) -> int:
    """The Riondato–Kornaropoulos VC bound ``floor(log2(VD - 2)) + 1``.

    ``VD`` counts *nodes* on the longest shortest path (hops + 1); a shortest
    path with ``VD`` nodes has ``VD - 2`` inner nodes, which is ``pi_max``
    for the full-network hypothesis class.  Values of ``VD`` below 3 give a
    VC dimension of 0 (no path has an inner node).
    """
    if vertex_diameter < 0:
        raise ValueError(f"vertex_diameter must be >= 0, got {vertex_diameter}")
    return pi_max_vc_bound(max(0, vertex_diameter - 2))
