"""Empirical Bernstein concentration bound (Maurer & Pontil, COLT 2009).

Lemma 3 of the paper: for i.i.d. random variables ``z_1..z_N`` in ``[0, 1]``
with mean ``mu`` and sample variance ``Var(z)``, with probability at least
``1 - delta0``::

    mu - mean(z) <= sqrt(2 Var(z) ln(2/delta0) / N) + 7 ln(2/delta0) / (3 (N-1))

The adaptive samplers track, for each hypothesis, only ``sum z`` and
``sum z^2`` (via :class:`RunningStats`), from which the unbiased sample
variance follows, so memory stays ``O(k)`` regardless of the number of
samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.utils.validation import check_in_unit_interval, check_positive


def sample_variance(values: Iterable[float]) -> float:
    """Unbiased sample variance ``1/(N(N-1)) * sum_{j1<j2} (z_j1 - z_j2)^2``.

    Equals the textbook ``sum (z - mean)^2 / (N - 1)``.  Returns 0.0 for
    fewer than two values.
    """
    data = list(values)
    n = len(data)
    if n < 2:
        return 0.0
    total = sum(data)
    total_sq = sum(value * value for value in data)
    variance = (total_sq - total * total / n) / (n - 1)
    return max(0.0, variance)


def empirical_bernstein_bound(
    num_samples: int, delta0: float, variance: float, *, value_range: float = 1.0
) -> float:
    """Return the one-sided empirical Bernstein deviation ``epsilon(N, delta0, Var)``.

    Parameters
    ----------
    num_samples:
        Number of i.i.d. samples ``N`` (must be >= 2 for a finite bound; with
        ``N < 2`` the bound is infinite).
    delta0:
        Error probability of the bound, in (0, 1).
    variance:
        Sample variance of the observations.
    value_range:
        The width of the interval the observations live in (1 for the 0-1
        losses used throughout the paper).
    """
    check_in_unit_interval(delta0, "delta0")
    if variance < 0:
        raise ValueError(f"variance must be >= 0, got {variance}")
    check_positive(value_range, "value_range")
    if num_samples < 2:
        return math.inf
    log_term = math.log(2.0 / delta0)
    return math.sqrt(2.0 * variance * log_term / num_samples) + (
        7.0 * value_range * log_term / (3.0 * (num_samples - 1))
    )


@dataclass
class RunningStats:
    """Streaming sum / sum-of-squares accumulator for one hypothesis.

    Supports both per-sample updates (:meth:`add`) and bulk updates for
    sparse evaluation, where most samples contribute a loss of exactly zero
    (:meth:`pad_zeros`), which is the common case for betweenness sampling.
    """

    count: int = 0
    total: float = 0.0
    total_sq: float = 0.0

    def add(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        self.total_sq += value * value

    def pad_zeros(self, num_zeros: int) -> None:
        """Record ``num_zeros`` observations of exactly 0.0."""
        if num_zeros < 0:
            raise ValueError(f"num_zeros must be >= 0, got {num_zeros}")
        self.count += num_zeros

    def mean(self) -> float:
        """Sample mean (0.0 when no observations have been recorded)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def variance(self) -> float:
        """Unbiased sample variance (0.0 for fewer than two observations)."""
        if self.count < 2:
            return 0.0
        centered = self.total_sq - self.total * self.total / self.count
        return max(0.0, centered / (self.count - 1))

    def bernstein_epsilon(self, delta0: float, *, value_range: float = 1.0) -> float:
        """Empirical Bernstein deviation for the current observations."""
        return empirical_bernstein_bound(
            self.count, delta0, self.variance(), value_range=value_range
        )
