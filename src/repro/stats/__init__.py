"""Statistical learning-theory toolkit: concentration bounds, VC sample sizes
and error-probability allocation used by the adaptive samplers."""

from __future__ import annotations

from repro.stats.allocation import allocate_error_probabilities
from repro.stats.bernstein import (
    RunningStats,
    empirical_bernstein_bound,
    sample_variance,
)
from repro.stats.hoeffding import hoeffding_bound, hoeffding_sample_size
from repro.stats.vc import (
    pi_max_vc_bound,
    vc_sample_size,
)

__all__ = [
    "empirical_bernstein_bound",
    "sample_variance",
    "RunningStats",
    "hoeffding_bound",
    "hoeffding_sample_size",
    "vc_sample_size",
    "pi_max_vc_bound",
    "allocate_error_probabilities",
]
