"""Hoeffding bound helpers (used for the union-bound baseline sample sizes)."""

from __future__ import annotations

import math

from repro.utils.validation import check_in_unit_interval, check_positive


def hoeffding_bound(num_samples: int, delta0: float, *, value_range: float = 1.0) -> float:
    """Two-sided Hoeffding deviation for ``num_samples`` i.i.d. samples.

    With probability at least ``1 - delta0`` the empirical mean of bounded
    random variables deviates from the expectation by at most
    ``value_range * sqrt(ln(2/delta0) / (2 N))``.
    """
    check_in_unit_interval(delta0, "delta0")
    check_positive(value_range, "value_range")
    if num_samples < 1:
        return math.inf
    return value_range * math.sqrt(math.log(2.0 / delta0) / (2.0 * num_samples))


def hoeffding_sample_size(
    epsilon: float, delta: float, num_hypotheses: int = 1, *, value_range: float = 1.0
) -> int:
    """Samples needed for an ``(epsilon, delta)`` estimate of ``num_hypotheses``
    means simultaneously, by Hoeffding + union bound:
    ``N = range^2 / (2 eps^2) * (ln(2 k) + ln(1/delta))``."""
    check_in_unit_interval(epsilon, "epsilon")
    check_in_unit_interval(delta, "delta")
    check_positive(value_range, "value_range")
    if num_hypotheses < 1:
        raise ValueError(f"num_hypotheses must be >= 1, got {num_hypotheses}")
    needed = (value_range**2 / (2.0 * epsilon**2)) * (
        math.log(2.0 * num_hypotheses) + math.log(1.0 / delta)
    )
    return max(1, math.ceil(needed))
