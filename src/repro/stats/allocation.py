"""Per-hypothesis error-probability allocation (Eq. 13 of the paper).

The adaptive sampler stops when the empirical Bernstein deviation of *every*
hypothesis is below the target ``epsilon'``.  The total failure probability
``delta`` has to be split across hypotheses and doubling rounds:

    sum_i 2 delta_i = delta / ceil(log2(N_max / N_0))

Hypotheses with large variance need a larger share of ``delta`` (a looser
``delta_i`` makes their Bernstein deviation smaller), so the allocation first
solves, for each hypothesis, the ``delta_i`` that would make its deviation
exactly ``epsilon'`` at the maximum sample size given a pilot variance
estimate, and then rescales all ``delta_i`` so the budget constraint holds.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.stats.bernstein import empirical_bernstein_bound
from repro.utils.validation import check_in_unit_interval, check_positive

#: Smallest admissible per-hypothesis probability; avoids log(0) blowups.
_MIN_DELTA = 1e-300


def solve_delta_for_epsilon(
    target_epsilon: float,
    num_samples: int,
    variance: float,
    *,
    value_range: float = 1.0,
) -> float:
    """Find ``delta0`` such that the Bernstein deviation equals ``target_epsilon``.

    The deviation is monotone decreasing in ``delta0``; a binary search over
    ``log(delta0)`` converges quickly.  If even ``delta0`` close to 1 cannot
    reach the target (variance too large for the sample budget), 0.5 is
    returned; if a vanishingly small ``delta0`` already satisfies it, the
    floor ``1e-300`` is returned.
    """
    check_positive(target_epsilon, "target_epsilon")
    if num_samples < 2:
        return 0.5
    low, high = math.log(_MIN_DELTA), math.log(0.5)

    def deviation(log_delta: float) -> float:
        return empirical_bernstein_bound(
            num_samples, math.exp(log_delta), variance, value_range=value_range
        )

    if deviation(high) > target_epsilon:
        return 0.5
    if deviation(low) <= target_epsilon:
        return _MIN_DELTA
    for _ in range(100):
        mid = 0.5 * (low + high)
        if deviation(mid) <= target_epsilon:
            high = mid
        else:
            low = mid
    return math.exp(high)


def allocate_error_probabilities(
    variances: Sequence[float],
    target_epsilon: float,
    delta: float,
    num_rounds: int,
    max_samples: int,
    *,
    value_range: float = 1.0,
) -> List[float]:
    """Allocate per-hypothesis error probabilities ``delta_i`` (Eq. 13).

    Parameters
    ----------
    variances:
        Pilot sample variances, one per hypothesis.
    target_epsilon:
        The per-hypothesis deviation target ``epsilon'``.
    delta:
        Overall failure probability.
    num_rounds:
        ``ceil(log2(N_max / N_0))`` — number of doubling rounds the budget is
        shared across (at least 1).
    max_samples:
        ``N_max``; the sample size at which the target should be achievable.

    Returns
    -------
    list of float
        ``delta_i`` values satisfying ``sum_i 2 delta_i = delta / num_rounds``.
    """
    check_in_unit_interval(delta, "delta")
    check_positive(target_epsilon, "target_epsilon")
    if num_rounds < 1:
        raise ValueError(f"num_rounds must be >= 1, got {num_rounds}")
    k = len(variances)
    if k == 0:
        return []
    budget = delta / num_rounds / 2.0
    raw = [
        solve_delta_for_epsilon(
            target_epsilon, max_samples, variance, value_range=value_range
        )
        for variance in variances
    ]
    total = sum(raw)
    if total <= 0:
        return [budget / k] * k
    scale = budget / total
    return [max(_MIN_DELTA, value * scale) for value in raw]
