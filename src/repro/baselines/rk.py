"""Riondato–Kornaropoulos fixed-size shortest-path sampling (DMKD 2016).

The estimator draws a *fixed* number of samples

    r = c / eps^2 * (floor(log2(VD - 2)) + 1 + ln(1/delta))

where ``VD`` is (an upper bound on) the number of nodes on the longest
shortest path, samples one uniformly random shortest path per random node
pair, and adds ``1/r`` to every inner node.  It is the conceptual ancestor
of both ABRA and KADABRA and the reference point for the VC-dimension
comparison in Table I of the paper.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from repro import parallel as _parallel
from repro.baselines.base import BaselineResult
from repro.engine import dag_cache as _dag_cache
from repro.engine.driver import SampleDriver
from repro.engine.schedule import SampleSchedule
from repro.engine.stopping import FixedSampleRule
from repro.errors import GraphError
from repro.graphs import csr as _csr
from repro.graphs import sssp as _sssp
from repro.graphs.components import is_connected
from repro.graphs.diameter import estimate_diameter, exact_diameter
from repro.graphs.graph import Graph
from repro.stats.vc import vc_sample_size
from repro.saphyra_bc.vc_bounds import vc_from_hop_diameter
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import check_probability_pair

Node = Hashable


def _rk_sample_chunk(payload, piece: Tuple[int, int]) -> Dict[Node, float]:
    """Worker task: draw one chunk of path samples; return sparse hit counts.

    The chunk draws from its own seeded RNG stream (see
    :mod:`repro.parallel`), so the same chunk produces the same samples in
    any process — worker counts never change results.
    """
    graph, nodes, backend, use_weights, base_seed = payload
    graph = _parallel.resolve_payload_graph(graph)
    chunk_index, draws = piece
    rng = _parallel.chunk_rng(base_seed, chunk_index)
    counts: Dict[Node, float] = {}
    for _ in range(draws):
        source = rng.choice(nodes)
        target = rng.choice(nodes)
        while target == source:
            target = rng.choice(nodes)
        # The source DAG comes from the shared cross-sample cache: a source
        # drawn twice reuses its traversal (path sampling only reads the
        # DAG and consumes the RNG identically either way).  With weights
        # on, the DAG is Dijkstra-built and the sampled paths are uniform
        # over *weight-minimal* shortest paths.
        dag = _dag_cache.source_dag(
            graph, source, backend=backend, weighted=use_weights
        )
        if backend == _csr.CSR_BACKEND:
            snapshot = dag.csr
            path = dag.sample_path_indices(snapshot.index[target], rng)
            labels = snapshot.labels
            for inner in path[1:-1]:
                label = labels[inner]
                counts[label] = counts.get(label, 0.0) + 1.0
        else:
            path = dag.sample_path(target, rng)
            for inner in path[1:-1]:
                counts[inner] = counts.get(inner, 0.0) + 1.0
    return counts


class RiondatoKornaropoulos:
    """Fixed-sample-size betweenness estimation for all nodes.

    Parameters
    ----------
    epsilon, delta:
        Additive accuracy / confidence.
    seed:
        RNG seed.
    sample_constant:
        Constant ``c`` in the sample-size formula.
    max_samples_cap:
        Optional hard cap on the number of samples.
    backend:
        Traversal backend (``"dict"``, ``"csr"`` or ``None`` for the
        default); both draw identical samples from identical seeds.
    weighted:
        SSSP engine selection (``None``/``"auto"``/``"on"``/``"off"``; see
        :mod:`repro.graphs.sssp`).  With weights on, samples are uniform
        weight-minimal shortest paths; the hop-diameter-based sample size
        is kept as a documented heuristic surrogate (the VC machinery is
        defined on hop distances).
    workers:
        Worker processes for the sampling loop (``None`` resolves via
        ``REPRO_WORKERS``).  Samples are drawn from per-chunk seeded RNG
        streams folded in chunk order, so any worker count returns
        bit-identical results.
    """

    name = "rk"

    def __init__(
        self,
        epsilon: float = 0.05,
        delta: float = 0.01,
        *,
        seed: SeedLike = None,
        sample_constant: float = 0.5,
        max_samples_cap: Optional[int] = None,
        backend: Optional[str] = None,
        weighted: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> None:
        check_probability_pair(epsilon, delta)
        self.epsilon = epsilon
        self.delta = delta
        self.seed = seed
        self.sample_constant = sample_constant
        self.max_samples_cap = max_samples_cap
        self.backend = backend
        self.weighted = weighted
        self.workers = workers

    def estimate(self, graph: Graph) -> BaselineResult:
        """Estimate betweenness for every node of ``graph``."""
        if graph.number_of_nodes() < 3:
            raise GraphError("need at least 3 nodes to estimate betweenness")
        if not is_connected(graph):
            raise GraphError("the RK estimator requires a connected graph")
        rng = ensure_rng(self.seed)
        timer = Timer()
        with timer:
            if graph.number_of_nodes() <= 300:
                diameter = exact_diameter(graph)
            else:
                diameter = estimate_diameter(graph, rng)
            vc_bound = vc_from_hop_diameter(diameter)
            num_samples = vc_sample_size(
                self.epsilon, self.delta, vc_bound, constant=self.sample_constant
            )
            if self.max_samples_cap is not None:
                num_samples = min(num_samples, self.max_samples_cap)

            nodes = list(graph.nodes())
            counts: Dict[Node, float] = {node: 0.0 for node in nodes}
            choice = _csr.effective_backend(graph, self.backend)
            use_weights = _sssp.effective_weighted(graph, self.weighted)
            base_seed = _parallel.derive_base_seed(rng)

            def fold(part) -> None:
                for node, value in part.items():
                    counts[node] += value

            with SampleDriver(
                _rk_sample_chunk,
                payload=(
                    _parallel.shareable_graph(graph, choice),
                    nodes,
                    choice,
                    use_weights,
                    base_seed,
                ),
                workers=self.workers,
            ) as driver:
                driver.run_schedule(
                    SampleSchedule.fixed(num_samples), FixedSampleRule(), fold
                )
            scores = {node: counts[node] / num_samples for node in nodes}

        return BaselineResult(
            algorithm=self.name,
            scores=scores,
            num_samples=num_samples,
            epsilon=self.epsilon,
            delta=self.delta,
            converged_by="fixed",
            wall_time_seconds=timer.elapsed,
            extra={
                "vc_dimension": float(vc_bound),
                "diameter_bound": float(diameter),
                "weighted": float(use_weights),
            },
        )
