"""KADABRA: adaptive path sampling with balanced bidirectional BFS
(Borassi & Natale, ESA 2016).

Each sample picks a random node pair and one uniformly random shortest path
between them, found with the balanced bidirectional BFS that makes the
per-sample cost ``n^{1/2+o(1)}`` instead of ``Theta(m)``.  Every inner node
of the sampled path gets a +1; the estimate is the hit frequency.  The
number of samples adapts: after every doubling the per-node empirical
Bernstein deviations (with a union-bound allocation of ``delta``) are
checked, and sampling stops early when they are all below ``epsilon``,
capped by the diameter-based VC bound.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Optional, Tuple

from repro import parallel as _parallel
from repro.baselines.base import BaselineResult
from repro.errors import GraphError
from repro.graphs import csr as _csr
from repro.graphs.bidirectional import (
    AUTO_CSR_BIDIRECTIONAL_THRESHOLD,
    bidirectional_shortest_paths,
)
from repro.graphs.components import is_connected
from repro.graphs.diameter import estimate_diameter, exact_diameter
from repro.graphs.graph import Graph
from repro.stats.bernstein import empirical_bernstein_bound
from repro.stats.vc import vc_sample_size
from repro.saphyra_bc.vc_bounds import vc_from_hop_diameter
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import check_probability_pair

Node = Hashable


def _kadabra_sample_chunk(payload, piece: Tuple[int, int]):
    """Worker task: one chunk of bidirectional path samples.

    Returns ``(sparse hit counts, visited adjacency entries)``; hit counts
    are integer-valued floats, so folding them is exact in any order, and the
    chunk RNG streams make results independent of the worker count.
    """
    graph, nodes, backend, base_seed = payload
    chunk_index, draws = piece
    rng = _parallel.chunk_rng(base_seed, chunk_index)
    counts: Dict[Node, float] = {}
    visited_edges = 0
    for _ in range(draws):
        source = rng.choice(nodes)
        endpoint = rng.choice(nodes)
        while endpoint == source:
            endpoint = rng.choice(nodes)
        result = bidirectional_shortest_paths(
            graph, source, endpoint, backend=backend
        )
        visited_edges += result.visited_edges
        if not result.connected:  # pragma: no cover - connected graphs
            continue
        path = result.sample_path(rng)
        for inner in path[1:-1]:
            counts[inner] = counts.get(inner, 0.0) + 1.0
    return counts, visited_edges


class KADABRA:
    """Adaptive path-sampling betweenness estimation for all nodes.

    Parameters
    ----------
    epsilon, delta:
        Additive accuracy / confidence.
    seed:
        RNG seed.
    sample_constant:
        Constant ``c`` of the sample-size formulas.
    max_samples_cap:
        Optional hard cap on the number of samples.
    backend:
        Traversal backend (``"dict"``, ``"csr"`` or ``None`` for the
        default); both draw identical samples from identical seeds.
    workers:
        Worker processes for the sampling rounds (``None`` resolves via
        ``REPRO_WORKERS``).  Samples are drawn from per-chunk seeded RNG
        streams folded in chunk order, so any worker count returns
        bit-identical results.
    """

    name = "kadabra"

    def __init__(
        self,
        epsilon: float = 0.05,
        delta: float = 0.01,
        *,
        seed: SeedLike = None,
        sample_constant: float = 0.5,
        max_samples_cap: Optional[int] = None,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> None:
        check_probability_pair(epsilon, delta)
        self.epsilon = epsilon
        self.delta = delta
        self.seed = seed
        self.sample_constant = sample_constant
        self.max_samples_cap = max_samples_cap
        self.backend = backend
        self.workers = workers

    def estimate(self, graph: Graph) -> BaselineResult:
        """Estimate betweenness for every node of ``graph``."""
        if graph.number_of_nodes() < 3:
            raise GraphError("need at least 3 nodes to estimate betweenness")
        if not is_connected(graph):
            raise GraphError("KADABRA requires a connected graph")
        rng = ensure_rng(self.seed)
        timer = Timer()
        with timer:
            n = graph.number_of_nodes()
            nodes = list(graph.nodes())
            if n <= 300:
                diameter = exact_diameter(graph)
            else:
                diameter = estimate_diameter(graph, rng)
            vc_bound = vc_from_hop_diameter(diameter)
            max_samples = vc_sample_size(
                self.epsilon, self.delta, vc_bound, constant=self.sample_constant
            )
            if self.max_samples_cap is not None:
                max_samples = min(max_samples, self.max_samples_cap)
            first_stage = max(
                32,
                math.ceil(
                    self.sample_constant / self.epsilon**2 * math.log(1.0 / self.delta)
                ),
            )
            first_stage = min(first_stage, max_samples)
            num_rounds = max(1, math.ceil(math.log2(max(1.0, max_samples / first_stage))))
            per_check_delta = self.delta / (num_rounds * n)

            counts: Dict[Node, float] = {node: 0.0 for node in nodes}
            choice = _csr.effective_backend(
                graph, self.backend,
                auto_threshold=AUTO_CSR_BIDIRECTIONAL_THRESHOLD,
            )
            base_seed = _parallel.derive_base_seed(rng)
            drawn = 0
            next_chunk = 0
            target = first_stage
            converged_by = "cap"
            visited_edges = 0
            with _parallel.WorkerPool(
                _kadabra_sample_chunk,
                payload=(graph, nodes, choice, base_seed),
                workers=self.workers,
            ) as pool:
                while True:
                    pieces = _parallel.plan_chunks(
                        target - drawn,
                        _parallel.SAMPLE_CHUNK_SIZE,
                        start_chunk=next_chunk,
                    )
                    next_chunk += len(pieces)
                    for part, part_visited in pool.map(pieces):
                        visited_edges += part_visited
                        for node, value in part.items():
                            counts[node] += value
                    drawn = target
                    if self._deviations_ok(counts, drawn, per_check_delta):
                        converged_by = "adaptive"
                        break
                    if drawn >= max_samples:
                        converged_by = "cap"
                        break
                    target = min(max_samples, 2 * target)
            scores = {node: counts[node] / drawn for node in nodes}

        return BaselineResult(
            algorithm=self.name,
            scores=scores,
            num_samples=drawn,
            epsilon=self.epsilon,
            delta=self.delta,
            converged_by=converged_by,
            wall_time_seconds=timer.elapsed,
            extra={
                "vc_dimension": float(vc_bound),
                "max_samples": float(max_samples),
                "visited_edges": float(visited_edges),
            },
        )

    def _deviations_ok(
        self, counts: Dict[Node, float], num_samples: int, per_check_delta: float
    ) -> bool:
        """Per-node Bernstein check; counts are 0/1 sums so the variance is
        ``c (N - c) / (N (N - 1))`` with ``c`` the hit count."""
        if num_samples < 2:
            return False
        for count in counts.values():
            variance = count * (num_samples - count) / (num_samples * (num_samples - 1))
            deviation = empirical_bernstein_bound(
                num_samples, per_check_delta, variance
            )
            if deviation > self.epsilon:
                return False
        return True
