"""KADABRA: adaptive path sampling with balanced bidirectional BFS
(Borassi & Natale, ESA 2016).

Each sample picks a random node pair and one uniformly random shortest path
between them, found with the balanced bidirectional BFS that makes the
per-sample cost ``n^{1/2+o(1)}`` instead of ``Theta(m)``.  Every inner node
of the sampled path gets a +1; the estimate is the hit frequency.  The
number of samples adapts: after every doubling the per-node empirical
Bernstein deviations (with a union-bound allocation of ``delta``) are
checked, and sampling stops early when they are all below ``epsilon``,
capped by the diameter-based VC bound.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Optional

from repro.baselines.base import BaselineResult
from repro.errors import GraphError
from repro.graphs.bidirectional import bidirectional_shortest_paths
from repro.graphs.components import is_connected
from repro.graphs.diameter import estimate_diameter, exact_diameter
from repro.graphs.graph import Graph
from repro.stats.bernstein import empirical_bernstein_bound
from repro.stats.vc import vc_sample_size
from repro.saphyra_bc.vc_bounds import vc_from_hop_diameter
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import check_probability_pair

Node = Hashable


class KADABRA:
    """Adaptive path-sampling betweenness estimation for all nodes.

    Parameters
    ----------
    epsilon, delta:
        Additive accuracy / confidence.
    seed:
        RNG seed.
    sample_constant:
        Constant ``c`` of the sample-size formulas.
    max_samples_cap:
        Optional hard cap on the number of samples.
    backend:
        Traversal backend (``"dict"``, ``"csr"`` or ``None`` for the
        default); both draw identical samples from identical seeds.
    """

    name = "kadabra"

    def __init__(
        self,
        epsilon: float = 0.05,
        delta: float = 0.01,
        *,
        seed: SeedLike = None,
        sample_constant: float = 0.5,
        max_samples_cap: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        check_probability_pair(epsilon, delta)
        self.epsilon = epsilon
        self.delta = delta
        self.seed = seed
        self.sample_constant = sample_constant
        self.max_samples_cap = max_samples_cap
        self.backend = backend

    def estimate(self, graph: Graph) -> BaselineResult:
        """Estimate betweenness for every node of ``graph``."""
        if graph.number_of_nodes() < 3:
            raise GraphError("need at least 3 nodes to estimate betweenness")
        if not is_connected(graph):
            raise GraphError("KADABRA requires a connected graph")
        rng = ensure_rng(self.seed)
        timer = Timer()
        with timer:
            n = graph.number_of_nodes()
            nodes = list(graph.nodes())
            if n <= 300:
                diameter = exact_diameter(graph)
            else:
                diameter = estimate_diameter(graph, rng)
            vc_bound = vc_from_hop_diameter(diameter)
            max_samples = vc_sample_size(
                self.epsilon, self.delta, vc_bound, constant=self.sample_constant
            )
            if self.max_samples_cap is not None:
                max_samples = min(max_samples, self.max_samples_cap)
            first_stage = max(
                32,
                math.ceil(
                    self.sample_constant / self.epsilon**2 * math.log(1.0 / self.delta)
                ),
            )
            first_stage = min(first_stage, max_samples)
            num_rounds = max(1, math.ceil(math.log2(max(1.0, max_samples / first_stage))))
            per_check_delta = self.delta / (num_rounds * n)

            counts: Dict[Node, float] = {node: 0.0 for node in nodes}
            drawn = 0
            target = first_stage
            converged_by = "cap"
            visited_edges = 0
            while True:
                while drawn < target:
                    source = rng.choice(nodes)
                    endpoint = rng.choice(nodes)
                    while endpoint == source:
                        endpoint = rng.choice(nodes)
                    result = bidirectional_shortest_paths(
                        graph, source, endpoint, backend=self.backend
                    )
                    visited_edges += result.visited_edges
                    drawn += 1
                    if not result.connected:  # pragma: no cover - connected graphs
                        continue
                    path = result.sample_path(rng)
                    for inner in path[1:-1]:
                        counts[inner] += 1.0
                if self._deviations_ok(counts, drawn, per_check_delta):
                    converged_by = "adaptive"
                    break
                if drawn >= max_samples:
                    converged_by = "cap"
                    break
                target = min(max_samples, 2 * target)
            scores = {node: counts[node] / drawn for node in nodes}

        return BaselineResult(
            algorithm=self.name,
            scores=scores,
            num_samples=drawn,
            epsilon=self.epsilon,
            delta=self.delta,
            converged_by=converged_by,
            wall_time_seconds=timer.elapsed,
            extra={
                "vc_dimension": float(vc_bound),
                "max_samples": float(max_samples),
                "visited_edges": float(visited_edges),
            },
        )

    def _deviations_ok(
        self, counts: Dict[Node, float], num_samples: int, per_check_delta: float
    ) -> bool:
        """Per-node Bernstein check; counts are 0/1 sums so the variance is
        ``c (N - c) / (N (N - 1))`` with ``c`` the hit count."""
        if num_samples < 2:
            return False
        for count in counts.values():
            variance = count * (num_samples - count) / (num_samples * (num_samples - 1))
            deviation = empirical_bernstein_bound(
                num_samples, per_check_delta, variance
            )
            if deviation > self.epsilon:
                return False
        return True
