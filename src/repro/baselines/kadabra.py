"""KADABRA: adaptive path sampling with balanced bidirectional BFS
(Borassi & Natale, ESA 2016).

Each sample picks a random node pair and one uniformly random shortest path
between them, found with the balanced bidirectional BFS that makes the
per-sample cost ``n^{1/2+o(1)}`` instead of ``Theta(m)``.  Every inner node
of the sampled path gets a +1; the estimate is the hit frequency.  The
number of samples adapts: after every doubling the per-node empirical
Bernstein deviations (with a union-bound allocation of ``delta``) are
checked, and sampling stops early when they are all below ``epsilon``,
capped by the diameter-based VC bound.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from repro import parallel as _parallel
from repro.baselines.base import BaselineResult
from repro.engine import dag_cache as _dag_cache
from repro.engine.driver import SampleDriver
from repro.engine.schedule import SampleSchedule
from repro.engine.stopping import HitCountRule
from repro.errors import GraphError
from repro.graphs import csr as _csr
from repro.graphs.bidirectional import (
    AUTO_CSR_BIDIRECTIONAL_THRESHOLD,
    bidirectional_shortest_paths,
)
from repro.graphs import sssp as _sssp
from repro.graphs.components import is_connected
from repro.graphs.diameter import estimate_diameter, exact_diameter
from repro.graphs.graph import Graph
from repro.stats.vc import vc_sample_size
from repro.saphyra_bc.vc_bounds import vc_from_hop_diameter
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import check_probability_pair

Node = Hashable


def _kadabra_sample_chunk(payload, piece: Tuple[int, int]):
    """Worker task: one chunk of path samples.

    Unit-weight graphs sample through the balanced bidirectional BFS — the
    KADABRA workhorse, whose level balancing is specific to hop distances.
    With weights on, samples route through the unified SSSP engine instead:
    one Dijkstra source DAG per drawn source (reused across samples via the
    cross-sample cache) and a uniform weight-minimal path sampled from it;
    the accounted cost is the full adjacency scan of that traversal.

    Returns ``(sparse hit counts, visited adjacency entries)``; hit counts
    are integer-valued floats, so folding them is exact in any order, and the
    chunk RNG streams make results independent of the worker count.
    """
    graph, nodes, backend, use_weights, base_seed = payload
    graph = _parallel.resolve_payload_graph(graph)
    chunk_index, draws = piece
    rng = _parallel.chunk_rng(base_seed, chunk_index)
    counts: Dict[Node, float] = {}
    visited_edges = 0
    for _ in range(draws):
        source = rng.choice(nodes)
        endpoint = rng.choice(nodes)
        while endpoint == source:
            endpoint = rng.choice(nodes)
        if use_weights:
            dag = _dag_cache.source_dag(
                graph, source, backend=backend, weighted=True
            )
            visited_edges += 2 * graph.number_of_edges()
            if backend == _csr.CSR_BACKEND:
                snapshot = dag.csr
                path_indices = dag.sample_path_indices(
                    snapshot.index[endpoint], rng
                )
                labels = snapshot.labels
                path = [labels[index] for index in path_indices]
            else:
                path = dag.sample_path(endpoint, rng)
        else:
            result = bidirectional_shortest_paths(
                graph, source, endpoint, backend=backend
            )
            visited_edges += result.visited_edges
            if not result.connected:  # pragma: no cover - connected graphs
                continue
            path = result.sample_path(rng)
        for inner in path[1:-1]:
            counts[inner] = counts.get(inner, 0.0) + 1.0
    return counts, visited_edges


class KADABRA:
    """Adaptive path-sampling betweenness estimation for all nodes.

    Parameters
    ----------
    epsilon, delta:
        Additive accuracy / confidence.
    seed:
        RNG seed.
    sample_constant:
        Constant ``c`` of the sample-size formulas.
    max_samples_cap:
        Optional hard cap on the number of samples.
    backend:
        Traversal backend (``"dict"``, ``"csr"`` or ``None`` for the
        default); both draw identical samples from identical seeds.
    weighted:
        SSSP engine selection (``None``/``"auto"``/``"on"``/``"off"``; see
        :mod:`repro.graphs.sssp`).  With weights on, samples are uniform
        weight-minimal shortest paths drawn from cached Dijkstra source
        DAGs (the bidirectional balancing is a hop-distance optimisation);
        the hop-diameter-based sample sizes are kept as a documented
        heuristic surrogate.
    workers:
        Worker processes for the sampling rounds (``None`` resolves via
        ``REPRO_WORKERS``).  Samples are drawn from per-chunk seeded RNG
        streams folded in chunk order, so any worker count returns
        bit-identical results.
    """

    name = "kadabra"

    def __init__(
        self,
        epsilon: float = 0.05,
        delta: float = 0.01,
        *,
        seed: SeedLike = None,
        sample_constant: float = 0.5,
        max_samples_cap: Optional[int] = None,
        backend: Optional[str] = None,
        weighted: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> None:
        check_probability_pair(epsilon, delta)
        self.epsilon = epsilon
        self.delta = delta
        self.seed = seed
        self.sample_constant = sample_constant
        self.max_samples_cap = max_samples_cap
        self.backend = backend
        self.weighted = weighted
        self.workers = workers

    def estimate(self, graph: Graph) -> BaselineResult:
        """Estimate betweenness for every node of ``graph``."""
        if graph.number_of_nodes() < 3:
            raise GraphError("need at least 3 nodes to estimate betweenness")
        if not is_connected(graph):
            raise GraphError("KADABRA requires a connected graph")
        rng = ensure_rng(self.seed)
        timer = Timer()
        with timer:
            n = graph.number_of_nodes()
            nodes = list(graph.nodes())
            if n <= 300:
                diameter = exact_diameter(graph)
            else:
                diameter = estimate_diameter(graph, rng)
            vc_bound = vc_from_hop_diameter(diameter)
            max_samples = vc_sample_size(
                self.epsilon, self.delta, vc_bound, constant=self.sample_constant
            )
            if self.max_samples_cap is not None:
                max_samples = min(max_samples, self.max_samples_cap)
            schedule = SampleSchedule.from_guarantee(
                self.epsilon,
                self.delta,
                max_samples,
                sample_constant=self.sample_constant,
            )
            per_check_delta = self.delta / (schedule.num_stages() * n)

            counts: Dict[Node, float] = {node: 0.0 for node in nodes}
            use_weights = _sssp.effective_weighted(graph, self.weighted)
            # Weighted sampling runs full source traversals (no per-query
            # state arrays), so the plain auto threshold applies.
            choice = _csr.effective_backend(
                graph, self.backend,
                auto_threshold=(
                    None if use_weights else AUTO_CSR_BIDIRECTIONAL_THRESHOLD
                ),
            )
            base_seed = _parallel.derive_base_seed(rng)
            visited = {"edges": 0}

            def fold(partial) -> None:
                part, part_visited = partial
                visited["edges"] += part_visited
                for node, value in part.items():
                    counts[node] += value

            stopping = HitCountRule(
                counts, epsilon=self.epsilon, per_check_delta=per_check_delta
            )
            with SampleDriver(
                _kadabra_sample_chunk,
                payload=(
                    _parallel.shareable_graph(graph, choice),
                    nodes,
                    choice,
                    use_weights,
                    base_seed,
                ),
                workers=self.workers,
            ) as driver:
                outcome = driver.run_schedule(schedule, stopping, fold)
            drawn = outcome.num_samples
            converged_by = outcome.converged_by
            visited_edges = visited["edges"]
            scores = {node: counts[node] / drawn for node in nodes}

        return BaselineResult(
            algorithm=self.name,
            scores=scores,
            num_samples=drawn,
            epsilon=self.epsilon,
            delta=self.delta,
            converged_by=converged_by,
            wall_time_seconds=timer.elapsed,
            extra={
                "vc_dimension": float(vc_bound),
                "max_samples": float(max_samples),
                "visited_edges": float(visited_edges),
                "weighted": float(use_weights),
            },
        )

