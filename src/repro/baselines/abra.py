"""ABRA: progressive node-pair sampling (Riondato & Upfal, KDD 2016 / TKDD 2018).

Each sample is a random ordered node pair ``(u, v)``; the estimator adds the
*fraction of shortest u-v paths through w*, ``sigma_uv(w) / sigma_uv``, to
every node ``w`` — so one sample updates every node on the shortest-path DAG
between the endpoints, which is why ABRA is the slowest of the compared
methods per sample.  Sampling proceeds in geometric stages; after every
stage a stopping condition is evaluated and the estimator halts as soon as
every node's deviation bound is below ``epsilon``.

Substitution note (documented in DESIGN.md): the original stopping rule is
based on Rademacher averages; this reproduction uses the empirical Bernstein
bound with a union bound over nodes, which provides the same
``(epsilon, delta)`` guarantee and the same qualitative behaviour (progressive
stages, earlier stops on easier inputs) with a slightly more conservative
constant.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, Optional, Tuple

from repro import parallel as _parallel
from repro.baselines.base import BaselineResult
from repro.engine import dag_cache as _dag_cache
from repro.engine.driver import SampleDriver
from repro.engine.schedule import SampleSchedule
from repro.engine.stopping import BernsteinSumsRule
from repro.errors import GraphError
from repro.graphs import csr as _csr
from repro.graphs import sssp as _sssp
from repro.graphs.components import is_connected
from repro.graphs.diameter import estimate_diameter, exact_diameter
from repro.graphs.graph import Graph
from repro.stats.vc import vc_sample_size
from repro.saphyra_bc.vc_bounds import vc_from_hop_diameter
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import check_probability_pair

Node = Hashable


def _abra_sample_chunk(payload, piece: Tuple[int, int]):
    """Worker task: one chunk of node-pair samples; returns sparse partial
    sums ``(totals, totals_sq)`` accumulated in draw order.

    The chunk's RNG stream is seeded from ``(base_seed, chunk_index)`` only,
    so the partials — and the chunk-order fold of them — are identical for
    any worker count.  The payload's graph slot may be a shared-memory
    snapshot handle (:func:`repro.parallel.shareable_graph`); the source-DAG
    cache keys on the attached snapshot exactly as it would on a graph.
    """
    estimator, graph, nodes, backend, use_weights, base_seed = payload
    graph = _parallel.resolve_payload_graph(graph)
    chunk_index, draws = piece
    rng = _parallel.chunk_rng(base_seed, chunk_index)
    totals: Dict[Node, float] = defaultdict(float)
    totals_sq: Dict[Node, float] = defaultdict(float)
    for _ in range(draws):
        if backend == _csr.CSR_BACKEND:
            estimator._add_pair_sample_csr(
                graph, nodes, totals, totals_sq, rng, use_weights
            )
        else:
            estimator._add_pair_sample(
                graph, nodes, totals, totals_sq, rng, use_weights
            )
    return dict(totals), dict(totals_sq)


class ABRA:
    """Progressive-sampling betweenness estimation for all nodes.

    Parameters
    ----------
    epsilon, delta:
        Additive accuracy / confidence.
    seed:
        RNG seed.
    stage_growth:
        Multiplicative growth of the sample schedule between stages.
    sample_constant:
        Constant ``c`` of the sample-size formulas.
    max_samples_cap:
        Optional hard cap on the number of samples.
    backend:
        Traversal backend (``"dict"``, ``"csr"`` or ``None`` for the
        default); both draw identical samples from identical seeds.
    weighted:
        SSSP engine selection (``None``/``"auto"``/``"on"``/``"off"``; see
        :mod:`repro.graphs.sssp`).  With weights on, each sample's
        fractional path counts are taken over *weight-minimal* shortest
        paths (Dijkstra-built DAGs); the hop-diameter-based sample sizes
        are kept as a documented heuristic surrogate.
    workers:
        Worker processes for the sampling stages (``None`` resolves via
        ``REPRO_WORKERS``).  Samples are drawn from per-chunk seeded RNG
        streams and partial sums are folded in chunk order, so any worker
        count returns bit-identical results.
    """

    name = "abra"

    def __init__(
        self,
        epsilon: float = 0.05,
        delta: float = 0.01,
        *,
        seed: SeedLike = None,
        stage_growth: float = 2.0,
        sample_constant: float = 0.5,
        max_samples_cap: Optional[int] = None,
        backend: Optional[str] = None,
        weighted: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> None:
        check_probability_pair(epsilon, delta)
        if stage_growth <= 1.0:
            raise ValueError(f"stage_growth must be > 1, got {stage_growth}")
        self.epsilon = epsilon
        self.delta = delta
        self.seed = seed
        self.stage_growth = stage_growth
        self.sample_constant = sample_constant
        self.max_samples_cap = max_samples_cap
        self.backend = backend
        self.weighted = weighted
        self.workers = workers

    # ------------------------------------------------------------------
    def estimate(self, graph: Graph) -> BaselineResult:
        """Estimate betweenness for every node of ``graph``."""
        if graph.number_of_nodes() < 3:
            raise GraphError("need at least 3 nodes to estimate betweenness")
        if not is_connected(graph):
            raise GraphError("ABRA requires a connected graph")
        rng = ensure_rng(self.seed)
        timer = Timer()
        with timer:
            n = graph.number_of_nodes()
            nodes = list(graph.nodes())
            if n <= 300:
                diameter = exact_diameter(graph)
            else:
                diameter = estimate_diameter(graph, rng)
            vc_bound = vc_from_hop_diameter(diameter)
            max_samples = vc_sample_size(
                self.epsilon, self.delta, vc_bound, constant=self.sample_constant
            )
            if self.max_samples_cap is not None:
                max_samples = min(max_samples, self.max_samples_cap)
            schedule = SampleSchedule.from_guarantee(
                self.epsilon,
                self.delta,
                max_samples,
                sample_constant=self.sample_constant,
                growth=self.stage_growth,
            )
            # Union bound over nodes and stages.
            per_check_delta = self.delta / (schedule.num_stages() * n)

            totals: Dict[Node, float] = {node: 0.0 for node in nodes}
            totals_sq: Dict[Node, float] = {node: 0.0 for node in nodes}
            choice = _csr.effective_backend(graph, self.backend)
            use_weights = _sssp.effective_weighted(graph, self.weighted)
            base_seed = _parallel.derive_base_seed(rng)

            def fold(partial) -> None:
                part, part_sq = partial
                for node, value in part.items():
                    totals[node] += value
                for node, value in part_sq.items():
                    totals_sq[node] += value

            stopping = BernsteinSumsRule(
                totals, totals_sq,
                epsilon=self.epsilon, per_check_delta=per_check_delta,
            )
            with SampleDriver(
                _abra_sample_chunk,
                payload=(
                    self,
                    _parallel.shareable_graph(graph, choice),
                    nodes,
                    choice,
                    use_weights,
                    base_seed,
                ),
                workers=self.workers,
            ) as driver:
                outcome = driver.run_schedule(schedule, stopping, fold)
            drawn = outcome.num_samples
            converged_by = outcome.converged_by
            scores = {node: totals[node] / drawn for node in nodes}

        return BaselineResult(
            algorithm=self.name,
            scores=scores,
            num_samples=drawn,
            epsilon=self.epsilon,
            delta=self.delta,
            converged_by=converged_by,
            wall_time_seconds=timer.elapsed,
            extra={
                "vc_dimension": float(vc_bound),
                "max_samples": float(max_samples),
                "weighted": float(use_weights),
            },
        )

    # ------------------------------------------------------------------
    def _add_pair_sample(
        self,
        graph: Graph,
        nodes,
        totals: Dict[Node, float],
        totals_sq: Dict[Node, float],
        rng,
        use_weights: bool = False,
    ) -> None:
        """Sample one node pair and add the fractional path counts.

        The source DAG comes from the shared :mod:`repro.engine.dag_cache`
        (a repeated source reuses the traversal) and the backward ``beta``
        pass is the shared :meth:`ShortestPathDAG.path_counts_to` kernel —
        ABRA no longer carries private traversal loops.  With weights on
        the DAG is Dijkstra-built; the distance comparisons below work
        unchanged on its float distances.
        """
        source = rng.choice(nodes)
        target = rng.choice(nodes)
        while target == source:
            target = rng.choice(nodes)
        dag = _dag_cache.source_dag(
            graph, source, backend=_csr.DICT_BACKEND, weighted=use_weights
        )
        if target not in dag.distances:  # pragma: no cover - connected graphs
            return
        # beta[w] = number of shortest paths from w to target inside the
        # DAG.  Only nodes with d(w) < d(target) can contribute.
        target_distance = dag.distances[target]
        beta = dag.path_counts_to(target)
        sigma_uv = dag.sigma[target]
        for node, paths_to_target in beta.items():
            if node == source or node == target:
                continue
            if dag.distances[node] >= target_distance:
                continue
            fraction = dag.sigma[node] * paths_to_target / sigma_uv
            totals[node] += fraction
            totals_sq[node] += fraction * fraction

    def _add_pair_sample_csr(
        self,
        graph: Graph,
        nodes,
        totals: Dict[Node, float],
        totals_sq: Dict[Node, float],
        rng,
        use_weights: bool = False,
    ) -> None:
        """Index-space twin of :meth:`_add_pair_sample`.

        Draws the same node pair (identical RNG consumption), reuses the
        cached index-space DAG, and runs the shared
        :meth:`~repro.graphs.csr.CSRShortestPathDAG.path_counts_to` kernel;
        the fractional updates to the label-keyed totals are identical.
        """
        source = rng.choice(nodes)
        target = rng.choice(nodes)
        while target == source:
            target = rng.choice(nodes)
        dag = _dag_cache.source_dag(
            graph, source, backend=_csr.CSR_BACKEND, weighted=use_weights
        )
        snapshot = dag.csr
        target_index = snapshot.index[target]
        dist = dag.dist
        if dist[target_index] < 0:  # pragma: no cover - connected graphs
            return
        target_distance = dist[target_index]
        beta = dag.path_counts_to(target_index)
        sigma = dag.sigma
        sigma_uv = sigma[target_index]
        source_index = dag.source
        labels = snapshot.labels
        for node, paths_to_target in beta.items():
            if node == source_index or node == target_index:
                continue
            if dist[node] >= target_distance:
                continue
            fraction = sigma[node] * paths_to_target / sigma_uv
            label = labels[node]
            totals[label] += fraction
            totals_sq[label] += fraction * fraction
