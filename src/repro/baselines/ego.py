"""Ego-network betweenness (Everett & Borgatti, Social Networks 2005).

One of the "localised heuristics" the paper's related-work section contrasts
against: the betweenness of a node computed only inside its ego network
(the node, its neighbours and the edges among them).  It is cheap —
``O(sum_v deg(v)^2)`` overall — and needs no samples, but it comes with *no*
guarantee of any kind on the estimation error or the induced ranking, which
is exactly the gap SaPHyRa fills.  It is included as the no-guarantee
reference point for examples and ablations.

Like every other entry point it accepts ``backend=`` / ``workers=``: the
per-ego Brandes passes run on the selected traversal backend and the
per-node loop is chunked through the engine's source sweep, bit-identical
for any worker count (the fold is a plain per-node assignment).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from repro.baselines.base import BaselineResult
from repro.centrality.brandes import single_source_dependencies
from repro.engine.driver import sweep_sources
from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.utils.timing import Timer

Node = Hashable


def ego_betweenness(
    graph: Graph,
    node: Node,
    *,
    normalized: bool = True,
    backend: Optional[str] = None,
) -> float:
    """Betweenness of ``node`` within its ego network.

    The ego network contains ``node``, its neighbours, and every edge among
    them.  With ``normalized=True`` the value is divided by ``n (n - 1)`` of
    the *full* graph so it is on the same scale as the other estimators
    (the ranking is unaffected by the choice).
    """
    if not graph.has_node(node):
        raise GraphError(f"node {node!r} does not exist")
    members = [node] + list(graph.neighbors(node))
    ego = graph.subgraph(members)
    # Brandes restricted to the ego network: sum the pair dependencies of
    # ``node`` over all sources in the ego network.
    total = 0.0
    for source in ego.nodes():
        if source == node:
            continue
        dependencies = single_source_dependencies(ego, source, backend=backend)
        total += dependencies.get(node, 0.0)
    n = graph.number_of_nodes()
    if normalized and n > 1:
        return total / (n * (n - 1))
    return total


def _ego_chunk(payload, chunk: Sequence[Node]) -> List[float]:
    """Worker task: ego betweenness for one chunk of nodes (in chunk order)."""
    graph, backend = payload
    return [ego_betweenness(graph, node, backend=backend) for node in chunk]


class EgoBetweenness:
    """Whole-network ego-betweenness "estimator" (heuristic, no guarantees).

    Parameters
    ----------
    nodes:
        Restrict the computation to these nodes (default: all nodes); unlike
        the sampling estimators this heuristic *can* focus on a subset, but
        its values are not estimates of true betweenness — only a proxy
        ranking signal.
    backend:
        Traversal backend for the per-ego Brandes passes (``"dict"``,
        ``"csr"`` or ``None`` for the default); ego networks are tiny, so
        the ``auto`` default almost always stays on the dict reference.
    workers:
        Worker processes for the per-node loop (``None`` resolves via
        ``REPRO_WORKERS``); bit-identical for any worker count.
    """

    name = "ego"

    def __init__(
        self,
        nodes: Optional[Iterable[Node]] = None,
        *,
        backend: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> None:
        self.nodes = list(nodes) if nodes is not None else None
        self.backend = backend
        self.workers = workers

    def estimate(self, graph: Graph) -> BaselineResult:
        """Compute ego betweenness for the selected nodes of ``graph``."""
        if graph.number_of_nodes() < 3:
            raise GraphError("need at least 3 nodes")
        selected = self.nodes if self.nodes is not None else list(graph.nodes())
        timer = Timer()
        with timer:
            scores: Dict[Node, float] = {}

            def fold(chunk, values) -> None:
                for node, value in zip(chunk, values):
                    scores[node] = value

            sweep_sources(
                _ego_chunk, selected, fold,
                payload=(graph, self.backend), workers=self.workers,
            )
        return BaselineResult(
            algorithm=self.name,
            scores=scores,
            num_samples=0,
            epsilon=float("nan"),
            delta=float("nan"),
            converged_by="heuristic",
            wall_time_seconds=timer.elapsed,
        )
