"""Shared result type and helpers for the whole-network baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List

from repro.core.ranking import rank_scores

Node = Hashable


@dataclass
class BaselineResult:
    """Outcome of a whole-network betweenness estimation run.

    Attributes
    ----------
    algorithm:
        Name of the estimator (``"abra"``, ``"kadabra"``, ...).
    scores:
        ``{node: estimated betweenness}`` for every node of the graph,
        normalised by ``n (n - 1)``.
    num_samples:
        Number of samples drawn (pairs or paths, depending on the method).
    epsilon, delta:
        The requested additive guarantee.
    converged_by:
        ``"adaptive"`` when the stopping rule fired before the cap,
        ``"cap"`` when the maximum sample size was reached, ``"fixed"`` for
        fixed-size estimators.
    wall_time_seconds:
        Wall-clock time of the estimation (excluding graph loading).
    """

    algorithm: str
    scores: Dict[Node, float]
    num_samples: int
    epsilon: float
    delta: float
    converged_by: str = "fixed"
    wall_time_seconds: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    def subset_scores(self, targets: Iterable[Node]) -> Dict[Node, float]:
        """Project the whole-network estimate onto a target subset."""
        return {node: self.scores.get(node, 0.0) for node in targets}

    def ranking(self, targets: Iterable[Node] | None = None) -> List[Node]:
        """Ranking (descending score, ties by id) of ``targets`` or all nodes."""
        scores = self.scores if targets is None else self.subset_scores(targets)
        return rank_scores(scores)
