"""Sampling baselines the paper compares against.

All baselines estimate betweenness for *every* node of the network — that is
precisely the paper's point: whole-network estimators cannot exploit a small
target subset, and their additive guarantees translate into poor rankings for
the (many) nodes with small betweenness.
"""

from __future__ import annotations

from repro.baselines.abra import ABRA
from repro.baselines.bader import BaderPivot
from repro.baselines.base import BaselineResult
from repro.baselines.ego import EgoBetweenness, ego_betweenness
from repro.baselines.kadabra import KADABRA
from repro.baselines.rk import RiondatoKornaropoulos

__all__ = [
    "BaselineResult",
    "ABRA",
    "KADABRA",
    "RiondatoKornaropoulos",
    "BaderPivot",
    "EgoBetweenness",
    "ego_betweenness",
]
