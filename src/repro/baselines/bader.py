"""Bader et al. adaptive source (pivot) sampling (WAW 2007).

The oldest of the compared approaches: sample source pivots, run one full
single-source shortest-path dependency accumulation per pivot (Brandes'
inner loop), and extrapolate.  The original paper adapts the number of
pivots to the centrality of a single node of interest; this implementation
keeps the per-pivot machinery and exposes either a fixed pivot count or an
``epsilon``-derived default, which is how the benchmark study the paper cites
([AlGhamdi et al., SSDBM 2017]) ran it.
"""

from __future__ import annotations

import math
from typing import Hashable, Optional

from repro.baselines.base import BaselineResult
from repro.centrality.brandes import betweenness_from_pivots
from repro.errors import GraphError
from repro.graphs.components import is_connected
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.timing import Timer
from repro.utils.validation import check_probability_pair

Node = Hashable


class BaderPivot:
    """Pivot-based betweenness estimation for all nodes.

    Parameters
    ----------
    epsilon, delta:
        Used only to derive the default pivot count
        (``ln(1/delta) / (2 epsilon^2)`` capped at ``n``); the method's own
        guarantee is multiplicative for high-centrality nodes rather than the
        additive one the other baselines offer.
    num_pivots:
        Explicit pivot count overriding the default.
    seed:
        RNG seed.
    backend:
        Traversal backend forwarded to the Brandes pivot passes.
    weighted:
        SSSP engine selection (``None``/``"auto"``/``"on"``/``"off"``; see
        :mod:`repro.graphs.sssp`) forwarded to the Brandes pivot passes —
        with weights on, each pivot runs a Dijkstra dependency pass, so the
        extrapolated scores estimate *weighted* betweenness.
    workers:
        Worker processes for the pivot passes (``None`` resolves via
        ``REPRO_WORKERS``); bit-identical for any worker count.  The pivot
        sweep inherits the exact-Brandes fold contract: each chunk of pivots
        reduces to one dependency partial in-worker, and CSR payloads reach
        workers through the shared-memory handoff when it is active.
    """

    name = "bader"

    def __init__(
        self,
        epsilon: float = 0.05,
        delta: float = 0.01,
        *,
        num_pivots: Optional[int] = None,
        seed: SeedLike = None,
        backend: Optional[str] = None,
        weighted: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> None:
        check_probability_pair(epsilon, delta)
        if num_pivots is not None and num_pivots < 1:
            raise ValueError(f"num_pivots must be >= 1, got {num_pivots}")
        self.epsilon = epsilon
        self.delta = delta
        self.num_pivots = num_pivots
        self.seed = seed
        self.backend = backend
        self.weighted = weighted
        self.workers = workers

    def estimate(self, graph: Graph) -> BaselineResult:
        """Estimate betweenness for every node of ``graph``."""
        if graph.number_of_nodes() < 3:
            raise GraphError("need at least 3 nodes to estimate betweenness")
        if not is_connected(graph):
            raise GraphError("the pivot estimator requires a connected graph")
        rng = ensure_rng(self.seed)
        n = graph.number_of_nodes()
        pivots_needed = self.num_pivots
        if pivots_needed is None:
            pivots_needed = math.ceil(
                math.log(1.0 / self.delta) / (2.0 * self.epsilon**2)
            )
        pivots_needed = max(1, min(pivots_needed, n))

        timer = Timer()
        with timer:
            nodes = list(graph.nodes())
            pivots = rng.sample(nodes, pivots_needed)
            scores = betweenness_from_pivots(
                graph, pivots, normalized=True, backend=self.backend,
                workers=self.workers, weighted=self.weighted,
            )

        return BaselineResult(
            algorithm=self.name,
            scores=scores,
            num_samples=pivots_needed,
            epsilon=self.epsilon,
            delta=self.delta,
            converged_by="fixed",
            wall_time_seconds=timer.elapsed,
        )
