"""Benchmark datasets: laptop-scale surrogates of the paper's networks.

The paper evaluates on Flickr, LiveJournal, Orkut (SNAP social networks) and
USA-road (DIMACS).  Those graphs have 10^6-10^7 nodes and ground truth that
took a supercomputer weeks to compute; this reproduction ships *synthetic
surrogates from the same structural families* (documented in DESIGN.md)
whose scale is controlled by a single ``scale`` knob, plus loaders
(:mod:`repro.graphs.io`) so the real SNAP / DIMACS files can be dropped in
when available.
"""

from __future__ import annotations

from repro.datasets.ground_truth import GroundTruthCache, exact_betweenness
from repro.datasets.registry import (
    Dataset,
    available_datasets,
    dataset_key,
    load,
    load_csr,
)
from repro.datasets.subsets import (
    geographic_subset,
    l_hop_subset,
    random_subset,
    random_subsets,
    road_areas,
)
from repro.datasets.synthetic import (
    karate_club_graph,
    road_surrogate,
    social_surrogate,
)

__all__ = [
    "Dataset",
    "load",
    "load_csr",
    "dataset_key",
    "available_datasets",
    "social_surrogate",
    "road_surrogate",
    "karate_club_graph",
    "random_subset",
    "random_subsets",
    "l_hop_subset",
    "geographic_subset",
    "road_areas",
    "exact_betweenness",
    "GroundTruthCache",
]
