"""Synthetic surrogate generators for the paper's benchmark networks.

Structural traits the surrogates preserve (and why they matter):

* **Social surrogates** (Flickr / LiveJournal / Orkut): a heavy-tailed
  2-connected core plus a configurable fraction of pendant (degree-1) nodes.
  Pendant nodes have betweenness exactly 0, so the fraction controls the
  *true zero* rate that drives the Fig. 6 analysis; the core's density
  controls how hard ranking the remaining low-centrality nodes is.
* **Road surrogate** (USA-road): a jittered planar grid with removed edges —
  tiny average degree, huge diameter, many cut vertices and bridge blocks —
  together with node coordinates so geographic sub-areas (Table III) can be
  carved out.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import GraphError
from repro.graphs.components import largest_connected_component
from repro.graphs.generators import (
    grid_road_graph,
    powerlaw_cluster_graph,
    weighted_grid_road_graph,
)
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, ensure_rng

#: Zachary's karate club (34 nodes, 78 edges) — the classic tiny test graph.
_KARATE_EDGES = [
    (0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (0, 6), (0, 7), (0, 8), (0, 10),
    (0, 11), (0, 12), (0, 13), (0, 17), (0, 19), (0, 21), (0, 31), (1, 2),
    (1, 3), (1, 7), (1, 13), (1, 17), (1, 19), (1, 21), (1, 30), (2, 3),
    (2, 7), (2, 8), (2, 9), (2, 13), (2, 27), (2, 28), (2, 32), (3, 7),
    (3, 12), (3, 13), (4, 6), (4, 10), (5, 6), (5, 10), (5, 16), (6, 16),
    (8, 30), (8, 32), (8, 33), (9, 33), (13, 33), (14, 32), (14, 33),
    (15, 32), (15, 33), (18, 32), (18, 33), (19, 33), (20, 32), (20, 33),
    (22, 32), (22, 33), (23, 25), (23, 27), (23, 29), (23, 32), (23, 33),
    (24, 25), (24, 27), (24, 31), (25, 31), (26, 29), (26, 33), (27, 33),
    (28, 31), (28, 33), (29, 32), (29, 33), (30, 32), (30, 33), (31, 32),
    (31, 33), (32, 33),
]


def karate_club_graph() -> Graph:
    """Return Zachary's karate club graph (34 nodes, 78 edges)."""
    return Graph.from_edges(_KARATE_EDGES)


def social_surrogate(
    num_nodes: int,
    *,
    pendant_fraction: float = 0.3,
    edges_per_node: int = 4,
    triangle_probability: float = 0.3,
    seed: SeedLike = None,
) -> Graph:
    """Generate a social-network surrogate.

    Parameters
    ----------
    num_nodes:
        Total number of nodes (core + pendants).
    pendant_fraction:
        Fraction of nodes attached as degree-1 leaves to the core.  Leaves
        have betweenness 0 and their attachment points become cutpoints,
        which is exactly the structure the bi-component sampling exploits.
    edges_per_node:
        Preferential-attachment edges per core node (controls density).
    triangle_probability:
        Triangle-closure probability of the Holme–Kim core (controls
        clustering / block sizes).
    seed:
        RNG seed.
    """
    if num_nodes < 10:
        raise GraphError(f"the surrogate needs at least 10 nodes, got {num_nodes}")
    if not 0.0 <= pendant_fraction < 1.0:
        raise GraphError(
            f"pendant_fraction must be in [0, 1), got {pendant_fraction}"
        )
    rng = ensure_rng(seed)
    num_pendants = int(num_nodes * pendant_fraction)
    num_core = num_nodes - num_pendants
    if num_core < edges_per_node + 2:
        raise GraphError(
            "core too small for the requested density; lower pendant_fraction "
            "or edges_per_node"
        )
    graph = powerlaw_cluster_graph(
        num_core, edges_per_node, triangle_probability, seed=rng
    )
    # Attach pendants preferentially (hubs accumulate more leaves, as in real
    # social networks where celebrities have many silent followers).
    core_nodes = list(graph.nodes())
    attachment_pool = []
    for node in core_nodes:
        attachment_pool.extend([node] * graph.degree(node))
    next_id = num_core
    for _ in range(num_pendants):
        anchor = rng.choice(attachment_pool)
        graph.add_edge(next_id, anchor)
        attachment_pool.append(anchor)
        next_id += 1
    return graph


def road_surrogate(
    rows: int,
    cols: int,
    *,
    seed: SeedLike = None,
    removal_probability: float = 0.12,
    diagonal_probability: float = 0.04,
) -> Tuple[Graph, Dict[int, Tuple[float, float]]]:
    """Generate a road-network surrogate with coordinates.

    Returns ``(graph, coordinates)``; the graph is the largest connected
    component of a perturbed grid, relabelled only implicitly (node ids keep
    their grid positions so coordinates stay aligned).
    """
    graph, coordinates = grid_road_graph(
        rows,
        cols,
        diagonal_probability=diagonal_probability,
        removal_probability=removal_probability,
        seed=seed,
    )
    return graph, coordinates


def weighted_road_surrogate(
    rows: int,
    cols: int,
    *,
    seed: SeedLike = None,
    removal_probability: float = 0.12,
    diagonal_probability: float = 0.04,
) -> Tuple[Graph, Dict[int, Tuple[float, float]]]:
    """A :func:`road_surrogate` whose edges carry road-length weights.

    Same structural parameters as the unweighted surrogate; each edge's
    weight is the Euclidean distance between its jittered endpoints times a
    deterministic per-edge jitter (see
    :func:`repro.graphs.generators.weighted_grid_road_graph`), modelling the
    edge lengths the DIMACS USA-road files carry in the wild.
    """
    return weighted_grid_road_graph(
        rows,
        cols,
        diagonal_probability=diagonal_probability,
        removal_probability=removal_probability,
        seed=seed,
    )


def connected_social_surrogate(
    num_nodes: int,
    *,
    pendant_fraction: float = 0.3,
    edges_per_node: int = 4,
    triangle_probability: float = 0.3,
    seed: SeedLike = None,
) -> Graph:
    """Like :func:`social_surrogate` but guaranteed connected.

    The preferential-attachment core is connected by construction, and every
    pendant hangs off the core, so the surrogate is already connected; this
    wrapper exists for symmetry with the road surrogate and asserts the
    invariant.
    """
    graph = social_surrogate(
        num_nodes,
        pendant_fraction=pendant_fraction,
        edges_per_node=edges_per_node,
        triangle_probability=triangle_probability,
        seed=seed,
    )
    component = largest_connected_component(graph)
    if len(component) != graph.number_of_nodes():  # pragma: no cover - safety
        graph = graph.subgraph(component)
    return graph
