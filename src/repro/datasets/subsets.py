"""Target-subset selection strategies used by the experiments.

The paper evaluates on (a) 1000 random subsets of 100 nodes, (b) subsets of
varying size 10..100, (c) l-hop neighbourhoods (for the VC-dimension
discussion), and (d) geographic areas of the USA-road network (Table III /
Fig. 7).  This module implements all four.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Sequence, Tuple

from repro.errors import DatasetError
from repro.graphs.graph import Graph
from repro.graphs.traversal import k_hop_neighborhood
from repro.utils.rng import SeedLike, ensure_rng

Node = Hashable
Coordinates = Mapping[int, Tuple[float, float]]


def random_subset(graph: Graph, size: int, seed: SeedLike = None) -> List[Node]:
    """Sample ``size`` distinct nodes uniformly at random."""
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    nodes = list(graph.nodes())
    if size > len(nodes):
        raise DatasetError(
            f"cannot sample {size} nodes from a graph with {len(nodes)} nodes"
        )
    rng = ensure_rng(seed)
    return rng.sample(nodes, size)


def random_subsets(
    graph: Graph, num_subsets: int, size: int, seed: SeedLike = None
) -> List[List[Node]]:
    """Sample ``num_subsets`` independent random subsets of ``size`` nodes."""
    if num_subsets < 1:
        raise ValueError(f"num_subsets must be >= 1, got {num_subsets}")
    rng = ensure_rng(seed)
    return [random_subset(graph, size, rng) for _ in range(num_subsets)]


def l_hop_subset(graph: Graph, center: Node, hops: int) -> List[Node]:
    """All nodes within ``hops`` of ``center`` (the l-hop subsets of Table I)."""
    return k_hop_neighborhood(graph, center, hops)


def geographic_subset(
    coordinates: Coordinates,
    x_range: Tuple[float, float],
    y_range: Tuple[float, float],
) -> List[int]:
    """Nodes whose coordinates fall inside the axis-aligned box."""
    x_low, x_high = x_range
    y_low, y_high = y_range
    if x_low > x_high or y_low > y_high:
        raise ValueError("ranges must satisfy low <= high")
    return [
        node
        for node, (x, y) in coordinates.items()
        if x_low <= x <= x_high and y_low <= y <= y_high
    ]


def road_areas(
    coordinates: Coordinates, *, graph: Graph | None = None
) -> Dict[str, List[int]]:
    """Carve four nested geographic areas out of a road network.

    The areas mirror the relative sizes of the paper's Table III subsets
    (NYC < BAY < CO < FL, roughly 1 : 1.2 : 1.6 : 4 in node count): boxes
    covering ~25%, ~30%, ~40% and ~65% of each coordinate axis, anchored at
    different corners so the areas overlap only partially, as real states do.
    """
    if not coordinates:
        raise DatasetError("coordinates are empty")
    xs = [x for x, _ in coordinates.values()]
    ys = [y for _, y in coordinates.values()]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    width = x_max - x_min
    height = y_max - y_min

    def box(x_frac: Tuple[float, float], y_frac: Tuple[float, float]) -> List[int]:
        return geographic_subset(
            coordinates,
            (x_min + x_frac[0] * width, x_min + x_frac[1] * width),
            (y_min + y_frac[0] * height, y_min + y_frac[1] * height),
        )

    areas = {
        "NYC": box((0.70, 0.95), (0.70, 0.95)),
        "BAY": box((0.02, 0.32), (0.02, 0.32)),
        "CO": box((0.30, 0.70), (0.30, 0.70)),
        "FL": box((0.05, 0.70), (0.35, 0.98)),
    }
    if graph is not None:
        areas = {
            name: [node for node in nodes if graph.has_node(node)]
            for name, nodes in areas.items()
        }
    empty = [name for name, nodes in areas.items() if not nodes]
    if empty:
        raise DatasetError(
            f"areas {empty} are empty; the road graph is too small for the boxes"
        )
    return areas


def subsets_by_size(
    graph: Graph,
    sizes: Sequence[int],
    repetitions: int,
    seed: SeedLike = None,
) -> Dict[int, List[List[Node]]]:
    """``{size: [subset, ...]}`` with ``repetitions`` random subsets per size
    (the Fig. 5 workload)."""
    rng = ensure_rng(seed)
    return {
        size: [random_subset(graph, size, rng) for _ in range(repetitions)]
        for size in sizes
    }
