"""Named dataset registry.

``load("flickr", scale=0.5)`` returns a :class:`Dataset` whose graph is the
Flickr surrogate at half the default size.  The default sizes are chosen so
that exact ground truth (Brandes) completes in seconds on a laptop; crank
``scale`` up for larger runs.

When a snapshot store is configured (``snapshot_dir=`` argument or the
``snapshot_dir`` knob — ``REPRO_SNAPSHOT_DIR``), :func:`load` memoises each
generated graph to ``<snapshot_dir>/datasets/<name>@<scale>#<seed>.csr``
(plus a JSON side-car with coordinates and metadata): the first build pays
the generator cost once, every later process rebuilds the dict graph from
the snapshot (same node order, same adjacency order — bit-identical
traversals), and :func:`load_csr` skips the dict graph entirely, returning
the frozen CSR snapshot zero-copy (memory-mapped under ``mmap=auto|on``) —
the O(1)-attach cold-start path for benches and read-only workloads.
Corrupt or stale-format store entries are rebuilt and overwritten, never
served.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.datasets.synthetic import (
    karate_club_graph,
    road_surrogate,
    social_surrogate,
    weighted_road_surrogate,
)
from repro.errors import DatasetError
from repro.graphs.generators import weighted_barabasi_albert_graph
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike

Coordinates = Dict[int, Tuple[float, float]]


@dataclass
class Dataset:
    """A named benchmark graph plus optional node coordinates.

    Attributes
    ----------
    name:
        Registry name.
    graph:
        The graph (always connected).
    coordinates:
        ``{node: (x, y)}`` for road-like datasets, ``None`` otherwise.
    description:
        What the dataset is a surrogate of.
    """

    name: str
    graph: Graph
    coordinates: Optional[Coordinates] = None
    description: str = ""
    paper_reference: Dict[str, float] = field(default_factory=dict)


def _build_karate(scale: float, seed: SeedLike) -> Dataset:
    del scale, seed  # fixed graph
    return Dataset(
        name="karate",
        graph=karate_club_graph(),
        description="Zachary's karate club (34 nodes) — tiny sanity-check graph",
    )


def _build_flickr(scale: float, seed: SeedLike) -> Dataset:
    num_nodes = max(200, int(1500 * scale))
    graph = social_surrogate(
        num_nodes,
        pendant_fraction=0.55,
        edges_per_node=4,
        triangle_probability=0.25,
        seed=seed,
    )
    return Dataset(
        name="flickr",
        graph=graph,
        description=(
            "Flickr surrogate: heavy-tailed core with a large pendant fringe "
            "(~55% degree-1 nodes -> many true zeros)"
        ),
        paper_reference={"nodes": 1.6e6, "edges": 15.5e6, "diameter": 24},
    )


def _build_livejournal(scale: float, seed: SeedLike) -> Dataset:
    num_nodes = max(200, int(2000 * scale))
    graph = social_surrogate(
        num_nodes,
        pendant_fraction=0.3,
        edges_per_node=5,
        triangle_probability=0.3,
        seed=seed,
    )
    return Dataset(
        name="livejournal",
        graph=graph,
        description=(
            "LiveJournal surrogate: moderately dense social core with a "
            "moderate pendant fringe"
        ),
        paper_reference={"nodes": 5.2e6, "edges": 49.2e6, "diameter": 23},
    )


def _build_orkut(scale: float, seed: SeedLike) -> Dataset:
    num_nodes = max(200, int(1800 * scale))
    graph = social_surrogate(
        num_nodes,
        pendant_fraction=0.05,
        edges_per_node=8,
        triangle_probability=0.4,
        seed=seed,
    )
    return Dataset(
        name="orkut",
        graph=graph,
        description=(
            "Orkut surrogate: dense social graph, almost no pendant nodes "
            "(few true zeros, hardest ranking instance)"
        ),
        paper_reference={"nodes": 3.1e6, "edges": 117.2e6, "diameter": 10},
    )


def _build_usa_road(scale: float, seed: SeedLike) -> Dataset:
    rows = max(12, int(40 * scale))
    cols = max(15, int(50 * scale))
    graph, coordinates = road_surrogate(rows, cols, seed=seed)
    return Dataset(
        name="usa-road",
        graph=graph,
        coordinates=coordinates,
        description=(
            "USA-road surrogate: perturbed planar grid, huge diameter, many "
            "bridges and cutpoints, with geographic coordinates"
        ),
        paper_reference={"nodes": 23.9e6, "edges": 58.3e6, "diameter": 1524},
    )


def _build_usa_road_weighted(scale: float, seed: SeedLike) -> Dataset:
    rows = max(12, int(40 * scale))
    cols = max(15, int(50 * scale))
    graph, coordinates = weighted_road_surrogate(rows, cols, seed=seed)
    return Dataset(
        name="usa-road-weighted",
        graph=graph,
        coordinates=coordinates,
        description=(
            "Weighted USA-road surrogate: the usa-road grid with Euclidean "
            "road-length edge weights, exercising the Dijkstra SSSP engine "
            "(weighted betweenness/closeness, real-length rankings)"
        ),
        paper_reference={"nodes": 23.9e6, "edges": 58.3e6, "diameter": 1524},
    )


def _build_ba_weighted(scale: float, seed: SeedLike) -> Dataset:
    num_nodes = max(200, int(1500 * scale))
    graph = weighted_barabasi_albert_graph(num_nodes, 4, seed=seed)
    return Dataset(
        name="ba-weighted",
        graph=graph,
        description=(
            "Weighted Barabási–Albert graph: heavy-tailed social topology "
            "with uniform random edge weights in [1, 10] — the social-side "
            "workload for the weighted SSSP engine"
        ),
    )


_BUILDERS: Dict[str, Callable[[float, SeedLike], Dataset]] = {
    "karate": _build_karate,
    "flickr": _build_flickr,
    "livejournal": _build_livejournal,
    "orkut": _build_orkut,
    "usa-road": _build_usa_road,
    "usa-road-weighted": _build_usa_road_weighted,
    "ba-weighted": _build_ba_weighted,
}

#: The four evaluation networks of the paper (Table II order).
PAPER_NETWORKS = ("flickr", "livejournal", "usa-road", "orkut")


def available_datasets() -> Tuple[str, ...]:
    """Return the names accepted by :func:`load`."""
    return tuple(_BUILDERS)


def _resolve_builder(name: str, scale: float) -> Callable[[float, SeedLike], Dataset]:
    if scale <= 0:
        raise DatasetError(f"scale must be > 0, got {scale}")
    try:
        return _BUILDERS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(sorted(_BUILDERS))}"
        ) from None


def dataset_key(name: str, scale: float, seed: SeedLike) -> str:
    """The snapshot-store key memoising ``load(name, scale=scale, seed=seed)``."""
    return f"{name}@{scale}#{seed}"


def _dataset_meta(dataset: Dataset) -> Dict:
    """The JSON side-car capturing everything a snapshot cannot hold."""
    coordinates = None
    if dataset.coordinates is not None:
        coordinates = {str(node): list(xy) for node, xy in dataset.coordinates.items()}
    return {
        "name": dataset.name,
        "description": dataset.description,
        "paper_reference": dict(dataset.paper_reference),
        "coordinates": coordinates,
    }


def _dataset_from_snapshot(name: str, csr, meta: Dict) -> Dataset:
    from repro.graphs.csr import adopt_snapshot
    from repro.graphs.store import graph_from_snapshot

    coordinates = None
    raw = meta.get("coordinates")
    if raw is not None:
        coordinates = {int(node): tuple(xy) for node, xy in raw.items()}
    graph = graph_from_snapshot(csr)
    # The snapshot *is* this graph's CSR form (the reconstruction preserves
    # adjacency order exactly), so adopt it: as_csr(graph) stays memory-
    # mapped and worker payloads ship the snapshot path instead of
    # re-exporting arrays.
    adopt_snapshot(graph, csr)
    return Dataset(
        name=name,
        graph=graph,
        coordinates=coordinates,
        description=meta.get("description", ""),
        paper_reference=dict(meta.get("paper_reference", {})),
    )


def _dataset_store(directory) -> "object":
    from repro.graphs.store import SnapshotStore

    return SnapshotStore(directory / "datasets")


def load(
    name: str,
    *,
    scale: float = 1.0,
    seed: SeedLike = 0,
    snapshot_dir: Optional[str] = None,
    mmap: Optional[str] = None,
) -> Dataset:
    """Build (or fetch) the named dataset.

    Parameters
    ----------
    name:
        One of :func:`available_datasets`.
    scale:
        Size multiplier applied to the default node counts (> 0).
    seed:
        Seed used by the synthetic generators; the same ``(name, scale,
        seed)`` always yields the same graph.
    snapshot_dir:
        Memoise the generated graph in this snapshot store (``None``
        resolves the ``snapshot_dir`` knob; no store configured = build in
        RAM every time, the historical behaviour).  The rebuilt graph is
        node-for-node, edge-order-for-edge-order identical to a fresh
        build, so every traversal on it is bit-identical.
    mmap:
        How a store hit attaches the snapshot arrays (``auto``/``on``/
        ``off``; ``None`` resolves the ``mmap`` knob).  Never changes the
        returned dataset, only load cost.

    Raises
    ------
    DatasetError
        For unknown names or non-positive scales.
    """
    builder = _resolve_builder(name, scale)
    from repro.errors import GraphError
    from repro.graphs.store import resolve_snapshot_dir

    directory = resolve_snapshot_dir(snapshot_dir)
    if directory is None:
        return builder(scale, seed)
    store = _dataset_store(directory)
    key = dataset_key(name, scale, seed)
    try:
        csr = store.load(key, mmap=mmap)
    except GraphError:
        # Corrupt or stale-format store entry: datasets are re-generatable,
        # so rebuild below and overwrite it.
        csr = None
    if csr is not None:
        meta = store.load_meta(key)
        if meta is not None:
            return _dataset_from_snapshot(name, csr, meta)
    dataset = builder(scale, seed)
    store.save(key, dataset.graph)
    store.save_meta(key, _dataset_meta(dataset))
    return dataset


def load_csr(
    name: str,
    *,
    scale: float = 1.0,
    seed: SeedLike = 0,
    snapshot_dir: Optional[str] = None,
    mmap: Optional[str] = None,
):
    """The named dataset's graph as a frozen :class:`CSRGraph` snapshot.

    With a snapshot store configured this is the O(1)-attach cold-start
    path: a store hit returns the on-disk snapshot directly (memory-mapped
    under ``mmap=auto|on``), skipping both the generator and the dict
    graph; a miss builds and memoises via :func:`load` first.  Without a
    store it degrades to ``as_csr(load(...).graph)``.  The snapshot is
    byte-identical to ``CSRGraph.from_graph`` of a fresh build either way.
    """
    _resolve_builder(name, scale)
    from repro.graphs.csr import as_csr
    from repro.graphs.store import resolve_snapshot_dir

    directory = resolve_snapshot_dir(snapshot_dir)
    if directory is None:
        dataset = load(
            name, scale=scale, seed=seed, snapshot_dir=snapshot_dir, mmap=mmap
        )
        return as_csr(dataset.graph)
    store = _dataset_store(directory)
    key = dataset_key(name, scale, seed)
    from repro.errors import GraphError

    try:
        csr = store.load(key, mmap=mmap)
    except GraphError:
        csr = None
    if csr is not None:
        return csr
    dataset = load(name, scale=scale, seed=seed, snapshot_dir=snapshot_dir, mmap=mmap)
    csr = store.load(key, mmap=mmap)
    if csr is not None:
        return csr
    return as_csr(dataset.graph)  # pragma: no cover - store vanished mid-call
