"""Exact betweenness ground truth with simple on-disk caching.

The paper's ground truth took ~2M core-hours on a Cray for the SNAP graphs
and two weeks on a 96-core server for USA-road; at reproduction scale exact
Brandes takes seconds to minutes, but the experiment drivers still reuse one
ground-truth computation across the whole epsilon / subset-size sweep, so a
small JSON cache keeps repeated benchmark invocations fast.

Since PR 10 the cache also has a **persistent, content-addressed tier**:
when a snapshot store is configured (``snapshot_dir`` knob /
``REPRO_SNAPSHOT_DIR``), every computed truth is additionally written to
``<snapshot_dir>/ground_truth/bt_<content-digest>_<metric>.json``, keyed by
:func:`repro.graphs.store.content_digest` of the graph plus the routed SSSP
metric (hop vs weighted).  The digest covers the exact labels, adjacency
order and weights, so a restarted process — or a different key naming the
same graph — reuses the exact Brandes run bit for bit, and a mutated or
regenerated graph can never collide with a stale entry.
"""

from __future__ import annotations

import json
import weakref
from pathlib import Path
from typing import Dict, Hashable, Optional, Union

from repro.centrality.brandes import betweenness_centrality
from repro.graphs import delta as _delta
from repro.graphs import sssp as _sssp
from repro.graphs.graph import Graph

Node = Hashable
PathLike = Union[str, Path]


def exact_betweenness(
    graph: Graph, *, workers: Optional[int] = None
) -> Dict[Node, float]:
    """Exact normalised betweenness of every node (Brandes, ``O(nm)``).

    ``workers`` fans the all-sources pass out over a worker pool (``None``
    resolves via ``REPRO_WORKERS``); the per-source dependency vectors are
    folded in source order, so any worker count returns bit-identical values.
    """
    return betweenness_centrality(graph, normalized=True, workers=workers)


class GroundTruthCache:
    """Compute-once cache for exact betweenness, optionally persisted to disk.

    Parameters
    ----------
    cache_dir:
        Directory for the key-named JSON cache files; ``None`` keeps the
        key tier in memory only.
    digest_dir:
        Directory for the content-addressed tier; ``None`` (the default)
        derives ``<snapshot_dir>/ground_truth`` from the ``snapshot_dir``
        knob at lookup time, so a plain ``GroundTruthCache()`` becomes
        persistent the moment a snapshot store is configured (and stays
        memory-only otherwise, the historical behaviour).

    Examples
    --------
    >>> from repro.datasets.synthetic import karate_club_graph
    >>> cache = GroundTruthCache()
    >>> truth = cache.get("karate", karate_club_graph())
    >>> round(max(truth.values()), 3) > 0
    True
    """

    def __init__(
        self,
        cache_dir: Optional[PathLike] = None,
        digest_dir: Optional[PathLike] = None,
    ) -> None:
        self._memory: Dict[str, Dict[Node, float]] = {}
        # Version fencing (PR 8): remember which graph object (weakly) and
        # which ``Graph._version`` each entry was computed against, so a
        # mutated graph cannot be served stale truth.  Reweight-only delta
        # ranges are retained when the truth metric is hop-based (forced
        # ``weighted=off``) — weights are invisible to it.
        self._versions: Dict[str, int] = {}
        self._graphs: Dict[str, "weakref.ref[Graph]"] = {}
        self.delta_retained = 0
        self.delta_evictions = 0
        self._cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self._cache_dir is not None:
            self._cache_dir.mkdir(parents=True, exist_ok=True)
        self._digest_dir = Path(digest_dir) if digest_dir is not None else None

    def _remember(self, key: str, graph: Graph) -> None:
        try:
            self._graphs[key] = weakref.ref(graph)
            self._versions[key] = graph._version
        except TypeError:  # a bare CSR payload or stub without weakref/version
            self._graphs.pop(key, None)
            self._versions.pop(key, None)
        _delta.track(graph)

    def _fresh(self, key: str, graph: Graph) -> bool:
        """Whether the cached entry still describes ``graph``."""
        ref = self._graphs.get(key)
        if ref is None or ref() is not graph:
            # A different graph object under the same key: the key contract
            # ("a key identifies the graph") is the caller's, honour it.
            return True
        version = self._versions.get(key)
        if version == graph._version:
            return True
        deltas = _delta.deltas_between(graph, version)
        if (
            deltas is not None
            and all(d.op == _delta.OP_REWEIGHT for d in deltas)
            and _sssp.resolve_weighted() == _sssp.WEIGHTED_OFF
        ):
            # Pure reweights cannot move hop-metric betweenness; re-key.
            self._versions[key] = graph._version
            self.delta_retained += 1
            return True
        self.delta_evictions += 1
        return False

    def get(
        self, key: str, graph: Graph, *, workers: Optional[int] = None
    ) -> Dict[Node, float]:
        """Return the exact betweenness for ``graph``, computing it at most once
        per ``key`` (a key should identify the graph, e.g. ``"flickr@1.0#0"``).

        The entry is version-fenced: if *this* graph object has mutated
        since the entry was computed, the truth is recomputed (unless the
        mutation journal proves the edits cannot move it — reweight-only
        ranges under hop-metric routing).  ``workers`` parallelises a cache
        miss's Brandes pass; the cached values are identical for any worker
        count.
        """
        stale = False
        if key in self._memory:
            if self._fresh(key, graph):
                return self._memory[key]
            # The on-disk file under this key holds the same stale values;
            # skip the reload and recompute (overwriting it below).
            stale = True
            del self._memory[key]
        if self._cache_dir is not None and not stale:
            path = self._path_for(key)
            if path.exists():
                values = self._load(path)
                if len(values) == graph.number_of_nodes():
                    self._memory[key] = values
                    self._remember(key, graph)
                    return values
        # Content-addressed persistent tier: the digest is recomputed from
        # the graph *as it is now*, so (unlike the key file) a hit here is
        # safe even when this key's previous entry went stale — a mutated
        # graph simply hashes to a different file.
        digest_path = self._digest_path_for(graph)
        if digest_path is not None and digest_path.exists():
            values = self._load(digest_path)
            if len(values) == graph.number_of_nodes():
                self._memory[key] = values
                self._remember(key, graph)
                if self._cache_dir is not None:
                    self._store(self._path_for(key), values)
                return values
        values = exact_betweenness(graph, workers=workers)
        self._memory[key] = values
        self._remember(key, graph)
        if self._cache_dir is not None:
            self._store(self._path_for(key), values)
        if digest_path is not None:
            digest_path.parent.mkdir(parents=True, exist_ok=True)
            self._store(digest_path, values)
        return values

    def stats(self) -> Dict[str, int]:
        """Entry count plus the delta retention/eviction counters."""
        return {
            "entries": len(self._memory),
            "delta_retained": self.delta_retained,
            "delta_evictions": self.delta_evictions,
        }

    # ------------------------------------------------------------------
    def _digest_tier(self) -> Optional[Path]:
        """The content-addressed tier directory, or ``None`` when disabled."""
        if self._digest_dir is not None:
            return self._digest_dir
        from repro.graphs import store as snapshot_store

        base = snapshot_store.resolve_snapshot_dir()
        return None if base is None else base / "ground_truth"

    def _digest_path_for(self, graph: Graph) -> Optional[Path]:
        """The content-addressed truth file for ``graph`` as it is *now*.

        The name binds the graph content digest to the routed SSSP metric:
        the same graph has different (hop vs weighted) exact betweenness
        depending on how :func:`repro.graphs.sssp.effective_weighted`
        resolves, so both dimensions address the file.
        """
        directory = self._digest_tier()
        if directory is None:
            return None
        from repro.graphs import store as snapshot_store

        metric = "weighted" if _sssp.effective_weighted(graph) else "hop"
        digest = snapshot_store.content_digest(graph)
        return directory / f"bt_{digest}_{metric}.json"

    def _path_for(self, key: str) -> Path:
        safe = "".join(ch if ch.isalnum() or ch in "-_.@" else "_" for ch in key)
        return self._cache_dir / f"{safe}.json"

    @staticmethod
    def _load(path: Path) -> Dict[Node, float]:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
        return {_parse_node(node): value for node, value in raw.items()}

    @staticmethod
    def _store(path: Path, values: Dict[Node, float]) -> None:
        serialisable = {str(node): value for node, value in values.items()}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(serialisable, handle)


def _parse_node(token: str) -> Node:
    """JSON keys are strings; convert back to int when possible."""
    try:
        return int(token)
    except ValueError:
        return token
