"""Exact betweenness ground truth with simple on-disk caching.

The paper's ground truth took ~2M core-hours on a Cray for the SNAP graphs
and two weeks on a 96-core server for USA-road; at reproduction scale exact
Brandes takes seconds to minutes, but the experiment drivers still reuse one
ground-truth computation across the whole epsilon / subset-size sweep, so a
small JSON cache keeps repeated benchmark invocations fast.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Hashable, Optional, Union

from repro.centrality.brandes import betweenness_centrality
from repro.graphs.graph import Graph

Node = Hashable
PathLike = Union[str, Path]


def exact_betweenness(
    graph: Graph, *, workers: Optional[int] = None
) -> Dict[Node, float]:
    """Exact normalised betweenness of every node (Brandes, ``O(nm)``).

    ``workers`` fans the all-sources pass out over a worker pool (``None``
    resolves via ``REPRO_WORKERS``); the per-source dependency vectors are
    folded in source order, so any worker count returns bit-identical values.
    """
    return betweenness_centrality(graph, normalized=True, workers=workers)


class GroundTruthCache:
    """Compute-once cache for exact betweenness, optionally persisted to disk.

    Parameters
    ----------
    cache_dir:
        Directory for the JSON cache files; ``None`` keeps everything
        in memory only.

    Examples
    --------
    >>> from repro.datasets.synthetic import karate_club_graph
    >>> cache = GroundTruthCache()
    >>> truth = cache.get("karate", karate_club_graph())
    >>> round(max(truth.values()), 3) > 0
    True
    """

    def __init__(self, cache_dir: Optional[PathLike] = None) -> None:
        self._memory: Dict[str, Dict[Node, float]] = {}
        self._cache_dir = Path(cache_dir) if cache_dir is not None else None
        if self._cache_dir is not None:
            self._cache_dir.mkdir(parents=True, exist_ok=True)

    def get(
        self, key: str, graph: Graph, *, workers: Optional[int] = None
    ) -> Dict[Node, float]:
        """Return the exact betweenness for ``graph``, computing it at most once
        per ``key`` (a key should identify the graph, e.g. ``"flickr@1.0#0"``).

        ``workers`` parallelises a cache miss's Brandes pass; the cached
        values are identical for any worker count.
        """
        if key in self._memory:
            return self._memory[key]
        if self._cache_dir is not None:
            path = self._path_for(key)
            if path.exists():
                values = self._load(path)
                if len(values) == graph.number_of_nodes():
                    self._memory[key] = values
                    return values
        values = exact_betweenness(graph, workers=workers)
        self._memory[key] = values
        if self._cache_dir is not None:
            self._store(self._path_for(key), values)
        return values

    # ------------------------------------------------------------------
    def _path_for(self, key: str) -> Path:
        safe = "".join(ch if ch.isalnum() or ch in "-_.@" else "_" for ch in key)
        return self._cache_dir / f"{safe}.json"

    @staticmethod
    def _load(path: Path) -> Dict[Node, float]:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
        return {_parse_node(node): value for node, value in raw.items()}

    @staticmethod
    def _store(path: Path, values: Dict[Node, float]) -> None:
        serialisable = {str(node): value for node, value in values.items()}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(serialisable, handle)


def _parse_node(token: str) -> Node:
    """JSON keys are strings; convert back to int when possible."""
    try:
        return int(token)
    except ValueError:
        return token
