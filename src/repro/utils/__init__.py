"""Small shared utilities: seeded RNG handling, timing and validation."""

from __future__ import annotations

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_in_unit_interval,
    check_non_negative,
    check_positive,
    check_probability_pair,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Timer",
    "check_positive",
    "check_non_negative",
    "check_in_unit_interval",
    "check_probability_pair",
]
