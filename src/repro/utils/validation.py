"""Argument-validation helpers shared across the library.

Keeping the checks in one place gives consistent error messages and keeps
algorithm code focused on the algorithm.
"""

from __future__ import annotations

from numbers import Real


def check_positive(value: Real, name: str) -> None:
    """Raise :class:`ValueError` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_non_negative(value: Real, name: str) -> None:
    """Raise :class:`ValueError` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_in_unit_interval(value: Real, name: str, *, open_ends: bool = True) -> None:
    """Raise :class:`ValueError` unless ``value`` lies in the unit interval.

    Parameters
    ----------
    open_ends:
        When ``True`` (the default) the interval is the open ``(0, 1)``,
        matching the paper's requirement that ``epsilon, delta in (0, 1)``.
    """
    if open_ends:
        valid = 0 < value < 1
        bounds = "(0, 1)"
    else:
        valid = 0 <= value <= 1
        bounds = "[0, 1]"
    if not valid:
        raise ValueError(f"{name} must lie in {bounds}, got {value!r}")


def check_probability_pair(epsilon: Real, delta: Real) -> None:
    """Validate an ``(epsilon, delta)`` accuracy/confidence pair."""
    check_in_unit_interval(epsilon, "epsilon")
    check_in_unit_interval(delta, "delta")
