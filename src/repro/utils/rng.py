"""Random-number-generator helpers.

Every stochastic component in the library accepts either an integer seed, an
existing :class:`random.Random` instance, or ``None`` (fresh entropy).  This
module centralises the conversion so that experiments are reproducible from a
single seed and sub-components can be given independent, deterministic
streams.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Union

SeedLike = Union[None, int, random.Random]


def ensure_rng(seed: SeedLike = None) -> random.Random:
    """Return a :class:`random.Random` built from ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for fresh OS entropy, an ``int`` for a deterministic stream,
        or an existing :class:`random.Random` which is returned unchanged.

    Returns
    -------
    random.Random
        A usable RNG instance.
    """
    if seed is None:
        return random.Random()
    if isinstance(seed, random.Random):
        return seed
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise TypeError(
            f"seed must be None, an int, or a random.Random, got {type(seed).__name__}"
        )
    return random.Random(seed)


def spawn_rngs(rng: random.Random, count: int) -> List[random.Random]:
    """Derive ``count`` independent deterministic RNGs from ``rng``.

    The child generators are seeded from draws of the parent so the whole
    tree is reproducible from the parent's seed, and drawing from one child
    does not perturb the others.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [random.Random(rng.getrandbits(64)) for _ in range(count)]


def shuffled(items: Iterable, rng: Optional[random.Random] = None) -> list:
    """Return a shuffled copy of ``items`` without mutating the input."""
    rng = ensure_rng(rng)
    result = list(items)
    rng.shuffle(result)
    return result
