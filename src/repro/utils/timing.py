"""Wall-clock timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Timer:
    """A context manager measuring elapsed wall-clock seconds.

    Examples
    --------
    >>> with Timer() as timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is not None:
            self._elapsed = time.perf_counter() - self._start
            self._start = None

    @property
    def elapsed(self) -> float:
        """Elapsed seconds of the last completed ``with`` block (or the
        running total if called inside the block)."""
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed


@dataclass
class StageTimings:
    """Accumulates named per-stage timings for an algorithm run.

    The experiment harness uses this to separate preprocessing (bi-component
    decomposition, exact-subspace evaluation) from sampling time, mirroring
    the per-phase discussion in the paper.
    """

    stages: Dict[str, float] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to stage ``name`` (creating it if needed)."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        if name not in self.stages:
            self.stages[name] = 0.0
            self.order.append(name)
        self.stages[name] += seconds

    def total(self) -> float:
        """Total seconds across all stages."""
        return sum(self.stages.values())

    def measure(self, name: str) -> "_StageContext":
        """Return a context manager that times a block into stage ``name``."""
        return _StageContext(self, name)


class _StageContext:
    def __init__(self, timings: StageTimings, name: str) -> None:
        self._timings = timings
        self._name = name
        self._timer = Timer()

    def __enter__(self) -> "_StageContext":
        self._timer.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._timer.__exit__(exc_type, exc, tb)
        self._timings.add(self._name, self._timer.elapsed)
