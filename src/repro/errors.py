"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause while
still being able to distinguish the failure domain (graph construction,
sampling, datasets, convergence of adaptive estimators).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Raised for invalid graph construction or graph queries.

    Examples include adding a self-loop to a simple graph, querying the
    neighbours of a node that does not exist, or loading a malformed edge
    list.
    """


class SamplingError(ReproError):
    """Raised when a sampler cannot produce a valid sample.

    For instance, rejection sampling from an empty approximate subspace or
    requesting a shortest path between disconnected nodes.
    """


class DatasetError(ReproError):
    """Raised when a named dataset cannot be found or built."""


class ConvergenceError(ReproError):
    """Raised when an adaptive estimator exhausts its budget without
    reaching the requested error tolerance and strict mode is enabled."""
