"""Worker-pool executor: deterministic chunked parallelism over sources/samples.

Every embarrassingly-parallel loop in this reproduction — exact Brandes over
all BFS sources, closeness sweeps, the ABRA/RK/KADABRA sample draws, the
SaPHyRa adaptive sampler — decomposes into *chunks*: a fixed-size slice of
the source list or of the sample schedule.  This module provides the one
executor they all share.

Determinism contract
--------------------
``workers`` **never changes results** — it only changes wall-clock time:

* Work is split into chunks by a rule that depends only on the input (the
  source list, the sample schedule), never on the worker count.
* Randomised chunks draw from *per-chunk seeded RNG streams*
  (:func:`chunk_rng`), derived from one base seed with a process-independent
  hash, so a chunk produces the same draws no matter which worker runs it —
  or whether it runs in-process.
* :meth:`WorkerPool.map` returns results **in chunk order** regardless of
  completion order, and callers fold partial results in that order, so even
  float accumulation order is reproduced exactly.

Hence ``workers=8`` is bit-identical to ``workers=1`` and to the in-process
serial path (``workers=0``), and the backend-equivalence property tests
assert exactly that.

Configuration
-------------
The default worker count is resolved like the traversal backend: an explicit
``workers=`` argument wins, then :func:`set_default_workers` (the CLI's
``--workers`` flag), then the ``REPRO_WORKERS`` environment variable, then 0
(serial).  ``REPRO_START_METHOD`` selects the multiprocessing start method
(``fork``/``spawn``/``forkserver``); everything shipped to workers is
picklable top-level functions plus payload objects, so the pool is
spawn-safe (CI runs the equivalence suite under ``spawn``).
"""

from __future__ import annotations

import os
import random
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")

#: Environment variable providing the default worker count.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Environment variable selecting the multiprocessing start method.
START_METHOD_ENV_VAR = "REPRO_START_METHOD"

_START_METHODS = ("fork", "spawn", "forkserver")

#: Default number of BFS sources assigned to one worker task.
SOURCE_CHUNK_SIZE = 32

#: Default number of sampler draws sharing one per-chunk RNG stream.  This
#: constant is part of the samplers' *definition* (it fixes the stream
#: layout), so changing it changes sampled sequences — like changing a seed.
SAMPLE_CHUNK_SIZE = 64

_default_workers: Optional[int] = None


def _check_workers(value: int, *, source: str = "workers") -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(
            f"{source} must be a non-negative int, got {type(value).__name__}"
        )
    if value < 0:
        raise ValueError(f"{source} must be >= 0, got {value}")
    return value


def set_default_workers(workers: Optional[int]) -> None:
    """Set (or with ``None`` clear) the process-wide default worker count.

    ``0`` means serial in-process execution; it overrides any
    ``REPRO_WORKERS`` environment variable.
    """
    global _default_workers
    if workers is not None:
        _check_workers(workers)
    _default_workers = workers


def default_workers() -> int:
    """Return the worker count used when callers pass ``workers=None``.

    Resolution order: :func:`set_default_workers` override, then the
    ``REPRO_WORKERS`` environment variable, then 0 (serial).
    """
    if _default_workers is not None:
        return _default_workers
    env = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if env:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV_VAR}={env!r} is not a valid worker count; "
                "expected a non-negative integer"
            ) from None
        return _check_workers(value, source=WORKERS_ENV_VAR)
    return 0


def resolve_workers(workers: Optional[int] = None) -> int:
    """Map a user-facing ``workers`` argument to a concrete count.

    ``0`` and ``1`` both execute in-process (a one-worker pool would only add
    IPC overhead); counts above 1 use a process pool.
    """
    if workers is None:
        return default_workers()
    return _check_workers(workers)


def start_method() -> Optional[str]:
    """The configured multiprocessing start method (``None`` = platform default)."""
    env = os.environ.get(START_METHOD_ENV_VAR, "").strip().lower()
    if not env:
        return None
    if env not in _START_METHODS:
        raise ValueError(
            f"{START_METHOD_ENV_VAR}={env!r} is not a valid start method; "
            f"choose one of {_START_METHODS}"
        )
    return env


# ----------------------------------------------------------------------
# Chunking and per-chunk RNG streams
# ----------------------------------------------------------------------
def chunked(items: Sequence[T], size: int = SOURCE_CHUNK_SIZE) -> List[Sequence[T]]:
    """Split ``items`` into consecutive chunks of ``size`` (last may be short)."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    return [items[start : start + size] for start in range(0, len(items), size)]


def plan_chunks(
    count: int, size: int = SAMPLE_CHUNK_SIZE, *, start_chunk: int = 0
) -> List[Tuple[int, int]]:
    """Plan ``count`` draws as ``(chunk_index, draws)`` pieces.

    Chunk indices continue from ``start_chunk`` so successive stages of an
    adaptive sampler consume a single global stream sequence; the layout is a
    pure function of the stage schedule, never of the worker count.
    """
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    pieces: List[Tuple[int, int]] = []
    chunk = start_chunk
    remaining = count
    while remaining > 0:
        draws = min(size, remaining)
        pieces.append((chunk, draws))
        chunk += 1
        remaining -= draws
    return pieces


def derive_base_seed(rng: random.Random) -> int:
    """Draw the 64-bit base seed all chunk streams of one run derive from."""
    return rng.getrandbits(64)


def chunk_rng(base_seed: int, chunk_index: int) -> random.Random:
    """The deterministic RNG stream of chunk ``chunk_index``.

    Seeding with a string routes through :mod:`random`'s SHA-512 seeding,
    which is identical in every process and platform (unlike ``hash``-based
    seeding, which PYTHONHASHSEED salts).
    """
    return random.Random(f"{base_seed}:{chunk_index}")


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
# Worker-process globals, set once per worker by the pool initializer so the
# payload (graph, snapshot, estimator, ...) is unpickled once and shared by
# every task the worker runs.
_worker_function: Optional[Callable] = None
_worker_payload: object = None


def _initialize_worker(function: Callable, payload: object) -> None:
    global _worker_function, _worker_payload
    _worker_function = function
    _worker_payload = payload


def _run_chunk(chunk: object) -> object:
    return _worker_function(_worker_payload, chunk)


class WorkerPool:
    """Order-preserving chunk mapper around ``function(payload, chunk)``.

    Parameters
    ----------
    function:
        A picklable module-level function taking ``(payload, chunk)``.
    payload:
        Shared immutable-by-convention context (a graph, an estimator, ...),
        shipped to each worker process exactly once.  Must be picklable when
        ``workers > 1``.
    workers:
        Worker count (``None`` resolves via :func:`resolve_workers`).
        ``<= 1`` executes every chunk in-process — same code path, no
        processes, identical results.

    The pool is lazily created on the first parallel :meth:`map` and reused
    across calls (an adaptive sampler maps many rounds of chunks through one
    pool), so use it as a context manager::

        with WorkerPool(_chunk_fn, payload=(graph, backend), workers=workers) as pool:
            for part in pool.map(chunks):
                fold(part)          # chunk order == submission order
    """

    def __init__(
        self,
        function: Callable,
        *,
        payload: object = None,
        workers: Optional[int] = None,
    ) -> None:
        self.function = function
        self.payload = payload
        self.workers = resolve_workers(workers)
        self._pool = None

    # ------------------------------------------------------------------
    def map(self, chunks: Sequence[object]) -> List[object]:
        """Apply the function to every chunk; results come back in chunk order."""
        chunks = list(chunks)
        if self.workers <= 1 or len(chunks) <= 1:
            return [self.function(self.payload, chunk) for chunk in chunks]
        return self._ensure_pool().map(_run_chunk, chunks, chunksize=1)

    def imap(self, chunks: Sequence[object]):
        """Lazy :meth:`map`: yield chunk results in chunk order.

        Use when per-chunk results are large and folded immediately (e.g.
        per-source dependency vectors), so only a bounded number of chunks
        is in flight instead of the whole result list.
        """
        chunks = list(chunks)
        if self.workers <= 1 or len(chunks) <= 1:
            return (self.function(self.payload, chunk) for chunk in chunks)
        return self._ensure_pool().imap(_run_chunk, chunks, chunksize=1)

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing

            context = multiprocessing.get_context(start_method())
            self._pool = context.Pool(
                processes=self.workers,
                initializer=_initialize_worker,
                initargs=(self.function, self.payload),
            )
        return self._pool

    def close(self) -> None:
        """Shut the pool down (no-op if no process was ever started)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()
