"""Worker-pool executor: deterministic chunked parallelism over sources/samples.

Every embarrassingly-parallel loop in this reproduction — exact Brandes over
all BFS sources, closeness sweeps, the ABRA/RK/KADABRA sample draws, the
SaPHyRa adaptive sampler — decomposes into *chunks*: a fixed-size slice of
the source list or of the sample schedule.  This module provides the one
executor they all share.

Determinism contract
--------------------
``workers`` **never changes results** — it only changes wall-clock time:

* Work is split into chunks by a rule that depends only on the input (the
  source list, the sample schedule), never on the worker count.
* Randomised chunks draw from *per-chunk seeded RNG streams*
  (:func:`chunk_rng`), derived from one base seed with a process-independent
  hash, so a chunk produces the same draws no matter which worker runs it —
  or whether it runs in-process.
* :meth:`WorkerPool.map` returns results **in chunk order** regardless of
  completion order, and callers fold partial results in that order, so even
  float accumulation order is reproduced exactly.

Hence ``workers=8`` is bit-identical to ``workers=1`` and to the in-process
serial path (``workers=0``), and the backend-equivalence property tests
assert exactly that.

Shared-memory graph handoff
---------------------------
Chunk payloads usually contain the graph, and the graph dominates the
payload's pickle size.  When numpy and :mod:`multiprocessing.shared_memory`
are available, :func:`shareable_graph` wraps the frozen CSR snapshot in a
:class:`SharedCSRPayload`: the ``indptr``/``indices`` (and, on weighted
snapshots, ``weights``) arrays are exported into shared-memory blocks
**once per pool** (lazily, on the first payload
pickle — the serial path and ``fork`` pools, which inherit memory, never
export anything) and worker processes attach zero-copy views instead of
unpickling the adjacency.  Blocks are unlinked when the owning
:class:`WorkerPool` shuts down, on the clean path and on the exception path
alike.  When the snapshot is already backed by an on-disk snapshot file
(:mod:`repro.graphs.store`) and the ``mmap`` knob resolves to mapping, the
export is skipped entirely: the payload is the file path plus a header and
each worker attaches read-only ``np.memmap`` views of the file itself —
the file *is* the shared block.  The handoff never changes results —
workers see the same arrays bit for bit — and degrades gracefully to the
pickle payload when numpy or ``shared_memory`` is missing or block
allocation fails.

Configuration
-------------
The default worker count is resolved like the traversal backend: an explicit
``workers=`` argument wins, then :func:`set_default_workers` (the CLI's
``--workers`` flag), then the ``REPRO_WORKERS`` environment variable, then 0
(serial).  The multiprocessing start method follows the same protocol:
:func:`set_default_start_method` (the CLI's ``--start-method`` flag), then
``REPRO_START_METHOD`` (``fork``/``spawn``/``forkserver``), then the
platform default; everything shipped to workers is
picklable top-level functions plus payload objects, so the pool is
spawn-safe (CI runs the equivalence suite under ``spawn``).
``REPRO_SHARED_MEMORY`` (``1``/``on`` — the default — or ``0``/``off``) and
the CLI's ``--shared-memory`` flag control the zero-copy handoff.
"""

from __future__ import annotations

import os
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")

#: Environment variable providing the default worker count.
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: Environment variable selecting the multiprocessing start method.
START_METHOD_ENV_VAR = "REPRO_START_METHOD"

#: Environment variable toggling the shared-memory CSR handoff
#: (``1``/``on`` — the default — or ``0``/``off``).
SHARED_MEMORY_ENV_VAR = "REPRO_SHARED_MEMORY"

_START_METHODS = ("fork", "spawn", "forkserver")

_TRUE_VALUES = ("1", "on", "true", "yes")
_FALSE_VALUES = ("0", "off", "false", "no")

#: Sentinel marking "no override active" for the displaced-env machinery.
_UNSET = object()


class EnvMirroredOverride:
    """Process-wide override mirrored into an environment variable.

    Every runtime knob that spawn/forkserver workers must agree on (worker
    count, shared-memory handoff, the engine's DAG cache) follows the same
    protocol: setting an override writes the encoded value into the
    variable — ``fork`` children copy the module global, but ``spawn``
    children re-import modules fresh and resolve from the environment — and
    the *first* override displaces the variable's prior value so clearing
    the override (``set(None)``) can put it back.
    """

    __slots__ = ("env_var", "_displaced")

    def __init__(self, env_var: str) -> None:
        self.env_var = env_var
        self._displaced: object = _UNSET

    def set(self, encoded: Optional[str]) -> None:
        """Mirror ``encoded`` into the variable; ``None`` restores the
        value the first override displaced."""
        if encoded is None:
            if self._displaced is not _UNSET:
                if self._displaced is None:
                    os.environ.pop(self.env_var, None)
                else:
                    os.environ[self.env_var] = self._displaced  # type: ignore[assignment]
                self._displaced = _UNSET
            return
        if self._displaced is _UNSET:
            self._displaced = os.environ.get(self.env_var)
        os.environ[self.env_var] = encoded

#: Default number of BFS sources assigned to one worker task.
SOURCE_CHUNK_SIZE = 32

#: Default number of sampler draws sharing one per-chunk RNG stream.  This
#: constant is part of the samplers' *definition* (it fixes the stream
#: layout), so changing it changes sampled sequences — like changing a seed.
SAMPLE_CHUNK_SIZE = 64

_default_workers: Optional[int] = None
_workers_env_mirror = EnvMirroredOverride(WORKERS_ENV_VAR)


def _check_workers(value: int, *, source: str = "workers") -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(
            f"{source} must be a non-negative int, got {type(value).__name__}"
        )
    if value < 0:
        raise ValueError(f"{source} must be >= 0, got {value}")
    return value


def _env_workers() -> Optional[int]:
    """Return the validated ``REPRO_WORKERS`` value, or ``None`` if unset."""
    env = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if not env:
        return None
    try:
        value = int(env)
    except ValueError:
        raise ValueError(
            f"{WORKERS_ENV_VAR}={env!r} is not a valid worker count; "
            "expected a non-negative integer"
        ) from None
    return _check_workers(value, source=WORKERS_ENV_VAR)


def set_default_workers(workers: Optional[int]) -> None:
    """Set (or with ``None`` clear) the process-wide default worker count.

    ``0`` means serial in-process execution; it overrides any
    ``REPRO_WORKERS`` environment variable.

    The choice is mirrored into ``REPRO_WORKERS`` so helper processes
    resolve the same default under every multiprocessing start method:
    ``fork`` children copy the module global, but ``spawn``/``forkserver``
    children re-import this module fresh and would otherwise fall back to
    the parent's *original* environment.  ``None`` restores the environment
    variable the first override displaced — the same semantics as
    :func:`repro.engine.set_dag_cache_enabled`.
    """
    global _default_workers
    if workers is not None:
        _check_workers(workers)
    _workers_env_mirror.set(None if workers is None else str(workers))
    _default_workers = workers


def default_workers() -> int:
    """Return the worker count used when callers pass ``workers=None``.

    Resolution order: :func:`set_default_workers` override, then the
    ``REPRO_WORKERS`` environment variable, then 0 (serial).
    """
    if _default_workers is not None:
        return _default_workers
    env = _env_workers()
    return 0 if env is None else env


def resolve_workers(workers: Optional[int] = None) -> int:
    """Map a user-facing ``workers`` argument to a concrete count.

    ``0`` and ``1`` both execute in-process (a one-worker pool would only add
    IPC overhead); counts above 1 use a process pool.

    Every executor environment knob — ``REPRO_WORKERS``,
    ``REPRO_START_METHOD`` and ``REPRO_SHARED_MEMORY`` — is validated here
    eagerly (even when an explicit ``workers`` argument makes the variable
    moot for this call), mirroring the eager ``REPRO_BACKEND`` validation in
    :func:`repro.graphs.csr.resolve_backend`: a typo'd variable surfaces as
    one clear error naming the variable at executor-configuration time
    instead of mid-sweep.
    """
    _env_workers()
    _env_start_method()
    shared_memory_enabled()
    if workers is None:
        return default_workers()
    return _check_workers(workers)


_default_start_method: Optional[str] = None
_start_method_env_mirror = EnvMirroredOverride(START_METHOD_ENV_VAR)


def _check_start_method(value: str, *, source: str = "start_method") -> str:
    if value not in _START_METHODS:
        raise ValueError(
            f"{source}={value!r} is not a valid start method; "
            f"choose one of {_START_METHODS} (the default can also be set via "
            f"the {START_METHOD_ENV_VAR} environment variable)"
        )
    return value


def _env_start_method() -> Optional[str]:
    """Return the validated ``REPRO_START_METHOD`` value, or ``None`` if unset."""
    env = os.environ.get(START_METHOD_ENV_VAR, "").strip().lower()
    if not env:
        return None
    return _check_start_method(env, source=START_METHOD_ENV_VAR)


def set_default_start_method(method: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide default start method.

    Mirrored into ``REPRO_START_METHOD`` via :class:`EnvMirroredOverride` so
    helper processes (and benchmark subprocesses) resolve the same method;
    ``None`` restores the environment variable the first override displaced —
    the semantics shared by every knob's ``set_default_*`` mirror.
    """
    global _default_start_method
    if method is not None:
        _check_start_method(method)
    _start_method_env_mirror.set(method)
    _default_start_method = method


def start_method() -> Optional[str]:
    """The configured multiprocessing start method (``None`` = platform default).

    Resolution order: :func:`set_default_start_method` override, then the
    ``REPRO_START_METHOD`` environment variable, then ``None`` (let
    :mod:`multiprocessing` pick the platform default).
    """
    if _default_start_method is not None:
        return _default_start_method
    return _env_start_method()


# ----------------------------------------------------------------------
# Shared-memory CSR handoff
# ----------------------------------------------------------------------
_shared_memory_override: Optional[bool] = None
_shared_env_mirror = EnvMirroredOverride(SHARED_MEMORY_ENV_VAR)

#: Lazily-probed availability of numpy + multiprocessing.shared_memory.
_shared_memory_probe: Optional[bool] = None

#: Names of shared-memory blocks currently owned (created and not yet
#: unlinked) by this process — accounting for the leak tests.
_active_shared_blocks: set = set()

#: Worker-side cache of attached snapshots: one zero-copy ``CSRGraph`` per
#: exported block pair, built on first attach and reused by every chunk the
#: worker runs.  Entries also keep the ``SharedMemory`` objects referenced so
#: the mappings stay alive for the worker's lifetime.
_attached_snapshots: Dict[Tuple[str, str], object] = {}

#: Worker-side cache of file-attached snapshots, keyed by the payload
#: header ``(path, n, num_indices, weighted)``: one (usually memory-mapped)
#: ``CSRGraph`` per snapshot file, attached on first use and reused by
#: every chunk the worker runs.
_attached_file_snapshots: Dict[Tuple[str, int, int, bool], object] = {}


def shared_memory_available() -> bool:
    """Whether the zero-copy handoff can work at all (numpy + shared_memory)."""
    global _shared_memory_probe
    if _shared_memory_probe is None:
        try:
            import numpy  # noqa: F401
            from multiprocessing import shared_memory  # noqa: F401

            _shared_memory_probe = True
        except ImportError:  # pragma: no cover - numpy-less installs
            _shared_memory_probe = False
    return _shared_memory_probe


def shared_memory_enabled() -> bool:
    """Whether payloads should use the shared-memory handoff when possible.

    Resolution order: :func:`set_shared_memory_enabled` override, then the
    ``REPRO_SHARED_MEMORY`` environment variable, then on.  Availability is
    checked separately (:func:`shared_memory_available`); an enabled-but-
    unavailable configuration falls back to the pickle payload silently.
    """
    if _shared_memory_override is not None:
        return _shared_memory_override
    env = os.environ.get(SHARED_MEMORY_ENV_VAR, "").strip().lower()
    if not env:
        return True
    if env in _TRUE_VALUES:
        return True
    if env in _FALSE_VALUES:
        return False
    raise ValueError(
        f"{SHARED_MEMORY_ENV_VAR}={env!r} is not a valid setting; use one of "
        f"{_TRUE_VALUES} to enable or {_FALSE_VALUES} to disable"
    )


def set_shared_memory_enabled(enabled: Optional[bool]) -> None:
    """Force the shared-memory handoff on/off process-wide.

    Mirrored into ``REPRO_SHARED_MEMORY`` so worker processes inherit the
    choice under every start method; ``None`` restores the environment
    variable the first override displaced (the backend/workers/dag-cache
    semantics).  The handoff never changes results, only wall-clock time.
    """
    global _shared_memory_override
    _shared_env_mirror.set(
        None if enabled is None else ("1" if enabled else "0")
    )
    _shared_memory_override = enabled


def _export_array(data) -> Tuple[str, object]:
    """Copy one numpy array (int64 indices or float64 weights) into a fresh
    shared-memory block."""
    from multiprocessing import shared_memory

    import numpy as np

    block = shared_memory.SharedMemory(create=True, size=max(1, data.nbytes))
    if data.size:
        view = np.ndarray(data.shape, dtype=data.dtype, buffer=block.buf)
        view[:] = data
    _active_shared_blocks.add(block.name)
    return block.name, block


def _attach_shared_csr(
    indptr_name: str,
    indices_name: str,
    weights_name: Optional[str],
    n: int,
    num_indices: int,
    labels,
):
    """Worker-side reconstruction: attach blocks, build a zero-copy snapshot.

    The snapshot is cached per block tuple, so the O(n) label-index setup of
    the ``CSRGraph`` constructor runs once per worker process, not per chunk.
    ``labels is None`` encodes the common identity labelling ``0..n-1``;
    ``weights_name is None`` encodes a unit-weight snapshot (no third
    block), keeping the historical handoff byte-for-byte.
    """
    key = (indptr_name, indices_name, weights_name)
    cached = _attached_snapshots.get(key)
    if cached is not None:
        return cached[0]
    from multiprocessing import shared_memory

    import numpy as np

    from repro.graphs.csr import CSRGraph

    indptr_block = shared_memory.SharedMemory(name=indptr_name)
    indices_block = shared_memory.SharedMemory(name=indices_name)
    indptr = np.ndarray((n + 1,), dtype=np.int64, buffer=indptr_block.buf)
    indices = np.ndarray((num_indices,), dtype=np.int64, buffer=indices_block.buf)
    blocks = [indptr_block, indices_block]
    weights = None
    if weights_name is not None:
        weights_block = shared_memory.SharedMemory(name=weights_name)
        weights = np.ndarray(
            (num_indices,), dtype=np.float64, buffer=weights_block.buf
        )
        blocks.append(weights_block)
    if labels is None:
        labels = list(range(n))
    snapshot = CSRGraph(indptr, indices, labels, weights)
    # Keep the SharedMemory objects referenced: the numpy views only pin the
    # underlying buffer, and the blocks must stay mapped for every future
    # chunk this worker runs.
    _attached_snapshots[key] = (snapshot, *blocks)
    return snapshot


def _attach_snapshot_file(path: str, n: int, num_indices: int, weighted: bool):
    """Worker-side reconstruction from an on-disk snapshot file.

    The file written by :mod:`repro.graphs.store` *is* the shared block:
    the worker attaches it (as read-only ``np.memmap`` views under the
    resolved ``mmap`` knob — mirrored into the environment, so spawn
    workers agree with the master), so nothing was re-exported to
    ``multiprocessing.shared_memory`` and the pickled payload is just this
    path plus a header.  The header is cross-checked against the file so a
    swapped or regenerated snapshot fails loudly instead of silently
    computing on the wrong graph.
    """
    key = (path, n, num_indices, weighted)
    cached = _attached_file_snapshots.get(key)
    if cached is not None:
        return cached
    from repro.errors import GraphError
    from repro.graphs.store import load_snapshot

    snapshot = load_snapshot(path)
    if (
        snapshot.n != n
        or len(snapshot.indices) != num_indices
        or (snapshot.weights is not None) != weighted
    ):
        raise GraphError(
            f"snapshot {path}: file no longer matches the worker payload "
            f"header (file: n={snapshot.n}, num_indices={len(snapshot.indices)}, "
            f"weighted={snapshot.weights is not None}; payload: n={n}, "
            f"num_indices={num_indices}, weighted={weighted}) — was the "
            "snapshot regenerated while a pool was running?"
        )
    _attached_file_snapshots[key] = snapshot
    return snapshot


def _rebuild_csr(indptr, indices, labels, weights=None):
    """Pickle-payload fallback: rebuild the snapshot from shipped arrays."""
    from repro.graphs.csr import CSRGraph

    if labels is None:
        labels = list(range(len(indptr) - 1))
    return CSRGraph(indptr, indices, labels, weights)


class SharedCSRPayload:
    """A CSR snapshot inside a worker payload: zero-copy or pickle handoff.

    Master side this wraps the frozen :class:`~repro.graphs.csr.CSRGraph`.
    Pickling it (which only happens when a pool actually ships the payload
    to processes — ``spawn``/``forkserver`` initargs; ``fork`` pools inherit
    the object as-is and the serial path never pickles) picks the cheapest
    faithful handoff:

    1. **Snapshot file.**  When the snapshot is backed by an on-disk file
       (``csr.source_path``, set by :mod:`repro.graphs.store`) that still
       exists, and the ``mmap`` knob resolves to mapping, the payload is
       just the path plus a header — the file *is* the shared block, and
       each worker attaches read-only ``np.memmap`` views directly.
       Nothing is exported, so there is nothing to release.
    2. **Shared-memory blocks.**  Otherwise the
       ``indptr``/``indices`` (plus ``weights`` when present) arrays are
       exported into ``multiprocessing.shared_memory`` blocks *once* and a
       handle is shipped; unpickling in a worker attaches zero-copy views.
    3. **Pickle fallback.**  If block allocation fails (e.g. ``/dev/shm``
       exhausted) the payload degrades to shipping the arrays by value —
       the classic pickle payload.

    All three forms hand workers byte-identical arrays, so results never
    depend on the transport.  The blocks live until :meth:`release`, which
    the owning :class:`WorkerPool` calls from both its clean and its
    exception shutdown paths.
    """

    __slots__ = ("csr", "_blocks", "_handle", "_failed")

    def __init__(self, csr) -> None:
        self.csr = csr
        self._blocks: List[object] = []
        self._handle: Optional[Tuple] = None
        self._failed = False

    # ------------------------------------------------------------------
    def _labels_arg(self):
        return None if self.csr.identity_labels else self.csr.labels

    def block_names(self) -> List[str]:
        """Names of the live shared-memory blocks (empty before export)."""
        return [block.name for block in self._blocks]

    def _snapshot_file_args(self) -> Optional[Tuple]:
        """The ``_attach_snapshot_file`` args, or ``None`` when ineligible.

        Eligible means: the snapshot is backed by an on-disk file that
        still exists and the ``mmap`` knob resolves to mapping (numpy
        importable, mode not ``off``).  With ``mmap=off`` the shared-
        memory export keeps the pre-snapshot behaviour byte-for-byte.
        """
        path = getattr(self.csr, "source_path", None)
        if path is None:
            return None
        from repro.graphs.store import effective_mmap

        if not effective_mmap() or not os.path.exists(path):
            return None
        return (
            path,
            self.csr.n,
            len(self.csr.indices),
            self.csr.weights is not None,
        )

    def __reduce__(self):
        if not self._failed and self._handle is None:
            file_args = self._snapshot_file_args()
            if file_args is not None:
                self._handle = (_attach_snapshot_file, file_args)
        if not self._failed and self._handle is None:
            try:
                indptr_name, indptr_block = _export_array(self.csr.indptr)
                self._blocks.append(indptr_block)
                indices_name, indices_block = _export_array(self.csr.indices)
                self._blocks.append(indices_block)
                weights_name = None
                if self.csr.weights is not None:
                    weights_name, weights_block = _export_array(self.csr.weights)
                    self._blocks.append(weights_block)
                self._handle = (
                    _attach_shared_csr,
                    (
                        indptr_name,
                        indices_name,
                        weights_name,
                        self.csr.n,
                        len(self.csr.indices),
                        self._labels_arg(),
                    ),
                )
            except OSError:
                # Block allocation failed: release anything half-created and
                # fall back to the pickle payload for this and later dumps.
                self.release()
                self._failed = True
        if self._handle is not None:
            return self._handle
        return (
            _rebuild_csr,
            (self.csr.indptr, self.csr.indices, self._labels_arg(),
             self.csr.weights),
        )

    def release(self) -> None:
        """Close and unlink the exported blocks (idempotent, exception-safe)."""
        blocks, self._blocks = self._blocks, []
        self._handle = None
        for block in blocks:
            try:
                block.close()
                block.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            finally:
                _active_shared_blocks.discard(block.name)


def shareable_graph(graph, backend: Optional[str] = None):
    """Wrap ``graph`` for zero-copy payload handoff when the path applies.

    Returns a :class:`SharedCSRPayload` around the (cached) CSR snapshot
    when the resolved ``backend`` is CSR and the shared-memory handoff is
    enabled and available; otherwise returns ``graph`` unchanged — the
    pickle payload.  Chunk tasks recover the graph (or snapshot) with
    :func:`resolve_payload_graph`, so the same task code serves both paths.
    """
    from repro.graphs import csr as _csr

    if (
        backend == _csr.CSR_BACKEND
        and shared_memory_enabled()
        and shared_memory_available()
    ):
        return SharedCSRPayload(_csr.as_csr(graph))
    return graph


def resolve_payload_graph(obj):
    """Unwrap a payload graph slot to the object traversals run on.

    In-process (serial path, or a ``fork`` worker that inherited the
    payload) a :class:`SharedCSRPayload` resolves to its snapshot; in a
    ``spawn`` worker the slot already holds the attached snapshot (or the
    pickled graph), which passes through unchanged.
    """
    if isinstance(obj, SharedCSRPayload):
        return obj.csr
    return obj


# ----------------------------------------------------------------------
# Chunking and per-chunk RNG streams
# ----------------------------------------------------------------------
def chunked(items: Sequence[T], size: int = SOURCE_CHUNK_SIZE) -> List[Sequence[T]]:
    """Split ``items`` into consecutive chunks of ``size`` (last may be short)."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    return [items[start : start + size] for start in range(0, len(items), size)]


def plan_chunks(
    count: int, size: int = SAMPLE_CHUNK_SIZE, *, start_chunk: int = 0
) -> List[Tuple[int, int]]:
    """Plan ``count`` draws as ``(chunk_index, draws)`` pieces.

    Chunk indices continue from ``start_chunk`` so successive stages of an
    adaptive sampler consume a single global stream sequence; the layout is a
    pure function of the stage schedule, never of the worker count.
    """
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    pieces: List[Tuple[int, int]] = []
    chunk = start_chunk
    remaining = count
    while remaining > 0:
        draws = min(size, remaining)
        pieces.append((chunk, draws))
        chunk += 1
        remaining -= draws
    return pieces


def derive_base_seed(rng: random.Random) -> int:
    """Draw the 64-bit base seed all chunk streams of one run derive from."""
    return rng.getrandbits(64)


def chunk_rng(base_seed: int, chunk_index: int) -> random.Random:
    """The deterministic RNG stream of chunk ``chunk_index``.

    Seeding with a string routes through :mod:`random`'s SHA-512 seeding,
    which is identical in every process and platform (unlike ``hash``-based
    seeding, which PYTHONHASHSEED salts).
    """
    return random.Random(f"{base_seed}:{chunk_index}")


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
# Worker-process globals, set once per worker by the pool initializer so the
# payload (graph, snapshot, estimator, ...) is unpickled once and shared by
# every task the worker runs.
_worker_function: Optional[Callable] = None
_worker_payload: object = None


def _initialize_worker(function: Callable, payload: object) -> None:
    global _worker_function, _worker_payload
    _worker_function = function
    _worker_payload = payload


def _run_chunk(chunk: object) -> object:
    return _worker_function(_worker_payload, chunk)


class WorkerPool:
    """Order-preserving chunk mapper around ``function(payload, chunk)``.

    Parameters
    ----------
    function:
        A picklable module-level function taking ``(payload, chunk)``.
    payload:
        Shared immutable-by-convention context (a graph, an estimator, ...),
        shipped to each worker process exactly once.  Must be picklable when
        ``workers > 1``.  A :class:`SharedCSRPayload` (or a tuple/list
        containing one — see :func:`shareable_graph`) rides along zero-copy
        and has its shared-memory blocks released when the pool shuts down,
        on the clean and the exception path alike.
    workers:
        Worker count (``None`` resolves via :func:`resolve_workers`).
        ``<= 1`` executes every chunk in-process — same code path, no
        processes, identical results.

    The pool is lazily created on the first parallel :meth:`map` and reused
    across calls (an adaptive sampler maps many rounds of chunks through one
    pool), so use it as a context manager::

        with WorkerPool(_chunk_fn, payload=(graph, backend), workers=workers) as pool:
            for part in pool.map(chunks):
                fold(part)          # chunk order == submission order
    """

    def __init__(
        self,
        function: Callable,
        *,
        payload: object = None,
        workers: Optional[int] = None,
    ) -> None:
        self.function = function
        self.payload = payload
        self.workers = resolve_workers(workers)
        self._pool = None

    # ------------------------------------------------------------------
    def map(self, chunks: Sequence[object]) -> List[object]:
        """Apply the function to every chunk; results come back in chunk order."""
        chunks = list(chunks)
        if self.workers <= 1 or len(chunks) <= 1:
            return [self.function(self.payload, chunk) for chunk in chunks]
        return self._ensure_pool().map(_run_chunk, chunks, chunksize=1)

    def imap(self, chunks: Sequence[object]):
        """Lazy :meth:`map`: yield chunk results in chunk order.

        Use when per-chunk results are large and folded immediately (e.g.
        per-source dependency vectors), so only a bounded number of chunks
        is in flight instead of the whole result list.
        """
        chunks = list(chunks)
        if self.workers <= 1 or len(chunks) <= 1:
            return (self.function(self.payload, chunk) for chunk in chunks)
        return self._ensure_pool().imap(_run_chunk, chunks, chunksize=1)

    def _ensure_pool(self):
        if self._pool is None:
            import multiprocessing

            context = multiprocessing.get_context(start_method())
            self._pool = context.Pool(
                processes=self.workers,
                initializer=_initialize_worker,
                initargs=(self.function, self.payload),
            )
        return self._pool

    def close(self) -> None:
        """Shut the pool down cleanly, letting in-flight chunks finish.

        Uses ``Pool.close()`` + ``join()``: a hard ``terminate()`` here
        could kill workers mid-``imap`` and silently drop chunk results a
        caller is still iterating over.  Idempotent; releases any
        shared-memory payload blocks.
        """
        self._shutdown(force=False)

    def terminate(self) -> None:
        """Hard-stop the pool without draining in-flight chunks.

        Reserved for the exception path (``__exit__`` routes here when the
        ``with`` body raised): results are being abandoned anyway, so
        waiting for outstanding chunks would only delay the unwind.
        Shared-memory payload blocks are still released.
        """
        self._shutdown(force=True)

    def _shutdown(self, *, force: bool) -> None:
        try:
            if self._pool is not None:
                if force:
                    self._pool.terminate()
                else:
                    self._pool.close()
                self._pool.join()
        finally:
            self._pool = None
            self._release_payload()

    def _release_payload(self) -> None:
        items = (
            self.payload
            if isinstance(self.payload, (tuple, list))
            else (self.payload,)
        )
        for item in items:
            if isinstance(item, SharedCSRPayload):
                item.release()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if exc_type is not None:
            self.terminate()
        else:
            self.close()
