#!/usr/bin/env python
"""USA-road case study: rank intersections of a geographic area.

Mirrors Section V's case study (Table III / Fig. 7): a road network is huge
and has an enormous diameter, but an urban planner only cares about the
intersections of one metropolitan area.  SaPHyRa_bc ranks exactly that
subset, and its running time shrinks with the subset, while whole-network
estimators pay the full-network cost regardless.

Run with::

    python examples/road_network_analysis.py [--scale 0.4]
"""

from __future__ import annotations

import argparse

from repro.baselines import KADABRA
from repro.centrality import betweenness_centrality
from repro.datasets import load, road_areas
from repro.metrics import average_rank_deviation, spearman_rank_correlation
from repro.saphyra_bc import SaPHyRaBC


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.4)
    parser.add_argument("--epsilon", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    dataset = load("usa-road", scale=args.scale, seed=args.seed)
    graph = dataset.graph
    print(f"Road surrogate: {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} edges")

    areas = road_areas(dataset.coordinates, graph=graph)
    print("\nGeographic areas (Table III analogue):")
    for name, nodes in sorted(areas.items(), key=lambda item: len(item[1])):
        sub = graph.subgraph(nodes)
        print(f"  {name:<4} {sub.number_of_nodes():>6} nodes "
              f"{sub.number_of_edges():>6} edges")

    print("\nComputing exact ground truth (Brandes)...")
    truth = betweenness_centrality(graph)

    print("\nKADABRA estimates the whole network once (cost independent of the area):")
    kadabra = KADABRA(args.epsilon, 0.01, seed=args.seed).estimate(graph)
    print(f"  time {kadabra.wall_time_seconds:.2f}s, {kadabra.num_samples} samples")

    print(f"\n{'area':<6}{'method':<14}{'time (s)':>10}{'spearman':>10}"
          f"{'rank dev %':>12}")
    for name, nodes in sorted(areas.items(), key=lambda item: len(item[1])):
        truth_subset = {node: truth[node] for node in nodes}
        saphyra = SaPHyRaBC(args.epsilon, 0.01, seed=args.seed).rank(graph, nodes)
        for method, seconds, scores in (
            ("SaPHyRa_bc", saphyra.wall_time_seconds, saphyra.scores),
            ("KADABRA", kadabra.wall_time_seconds, kadabra.subset_scores(nodes)),
        ):
            print(f"{name:<6}{method:<14}{seconds:>10.2f}"
                  f"{spearman_rank_correlation(truth_subset, scores):>10.3f}"
                  f"{average_rank_deviation(truth_subset, scores):>12.1f}")

    print("\nSmaller areas -> smaller SaPHyRa_bc running time (the paper's NYC vs.")
    print("FL observation), while the whole-network estimator's cost is flat.")


if __name__ == "__main__":
    main()
