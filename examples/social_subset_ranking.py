#!/usr/bin/env python
"""Rank a search-result subset of a social network and compare against
whole-network baselines.

This is the paper's motivating scenario: a search query matched a few dozen
accounts and we want to order them by importance *now*, without estimating
centrality for the whole network.  The script:

1. builds the LiveJournal surrogate (a scaled-down power-law social graph);
2. picks a random "search result" subset of 60 nodes;
3. ranks it with SaPHyRa_bc, and with the whole-network baselines ABRA and
   KADABRA projected onto the subset;
4. reports running time, Spearman correlation against exact ground truth and
   the false-zero counts that explain the quality gap.

Run with::

    python examples/social_subset_ranking.py [--scale 0.3] [--subset-size 60]
"""

from __future__ import annotations

import argparse

from repro.baselines import ABRA, KADABRA
from repro.centrality import betweenness_centrality
from repro.datasets import load, random_subset
from repro.metrics import classify_zeros, spearman_rank_correlation
from repro.saphyra_bc import SaPHyRaBC


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--subset-size", type=int, default=60)
    parser.add_argument("--epsilon", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    dataset = load("livejournal", scale=args.scale, seed=args.seed)
    graph = dataset.graph
    print(f"Graph: {dataset.name} surrogate — {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} edges")

    targets = random_subset(graph, args.subset_size, seed=args.seed)
    print(f"Target subset: {len(targets)} random nodes (the 'search result')\n")

    print("Computing exact ground truth with Brandes (only possible at this scale)...")
    truth = betweenness_centrality(graph)
    truth_subset = {node: truth[node] for node in targets}

    print(f"{'method':<18}{'time (s)':>10}{'samples':>10}{'spearman':>10}"
          f"{'false zeros':>13}")
    rows = []

    saphyra = SaPHyRaBC(args.epsilon, 0.01, seed=args.seed)
    result = saphyra.rank(graph, targets)
    rows.append(("SaPHyRa_bc", result.wall_time_seconds, result.num_samples,
                 result.scores))

    for name, estimator in (
        ("KADABRA", KADABRA(args.epsilon, 0.01, seed=args.seed)),
        ("ABRA", ABRA(args.epsilon, 0.01, seed=args.seed)),
    ):
        baseline = estimator.estimate(graph)
        rows.append((name, baseline.wall_time_seconds, baseline.num_samples,
                     baseline.subset_scores(targets)))

    for name, seconds, samples, scores in rows:
        correlation = spearman_rank_correlation(truth_subset, scores)
        zeros = classify_zeros(truth_subset, scores)
        print(f"{name:<18}{seconds:>10.2f}{samples:>10d}{correlation:>10.3f}"
              f"{zeros.false_zeros:>13d}")

    print("\nSaPHyRa_bc never produces false zeros (Lemma 19): every target that")
    print("lies on any shortest path gets a positive estimate from the exact")
    print("2-hop subspace, which is what keeps the low-centrality part of the")
    print("ranking meaningful.")


if __name__ == "__main__":
    main()
