#!/usr/bin/env python
"""Head-to-head comparison of every implemented estimator on one graph.

Runs SaPHyRa_bc (subset and full), KADABRA, ABRA, Riondato–Kornaropoulos and
the Bader pivot estimator on the Flickr surrogate, reporting time, samples,
maximum error, rank correlation and false zeros — a miniature version of the
paper's whole evaluation section in one table.

Run with::

    python examples/compare_baselines.py [--scale 0.25] [--epsilon 0.05]
"""

from __future__ import annotations

import argparse

from repro.baselines import ABRA, KADABRA, BaderPivot, RiondatoKornaropoulos
from repro.centrality import betweenness_centrality
from repro.datasets import load, random_subset
from repro.metrics import classify_zeros, spearman_rank_correlation
from repro.saphyra_bc import SaPHyRaBC


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--epsilon", type=float, default=0.05)
    parser.add_argument("--subset-size", type=int, default=50)
    parser.add_argument("--seed", type=int, default=23)
    args = parser.parse_args()

    dataset = load("flickr", scale=args.scale, seed=args.seed)
    graph = dataset.graph
    targets = random_subset(graph, args.subset_size, seed=args.seed)
    print(f"Graph: {dataset.name} surrogate — {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} edges; subset of {len(targets)} targets\n")

    truth = betweenness_centrality(graph)
    truth_subset = {node: truth[node] for node in targets}

    runs = []

    saphyra = SaPHyRaBC(args.epsilon, 0.01, seed=args.seed)
    subset_run = saphyra.rank(graph, targets)
    runs.append(("SaPHyRa_bc", subset_run.wall_time_seconds,
                 subset_run.num_samples, subset_run.scores))

    full_run = saphyra.rank(graph)
    runs.append(("SaPHyRa_bc-full", full_run.wall_time_seconds,
                 full_run.num_samples,
                 {node: full_run.scores[node] for node in targets}))

    for name, estimator in (
        ("KADABRA", KADABRA(args.epsilon, 0.01, seed=args.seed)),
        ("ABRA", ABRA(args.epsilon, 0.01, seed=args.seed)),
        ("RK", RiondatoKornaropoulos(args.epsilon, 0.01, seed=args.seed)),
        ("Bader", BaderPivot(args.epsilon, 0.01, seed=args.seed)),
    ):
        result = estimator.estimate(graph)
        runs.append((name, result.wall_time_seconds, result.num_samples,
                     result.subset_scores(targets)))

    print(f"{'method':<18}{'time (s)':>10}{'samples':>10}{'max err':>10}"
          f"{'spearman':>10}{'false zeros':>13}")
    for name, seconds, samples, scores in runs:
        max_error = max(abs(truth_subset[n] - scores.get(n, 0.0)) for n in targets)
        correlation = spearman_rank_correlation(truth_subset, scores)
        zeros = classify_zeros(truth_subset, scores)
        print(f"{name:<18}{seconds:>10.2f}{samples:>10d}{max_error:>10.4f}"
              f"{correlation:>10.3f}{zeros.false_zeros:>13d}")


if __name__ == "__main__":
    main()
