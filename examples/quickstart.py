#!/usr/bin/env python
"""Quickstart: rank a node subset by betweenness centrality with SaPHyRa_bc.

Run with::

    python examples/quickstart.py

The example loads the small Zachary karate-club graph, ranks ten target
nodes with SaPHyRa_bc, compares against the exact Brandes ground truth, and
prints both the ranking and the quality metrics.
"""

from __future__ import annotations

from repro.centrality import betweenness_centrality
from repro.datasets import load
from repro.metrics import spearman_rank_correlation
from repro.saphyra_bc import SaPHyRaBC


def main() -> None:
    dataset = load("karate")
    graph = dataset.graph
    print(f"Graph: {dataset.name} ({graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} edges)")

    # Rank the first ten nodes (any subset of nodes works).
    targets = sorted(graph.nodes())[:10]
    algorithm = SaPHyRaBC(epsilon=0.02, delta=0.05, seed=42)
    result = algorithm.rank(graph, targets)

    print(f"\nSaPHyRa_bc used {result.num_samples} samples "
          f"(converged by {result.converged_by}), "
          f"lambda-hat = {result.lambda_exact:.3f}, "
          f"VC bound = {result.vc_dimension:.0f}")

    # Exact ground truth for comparison (only feasible because the graph is tiny).
    truth = betweenness_centrality(graph)
    truth_subset = {node: truth[node] for node in targets}

    print("\nrank | node | estimate   | exact")
    for position, node in enumerate(result.ranking, start=1):
        print(f"{position:4d} | {node:4d} | {result.scores[node]:.6f}   | "
              f"{truth[node]:.6f}")

    correlation = spearman_rank_correlation(truth_subset, result.scores)
    worst_error = max(abs(truth[node] - result.scores[node]) for node in targets)
    print(f"\nSpearman rank correlation vs. exact: {correlation:.3f}")
    print(f"Maximum absolute error: {worst_error:.4f} "
          f"(requested epsilon = {algorithm.epsilon})")


if __name__ == "__main__":
    main()
