#!/usr/bin/env python
"""Using the generic SaPHyRa framework for a different centrality (k-path).

The paper positions SaPHyRa as a *framework*: any centrality that can be
estimated by sampling can be turned into a hypothesis-ranking problem, and
the exact/approximate sample-space split carries over.  This example ranks
nodes by k-path centrality — the paper's own second worked example — with
the exact subspace covering all length-1 walks.

Run with::

    python examples/framework_other_centrality.py
"""

from __future__ import annotations

from repro.centrality.kpath import KPathCentralityEstimator, kpath_centrality_exact
from repro.datasets import load
from repro.metrics import spearman_rank_correlation


def main() -> None:
    dataset = load("karate")
    graph = dataset.graph
    k = 4
    print(f"Graph: {dataset.name}; k-path centrality with k = {k}\n")

    targets = sorted(graph.nodes())[:15]
    estimator = KPathCentralityEstimator(k=k, epsilon=0.03, delta=0.05, seed=5)
    result = estimator.rank(graph, targets)

    print(f"Samples used: {result.num_samples} "
          f"(lambda-hat = {result.lambda_exact:.3f}, "
          f"converged by {result.converged_by})")

    exact = kpath_centrality_exact(graph, k)
    exact_subset = {node: exact[node] for node in targets}

    print("\nrank | node | estimate   | exact")
    for position, node in enumerate(result.ranking, start=1):
        estimate = result.scores()[node]
        print(f"{position:4d} | {node:4d} | {estimate:.6f}   | {exact[node]:.6f}")

    correlation = spearman_rank_correlation(exact_subset, result.scores())
    print(f"\nSpearman rank correlation vs. exact: {correlation:.3f}")
    print("\nThe same SaPHyRa orchestrator that powers betweenness ranking is")
    print("reused verbatim: only the sample space (walks instead of shortest")
    print("paths) and the exact-subspace evaluation changed.")


if __name__ == "__main__":
    main()
