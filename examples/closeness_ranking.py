#!/usr/bin/env python
"""Extending SaPHyRa beyond betweenness: closeness-centrality subset ranking.

The paper's conclusion lists closeness centrality as the first future
extension of the framework; :mod:`repro.saphyra_cc` implements it.  The
sample space becomes "a uniformly random node", the loss of a target is its
normalised distance to the sample, and the exact subspace contains the
target-to-target distances.

Run with::

    python examples/closeness_ranking.py [--scale 0.2]
"""

from __future__ import annotations

import argparse

from repro.centrality import closeness_centrality
from repro.datasets import load, random_subset
from repro.metrics import spearman_rank_correlation
from repro.saphyra_cc import SaPHyRaCC


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--subset-size", type=int, default=25)
    parser.add_argument("--epsilon", type=float, default=0.03)
    parser.add_argument("--seed", type=int, default=13)
    args = parser.parse_args()

    dataset = load("livejournal", scale=args.scale, seed=args.seed)
    graph = dataset.graph
    print(f"Graph: {dataset.name} surrogate — {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} edges")

    targets = random_subset(graph, args.subset_size, seed=args.seed)
    algorithm = SaPHyRaCC(epsilon=args.epsilon, delta=0.05, seed=args.seed)
    result = algorithm.rank(graph, targets)
    print(f"\nSaPHyRa_cc: {result.num_samples} samples, "
          f"lambda-hat = {result.lambda_exact:.3f}, "
          f"distance bound = {result.distance_bound}")

    print("\nComputing exact closeness for comparison (one BFS per target)...")
    exact = closeness_centrality(graph, nodes=targets)

    print("\nrank | node | est. closeness | exact closeness | est. avg dist")
    for position, node in enumerate(result.ranking[:15], start=1):
        print(f"{position:4d} | {node:5} | {result.closeness[node]:14.4f} | "
              f"{exact[node]:15.4f} | {result.average_distance[node]:13.2f}")

    correlation = spearman_rank_correlation(exact, result.closeness)
    print(f"\nSpearman rank correlation vs. exact closeness: {correlation:.3f}")


if __name__ == "__main__":
    main()
