"""Dict vs CSR backend timings for the traversal kernels.

Every benchmark in this module runs the same kernel once per backend so the
speedup of the CSR engine (see :mod:`repro.graphs.csr`) is tracked in the
benchmark trajectory alongside the paper's tables and figures.  Compare rows
pairwise, e.g.::

    pytest benchmarks/bench_backend_comparison.py --benchmark-only \
        --benchmark-group-by=func,param:topology

Expected shape of the results: on low-diameter (social-style) graphs the CSR
backend wins by >= 3x on full-BFS kernels (Brandes most of all, since the
backward pass vectorises too); on high-diameter road grids the frontiers are
thin, the vectorised path rarely engages, and per-source CSR wins only
modestly — which is exactly what the *batched* multi-source sweeps fix: the
``multi`` benchmarks stack a whole chunk of sources so the thin road
frontiers merge into one fat one (expected >= 2x over the per-source CSR
kernels on the road grid, the tentpole acceptance target of the batched
engine).
"""

from __future__ import annotations

import random

import pytest

from repro.centrality.brandes import single_source_dependencies
from repro.centrality.closeness import closeness_centrality
from repro.graphs import csr as csr_module
from repro.graphs.bidirectional import bidirectional_shortest_paths
from repro.graphs.generators import barabasi_albert_graph, grid_road_graph
from repro.graphs.traversal import bfs_distances

BACKENDS = ("dict", "csr")
TOPOLOGIES = ("social", "road")
SWEEP_MODES = ("per-source", "batched")

#: Sources per multi-source benchmark round (one executor chunk's worth).
MULTI_SOURCES = 32


def _make_graph(topology: str):
    if topology == "social":
        return barabasi_albert_graph(20000, 5, seed=7)
    return grid_road_graph(120, 120, seed=7)[0]


@pytest.fixture(scope="module")
def graphs():
    built = {name: _make_graph(name) for name in TOPOLOGIES}
    # Prime the CSR snapshots so construction cost does not pollute the
    # kernel timings (snapshots are cached per graph anyway).
    for graph in built.values():
        csr_module.as_csr(graph).adjacency_lists()
    return built


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_bench_bfs(benchmark, graphs, topology, backend):
    graph = graphs[topology]
    sources = list(graph.nodes())[:8]
    state = {"index": 0}

    def one_bfs():
        source = sources[state["index"] % len(sources)]
        state["index"] += 1
        return bfs_distances(graph, source, backend=backend)

    distances = benchmark(one_bfs)
    assert len(distances) == graph.number_of_nodes()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_bench_brandes_single_source(benchmark, graphs, topology, backend):
    graph = graphs[topology]
    source = next(iter(graph.nodes()))
    dependencies = benchmark(
        single_source_dependencies, graph, source, backend=backend
    )
    assert dependencies


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_bench_bidirectional(benchmark, graphs, topology, backend):
    graph = graphs[topology]
    nodes = list(graph.nodes())
    rng = random.Random(3)
    pairs = [tuple(rng.sample(nodes, 2)) for _ in range(64)]
    state = {"index": 0}

    def one_query():
        source, target = pairs[state["index"] % len(pairs)]
        state["index"] += 1
        return bidirectional_shortest_paths(
            graph, source, target, backend=backend
        )

    result = benchmark(one_query)
    assert result.distance is None or result.distance >= 1


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_bench_closeness_sweep(benchmark, graphs, topology, backend):
    graph = graphs[topology]
    nodes = list(graph.nodes())[:16]
    scores = benchmark(closeness_centrality, graph, nodes, backend=backend)
    assert len(scores) == len(nodes)


def _multi_sources(snapshot, count):
    step = max(1, snapshot.n // count)
    return list(range(0, snapshot.n, step))[:count]


@pytest.mark.parametrize("mode", SWEEP_MODES)
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_bench_brandes_multi_source(benchmark, graphs, topology, mode):
    """Per-source ``csr_brandes`` loop vs one batched multi-source sweep."""
    snapshot = csr_module.as_csr(graphs[topology])
    sources = _multi_sources(snapshot, MULTI_SOURCES)

    if mode == "batched":
        def run():
            return csr_module.multi_source_sweep(
                snapshot, sources, kind=csr_module.SWEEP_BRANDES
            )
    else:
        def run():
            return [csr_module.csr_brandes(snapshot, s)[0] for s in sources]

    rows = benchmark(run)
    assert len(rows) == len(sources)


@pytest.mark.parametrize("mode", SWEEP_MODES)
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_bench_bfs_multi_source(benchmark, graphs, topology, mode):
    """Per-source ``csr_bfs`` loop vs one batched multi-source sweep."""
    snapshot = csr_module.as_csr(graphs[topology])
    sources = _multi_sources(snapshot, MULTI_SOURCES)

    if mode == "batched":
        def run():
            return csr_module.multi_source_sweep(
                snapshot, sources, kind=csr_module.SWEEP_DISTANCE
            )
    else:
        def run():
            return [csr_module.csr_bfs(snapshot, s)[0] for s in sources]

    rows = benchmark(run)
    assert len(rows) == len(sources)
