"""Fig. 6: signed relative-error distribution, true zeros vs false zeros.

The diagnostic behind the ranking-quality gap: whole-network estimators leave
many positive-betweenness nodes at an estimate of exactly zero (false zeros),
while SaPHyRa_bc's 2-hop exact subspace guarantees it produces none
(Lemma 19).
"""

from __future__ import annotations

from repro.experiments.figures import figure6_relative_error
from repro.experiments.report import render_table


def test_fig6_relative_error(benchmark, runner):
    rows = benchmark.pedantic(
        lambda: figure6_relative_error(runner=runner, epsilon=0.1),
        rounds=1,
        iterations=1,
    )
    print("\n== Fig. 6: zero-estimate analysis (epsilon = 0.1) ==")
    print(
        render_table(
            ["dataset", "algorithm", "true zeros %", "false zeros %"],
            [
                (row.dataset, row.algorithm, row.true_zero_percent,
                 row.false_zero_percent)
                for row in rows
            ],
        )
    )
    print("\n== Fig. 6: signed relative-error histogram (percent of nodes) ==")
    for row in rows:
        buckets = ", ".join(f"{label}: {pct:.0f}%" for label, pct in row.histogram if pct > 0)
        print(f"{row.dataset:12s} {row.algorithm:14s} {buckets}")

    for row in rows:
        if row.algorithm in ("saphyra", "saphyra_full"):
            assert row.false_zero_percent == 0.0
    # The Flickr surrogate has the largest true-zero fraction by construction
    # (its pendant fringe), mirroring the paper's ordering of datasets.
    flickr = [row for row in rows if row.dataset == "flickr"]
    orkut = [row for row in rows if row.dataset == "orkut"]
    if flickr and orkut:
        assert max(r.true_zero_percent for r in flickr) >= max(
            r.true_zero_percent for r in orkut
        )
    benchmark.extra_info["rows"] = len(rows)
