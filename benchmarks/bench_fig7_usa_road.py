"""Fig. 7: USA-road case study — per-area running time, rank quality and
rank deviation (ABRA omitted, as in the paper it "cannot finish")."""

from __future__ import annotations

from repro.experiments.figures import figure7_road_case_study
from repro.experiments.report import render_table


def test_fig7_usa_road_case_study(benchmark, runner):
    rows = benchmark.pedantic(
        lambda: figure7_road_case_study(runner=runner, epsilon=0.1),
        rounds=1,
        iterations=1,
    )
    print("\n== Fig. 7: USA-road case study (epsilon = 0.1) ==")
    print(
        render_table(
            ["area", "algorithm", "nodes", "time (s)", "spearman", "rank dev. %"],
            [
                (
                    row.area,
                    row.algorithm,
                    row.num_nodes,
                    row.running_time_seconds,
                    row.spearman,
                    row.rank_deviation_percent,
                )
                for row in rows
            ],
        )
    )
    assert {row.area for row in rows} == {"NYC", "BAY", "CO", "FL"}

    # SaPHyRa_bc's running time grows with the area size (NYC cheapest, FL
    # most expensive), the paper's subset-scaling observation.
    saphyra_rows = [row for row in rows if row.algorithm == "saphyra"]
    saphyra_rows.sort(key=lambda row: row.num_nodes)
    assert saphyra_rows[0].running_time_seconds <= saphyra_rows[-1].running_time_seconds * 1.5

    # Rank deviation stays bounded for the subset-aware method.
    for row in saphyra_rows:
        assert row.rank_deviation_percent < 40.0
        benchmark.extra_info[f"saphyra_rank_dev_{row.area}"] = (
            row.rank_deviation_percent
        )
