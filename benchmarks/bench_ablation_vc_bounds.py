"""Ablation: sample budgets implied by the three VC bounds of Table I.

Translates the VC-dimension comparison into what actually matters — the
worst-case number of samples ``c/eps^2 (VC + ln 1/delta)`` each bound allows
the sampler to stop at.
"""

from __future__ import annotations

from repro.experiments.report import render_table
from repro.experiments.tables import table1_vc_bounds
from repro.stats.vc import vc_sample_size


def test_ablation_vc_sample_budgets(benchmark, runner):
    rows = benchmark.pedantic(
        lambda: table1_vc_bounds(runner=runner), rounds=1, iterations=1
    )
    epsilon, delta = 0.05, 0.01
    table = []
    for row in rows:
        budget_rk = vc_sample_size(epsilon, delta, row.report.riondato_vc)
        budget_full = vc_sample_size(epsilon, delta, row.report.bicomponent_vc)
        budget_subset = vc_sample_size(epsilon, delta, row.report.personalized_vc)
        table.append(
            (
                row.dataset,
                row.subset_kind,
                budget_rk,
                budget_full,
                budget_subset,
                f"{budget_rk / budget_subset:.2f}x",
            )
        )
        assert budget_subset <= budget_full <= budget_rk
    print("\n== Ablation: worst-case sample budgets from the VC bounds "
          f"(epsilon={epsilon}, delta={delta}) ==")
    print(
        render_table(
            ["dataset", "subset", "N_max (diameter VC)", "N_max (bi-component VC)",
             "N_max (personalized VC)", "saving"],
            table,
        )
    )
    benchmark.extra_info["num_rows"] = len(table)
