"""Ablation: SaPHyRa_bc with and without the 2-hop exact subspace.

The exact subspace is the design choice that removes false zeros and shrinks
the sampling variance for low-centrality nodes (Claim 8 / Lemma 19); this
ablation quantifies both effects on one social surrogate.
"""

from __future__ import annotations

from repro.experiments.report import render_table
from repro.metrics.rank_correlation import spearman_rank_correlation
from repro.metrics.zeros import classify_zeros
from repro.saphyra_bc.algorithm import SaPHyRaBC


def test_ablation_exact_subspace(benchmark, runner):
    dataset = runner.dataset("flickr")
    truth = runner.ground_truth("flickr")
    targets = runner.subsets("flickr", runner.config.subset_size, 1)[0]
    truth_subset = {node: truth[node] for node in targets}
    epsilon, delta = 0.05, 0.05

    def run_both():
        with_exact = SaPHyRaBC(epsilon, delta, seed=11).rank(dataset.graph, targets)
        without_exact = SaPHyRaBC(
            epsilon, delta, seed=11, use_exact_subspace=False
        ).rank(dataset.graph, targets)
        return with_exact, without_exact

    with_exact, without_exact = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for label, result in (("with exact subspace", with_exact),
                          ("without (ablated)", without_exact)):
        zeros = classify_zeros(truth_subset, result.scores)
        rows.append(
            (
                label,
                result.num_samples,
                result.lambda_exact,
                spearman_rank_correlation(truth_subset, result.scores),
                zeros.false_zeros,
                result.wall_time_seconds,
            )
        )
    print("\n== Ablation: 2-hop exact subspace ==")
    print(
        render_table(
            ["variant", "samples", "lambda-hat", "spearman", "false zeros", "time (s)"],
            rows,
        )
    )

    assert with_exact.num_samples <= without_exact.num_samples
    assert classify_zeros(truth_subset, with_exact.scores).false_zeros == 0
    assert spearman_rank_correlation(truth_subset, with_exact.scores) >= (
        spearman_rank_correlation(truth_subset, without_exact.scores) - 0.05
    )
    benchmark.extra_info["samples_with_exact"] = with_exact.num_samples
    benchmark.extra_info["samples_without_exact"] = without_exact.num_samples
