"""Regression gate for the delta-stepping kernel: measure and check speedups.

Measures batched weighted sweeps (``multi_source_sweep`` over 32 sources)
with ``sssp_kernel="dijkstra"`` vs ``"delta"`` on the two weighted bench
graphs, asserts bit-identical results, and compares the speedup ratios
against the floors committed in ``BENCH_weighted.json`` at the repo root.

Speedup *ratios* (delta time / dijkstra time, both measured on the same
machine in the same process) are robust to absolute machine speed, so the
committed baseline transfers across CI runners.  The floors are set well
below the locally measured ratios to absorb scheduler noise; a kernel
regression that erases the delta advantage still trips them loudly.

Usage::

    python benchmarks/check_weighted_baseline.py           # check (CI gate)
    python benchmarks/check_weighted_baseline.py --update  # refresh measurements

``--update`` rewrites the ``measured_speedup`` fields (keeping the
``min_speedup`` floors) so the committed file documents real numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_weighted.json"

sys.path.insert(0, str(REPO_ROOT / "src"))

_SCALE = float(os.environ.get("REPRO_BENCH_WEIGHTED_SCALE", "1.0"))
_REPEATS = int(os.environ.get("REPRO_BENCH_WEIGHTED_REPEATS", "3"))


def _build_graphs():
    from repro.graphs.generators import (
        weighted_barabasi_albert_graph,
        weighted_grid_road_graph,
    )

    side = max(20, int(60 * _SCALE))
    n = max(200, int(4000 * _SCALE))
    return {
        "road": weighted_grid_road_graph(side, side, seed=7)[0],
        "social": weighted_barabasi_albert_graph(n, 4, seed=7),
    }


def _assert_identical(kind, a, b):
    for row_a, row_b in zip(a, b):
        if kind == "sigma":
            dist_a, sigma_a = row_a
            dist_b, sigma_b = row_b
            assert list(dist_a) == list(dist_b), "sigma-sweep distance mismatch"
            assert list(sigma_a) == list(sigma_b), "sigma mismatch"
        else:
            assert list(row_a) == list(row_b), f"{kind}-sweep mismatch"


def measure():
    """Return {(topology, kind): speedup} with bit-identity asserted."""
    from repro.graphs import csr as csr_module

    results = {}
    for topology, graph in _build_graphs().items():
        snapshot = csr_module.as_csr(graph)
        snapshot.adjacency_lists()
        snapshot.weight_list()
        step = max(1, snapshot.n // 32)
        sources = list(range(0, snapshot.n, step))[:32]
        for kind in ("distance", "sigma"):
            timings = {}
            outputs = {}
            for kernel in ("dijkstra", "delta"):
                best = float("inf")
                for _ in range(_REPEATS):
                    start = time.perf_counter()
                    outputs[kernel] = csr_module.multi_source_sweep(
                        snapshot, sources, kind=kind, weighted=True,
                        sssp_kernel=kernel,
                    )
                    best = min(best, time.perf_counter() - start)
                timings[kernel] = best
            _assert_identical(kind, outputs["dijkstra"], outputs["delta"])
            results[(topology, kind)] = timings["dijkstra"] / timings["delta"]
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite measured_speedup fields in BENCH_weighted.json",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(BASELINE_PATH.read_text())
    measured = measure()

    failures = []
    for entry in baseline["entries"]:
        key = (entry["topology"], entry["kind"])
        speedup = measured[key]
        label = f"{entry['topology']}/{entry['kind']}"
        print(
            f"{label}: delta vs dijkstra speedup {speedup:.2f}x "
            f"(floor {entry['min_speedup']:.2f}x, "
            f"recorded {entry['measured_speedup']:.2f}x)"
        )
        if args.update:
            entry["measured_speedup"] = round(speedup, 2)
        elif speedup < entry["min_speedup"]:
            failures.append(
                f"{label}: {speedup:.2f}x below the {entry['min_speedup']:.2f}x floor"
            )

    if args.update:
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"updated {BASELINE_PATH}")
        return 0
    if failures:
        print("\nREGRESSION: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("\nall kernels at or above their committed speedup floors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
