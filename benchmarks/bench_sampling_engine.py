"""Sampling-engine benchmarks: cross-sample DAG caching and
direction-optimising BFS.

Two knobs of the unified engine (:mod:`repro.engine`) are measured here so
their speedups are tracked in the benchmark trajectory:

* **Source-DAG caching** — ``repeated_source_dags`` replays a pivot-heavy
  access pattern (few sources, many requests: SaPHyRa-BC ISP sampling,
  ABRA pair sampling, closeness target sweeps all look like this) and
  ``rk_pivot_workload`` runs the whole RK estimator where every source is
  drawn several times.  Expected shape: the cached pivot workload wins by
  an order of magnitude (every request after the first per source is a
  dict lookup), and end-to-end RK by >= 2x — the tentpole acceptance
  target for repeated-source workloads.
* **Direction-optimising sweeps** — ``distance_sweep_direction`` compares
  ``direction="top-down"`` against ``direction="auto"`` (very fat levels
  switch to a bottom-up step) on the batched multi-source distance sweep.
  Expected shape: a solid win on the social (BA) graph whose levels are
  fat, a modest-to-neutral result on the road grid where frontiers only
  fatten through batching.  Distance rows are bit-identical either way
  (asserted below).

Committed reference numbers (this machine, ``REPRO_BENCH_ENGINE_SCALE=1``)
live in the ROADMAP's Engine note.  Run with::

    pytest benchmarks/bench_sampling_engine.py --benchmark-only \
        --benchmark-group-by=func,param:topology \
        --benchmark-json=bench-sampling-engine.json

``REPRO_BENCH_ENGINE_SCALE`` (default 1.0) scales the graph sizes down for
smoke runs (CI uses 0.2).
"""

from __future__ import annotations

import math
import os

import pytest

from repro.baselines import RiondatoKornaropoulos
from repro.engine import SourceDAGCache, set_dag_cache_enabled
from repro.graphs import csr as csr_module
from repro.graphs.generators import barabasi_albert_graph, grid_road_graph

_SCALE = float(os.environ.get("REPRO_BENCH_ENGINE_SCALE", "1.0"))

TOPOLOGIES = ("social", "road")
CACHE_MODES = ("uncached", "cached")
DIRECTIONS = ("top-down", "auto")

#: Sources per direction-comparison sweep (one executor chunk's worth).
SWEEP_SOURCES = 32

#: Pivot-set size and requests per benchmark round for the DAG workload.
PIVOTS = 8
DAG_REQUESTS = 64


def _make_graph(topology: str):
    if topology == "social":
        return barabasi_albert_graph(max(500, int(20000 * _SCALE)), 5, seed=7)
    side = max(30, int(120 * math.sqrt(_SCALE)))
    return grid_road_graph(side, side, seed=7)[0]


@pytest.fixture(scope="module")
def graphs():
    built = {name: _make_graph(name) for name in TOPOLOGIES}
    # Prime the CSR snapshots so construction cost does not pollute the
    # kernel timings (snapshots are cached per graph anyway).
    for graph in built.values():
        csr_module.as_csr(graph).adjacency_lists()
    return built


def _pivots(graph, count: int):
    nodes = list(graph.nodes())
    step = max(1, len(nodes) // count)
    return nodes[::step][:count]


@pytest.mark.parametrize("mode", CACHE_MODES)
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_bench_repeated_source_dags(benchmark, graphs, topology, mode):
    """Pivot-heavy DAG requests: few sources, many lookups."""
    graph = graphs[topology]
    pivots = _pivots(graph, PIVOTS)
    cache = SourceDAGCache(max_entries=4 * PIVOTS)

    def one_round():
        last = None
        for request in range(DAG_REQUESTS):
            source = pivots[request % len(pivots)]
            if mode == "cached":
                last = cache.dag(graph, source, backend="csr")
            else:
                last = SourceDAGCache.compute_dag(graph, source, backend="csr")
        return last

    dag = benchmark(one_round)
    # Cached and uncached produce the same DAG content (sanity, not timing).
    reference = SourceDAGCache.compute_dag(graph, pivots[-1], backend="csr")
    assert list(dag.dist) == list(reference.dist)


@pytest.mark.parametrize("mode", CACHE_MODES)
def test_bench_rk_pivot_workload(benchmark, mode):
    """End-to-end RK on a graph small enough that sources repeat often.

    ~4 draws per node on average, so the cached run rebuilds each source
    DAG once instead of four times — the >= 2x acceptance workload.
    """
    from repro.engine import set_default_dag_cache_size

    graph = barabasi_albert_graph(max(200, int(1000 * _SCALE)), 4, seed=9)
    cap = 4 * graph.number_of_nodes()
    set_dag_cache_enabled(mode == "cached")
    # Size the default cache so the whole source set stays resident (the
    # workload is "every source drawn ~4 times", not an LRU-churn study).
    # The override mirrors into REPRO_DAG_CACHE_SIZE and rebuilds the
    # default cache; None restores whatever the environment had.
    set_default_dag_cache_size(2 * graph.number_of_nodes())
    try:
        result = benchmark(
            lambda: RiondatoKornaropoulos(
                0.02, 0.05, seed=11, max_samples_cap=cap, backend="csr"
            ).estimate(graph)
        )
    finally:
        set_dag_cache_enabled(None)
        set_default_dag_cache_size(None)
    assert result.num_samples == cap  # the VC size exceeds the cap at eps=0.02


@pytest.mark.parametrize("direction", DIRECTIONS)
@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_bench_distance_sweep_direction(benchmark, graphs, topology, direction):
    """Batched multi-source distance sweep, top-down vs direction-optimising."""
    graph = graphs[topology]
    snapshot = csr_module.as_csr(graph)
    sources = _pivots(graph, SWEEP_SOURCES)
    indices = [snapshot.index_of(node) for node in sources]

    rows = benchmark(
        lambda: csr_module.multi_source_sweep(
            snapshot, indices, kind="distance", direction=direction
        )
    )
    # Bit-identical rows regardless of direction (sanity, not timing).
    reference, _ = csr_module.csr_bfs(snapshot, indices[0])
    assert list(rows[0]) == list(reference)
